//! The token-pattern lints.
//!
//! Each pass walks a [`SourceFile`]'s comment-stripped token stream and
//! emits [`Finding`]s. The patterns are deliberately syntactic — no type
//! inference — so every heuristic boundary is documented on the lint and
//! recoverable through an allow annotation with a reason.

use crate::lexer::{Tok, TokKind};
use crate::{Finding, SourceFile, ALLOWED_IMPORT_ROOTS};

/// Comparator sinks whose closure argument must totally order floats.
const SORTER_METHODS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

/// Methods that iterate a hash container in arbitrary order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Tokens that impose a deterministic order downstream of an unordered
/// iteration (any `sort*` call in the same or the immediately following
/// statement).
const SORT_TOKENS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sort_by_cached_key",
];

/// Order-insensitive chain terminals: reductions whose value cannot
/// depend on visit order (float `sum`/`fold` are deliberately absent —
/// float addition does not commute bitwise).
const ORDER_FREE_SINKS: &[&str] = &["count", "any", "all", "is_empty"];

/// Keywords that can directly precede `[` without it being an index
/// expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "in", "return", "break", "mut", "ref", "as", "else", "match", "if", "while", "loop", "move",
    "dyn", "impl", "for", "let", "const", "static", "use", "pub", "crate", "where", "await",
];

/// `float_ord_panic`: a `partial_cmp` whose `Ordering` is extracted with
/// `unwrap`/`expect`, or a `partial_cmp` inside a `sort_by`-family
/// comparator. Both panic on NaN; `f64::total_cmp` gives the same order
/// on every non-NaN input and degrades (NaN sorts to an end) instead of
/// tearing the process down. Skips test code — a test may panic.
pub fn float_ord_panic(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    if f.roles.test_only {
        return out;
    }
    let code = &f.code;
    for i in 0..code.len() {
        if f.in_test[i] || !code[i].is_ident("partial_cmp") {
            continue;
        }
        // `fn partial_cmp` — a PartialOrd impl, not a call site.
        if i > 0 && code[i - 1].is_ident("fn") {
            continue;
        }
        let line = code[i].line;
        if let Some(sorter) = enclosing_sorter(code, i) {
            out.push(f.finding(
                "float_ord_panic",
                line,
                format!(
                    "partial_cmp inside {sorter} comparator panics on NaN — use f64::total_cmp"
                ),
            ));
            continue;
        }
        if unwrapped_ahead(code, i) {
            out.push(f.finding(
                "float_ord_panic",
                line,
                "partial_cmp(..).unwrap()/expect() panics on NaN — use f64::total_cmp",
            ));
        }
    }
    out
}

/// Scans backward from token `i` for an enclosing call to one of
/// [`SORTER_METHODS`]: the nearest unmatched `(` whose head identifier
/// is a sorter. Unmatched `{` (closure bodies) are stepped through.
fn enclosing_sorter(code: &[Tok], i: usize) -> Option<&'static str> {
    let mut parens: i32 = 0;
    let mut braces: i32 = 0;
    let mut j = i;
    let mut steps = 0;
    while j > 0 && steps < 250 {
        j -= 1;
        steps += 1;
        let t = &code[j];
        if t.is_punct(')') {
            parens += 1;
        } else if t.is_punct('(') {
            parens -= 1;
            if parens < 0 {
                // Found an enclosing call's opening paren; check its head.
                if j > 0 && code[j - 1].kind == TokKind::Ident {
                    if let Some(s) = SORTER_METHODS.iter().find(|s| code[j - 1].text == **s) {
                        return Some(s);
                    }
                }
                parens = 0; // keep looking for an outer enclosing call
            }
        } else if t.is_punct('}') {
            braces += 1;
        } else if t.is_punct('{') {
            braces -= 1;
        } else if t.is_punct(';') && parens == 0 && braces >= 0 {
            return None; // statement boundary
        }
    }
    None
}

/// Looks ahead from a `partial_cmp` call for `.unwrap()` / `.expect(`
/// applied within the same statement.
fn unwrapped_ahead(code: &[Tok], i: usize) -> bool {
    let mut depth: i32 = 0;
    for j in i + 1..code.len().min(i + 80) {
        let t = &code[j];
        if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct('}') || t.is_punct(']') {
            depth -= 1;
            if depth < -1 {
                return false; // left the enclosing expression
            }
        } else if t.is_punct(';') && depth <= 0 {
            return false;
        } else if (t.is_ident("unwrap") || t.is_ident("expect"))
            && j > 0
            && code[j - 1].is_punct('.')
            && code.get(j + 1).is_some_and(|n| n.is_punct('('))
        {
            return true;
        }
    }
    false
}

/// `nondeterministic_iteration`: iterating a `HashMap`/`HashSet` in a
/// result-producing crate without a sort in the same (or immediately
/// following) statement. Hash iteration order varies per process
/// (SipHash keys are random), so any result bit derived from it breaks
/// the parallel==sequential==cross-process determinism invariant.
///
/// Containers are recognized file-locally: `name: HashMap<..>` in
/// struct/fn/let positions and `let name = HashMap::new()`-style
/// initializers. Order-insensitive reductions ([`ORDER_FREE_SINKS`])
/// are admitted; anything else needs a sort or an allow with a reason.
pub fn nondeterministic_iteration(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    if !f.roles.result_producing || f.roles.test_only {
        return out;
    }
    let code = &f.code;
    let names = hash_container_names(code);
    if names.is_empty() {
        return out;
    }

    for i in 0..code.len() {
        if f.in_test[i] {
            continue;
        }
        let t = &code[i];
        // Pattern A: `for <pat> in [&][mut] <chain> {`.
        if t.is_ident("in") && i > 0 {
            if let Some((name, end)) = dotted_chain(code, i + 1) {
                if names.contains(&name)
                    && code.get(end).is_some_and(|n| n.is_punct('{'))
                    && is_for_loop(code, i)
                {
                    out.push(f.finding(
                        "nondeterministic_iteration",
                        t.line,
                        format!(
                            "`for .. in {name}` iterates a hash container in arbitrary order — \
                             collect and sort, or allow with a reason"
                        ),
                    ));
                }
            }
        }
        // Pattern B: `<chain>.iter()` / `.keys()` / … on a known container.
        if t.kind == TokKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
            && code[i - 2].kind == TokKind::Ident
            && names.contains(&code[i - 2].text)
            && !ordered_downstream(code, i)
        {
            out.push(f.finding(
                "nondeterministic_iteration",
                t.line,
                format!(
                    "{}.{}() iterates a hash container in arbitrary order with no subsequent \
                     sort — collect and sort, or allow with a reason",
                    code[i - 2].text,
                    t.text
                ),
            ));
        }
    }
    out
}

/// Collects identifiers bound to `HashMap`/`HashSet` in this file: typed
/// positions (`name: [&mut] [std::collections::] HashMap<..>`) and
/// `let [mut] name = HashMap::…(..)` initializers.
fn hash_container_names(code: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..code.len() {
        if !(code[i].is_ident("HashMap") || code[i].is_ident("HashSet")) {
            continue;
        }
        // Typed position: walk left over `: & mut std :: collections ::`.
        let mut j = i;
        while j > 0 {
            let p = &code[j - 1];
            if p.is_punct(':')
                || p.is_punct('&')
                || p.kind == TokKind::Lifetime
                || p.is_ident("mut")
                || p.is_ident("std")
                || p.is_ident("collections")
            {
                j -= 1;
            } else {
                break;
            }
        }
        if j < i && j > 0 && code[j - 1].kind == TokKind::Ident && code[j].is_punct(':') {
            names.push(code[j - 1].text.clone());
            continue;
        }
        // Initializer: `let [mut] name = … HashMap :: new (…)`.
        if code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            let mut k = i;
            let mut steps = 0;
            while k > 0 && steps < 40 {
                k -= 1;
                steps += 1;
                if code[k].is_punct(';') || code[k].is_punct('{') || code[k].is_punct('}') {
                    k += 1;
                    break;
                }
            }
            if code.get(k).is_some_and(|t| t.is_ident("let")) {
                let mut n = k + 1;
                if code.get(n).is_some_and(|t| t.is_ident("mut")) {
                    n += 1;
                }
                if code.get(n).map(|t| t.kind) == Some(TokKind::Ident)
                    && code.get(n + 1).is_some_and(|t| t.is_punct('='))
                {
                    names.push(code[n].text.clone());
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// From `start`, consumes `[&][mut] (self.)? ident (.ident)*`; returns
/// the last identifier of the chain and the index just past it.
fn dotted_chain(code: &[Tok], mut start: usize) -> Option<(String, usize)> {
    while code
        .get(start)
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
    {
        start += 1;
    }
    let mut last: Option<String> = None;
    let mut i = start;
    loop {
        match code.get(i) {
            Some(t) if t.kind == TokKind::Ident => {
                last = Some(t.text.clone());
                i += 1;
                if code.get(i).is_some_and(|t| t.is_punct('.'))
                    && code.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident)
                {
                    i += 1;
                    continue;
                }
                break;
            }
            _ => break,
        }
    }
    last.map(|l| (l, i))
}

/// True when the `in` at `i` belongs to a `for` loop (scan back for the
/// `for` before any statement boundary).
fn is_for_loop(code: &[Tok], i: usize) -> bool {
    let mut j = i;
    let mut steps = 0;
    while j > 0 && steps < 30 {
        j -= 1;
        steps += 1;
        if code[j].is_ident("for") {
            return true;
        }
        if code[j].is_punct(';') || code[j].is_punct('{') || code[j].is_punct('}') {
            return false;
        }
    }
    false
}

/// True when the iteration starting at token `i` is made deterministic
/// downstream: a `sort*` call in the same or the next statement, or an
/// order-insensitive terminal in the same chain.
fn ordered_downstream(code: &[Tok], i: usize) -> bool {
    let mut depth: i32 = 0;
    let mut semis = 0;
    for j in i + 1..code.len().min(i + 250) {
        let t = &code[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') || t.is_punct('}') {
            // Entering/leaving a block: stop at the enclosing block edge.
            if t.is_punct('}') && depth <= 0 {
                return false;
            }
        } else if t.is_punct(';') && depth <= 0 {
            semis += 1;
            if semis >= 2 {
                return false;
            }
        } else if t.kind == TokKind::Ident {
            if SORT_TOKENS.contains(&t.text.as_str())
                && code.get(j + 1).is_some_and(|n| n.is_punct('('))
            {
                return true;
            }
            if semis == 0
                && ORDER_FREE_SINKS.contains(&t.text.as_str())
                && j > 0
                && code[j - 1].is_punct('.')
            {
                return true;
            }
        }
    }
    false
}

/// `panic_on_untrusted`: `unwrap` / `expect` / `panic!` /
/// `unreachable!` / `todo!` / `unimplemented!` and `expr[..]` indexing in
/// the decode/parse modules fed by untrusted bytes
/// ([`crate::UNTRUSTED_MODULES`]). Every reachable panic there is a
/// remote crash; provably-internal ones carry an allow with the proof
/// sketch as the reason.
pub fn panic_on_untrusted(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    if !f.roles.untrusted || f.roles.test_only {
        return out;
    }
    let code = &f.code;
    for i in 0..code.len() {
        if f.in_test[i] {
            continue;
        }
        let t = &code[i];
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(f.finding(
                "panic_on_untrusted",
                t.line,
                format!(
                    ".{}() in an untrusted-input module — return a typed error",
                    t.text
                ),
            ));
        }
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && code.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(f.finding(
                "panic_on_untrusted",
                t.line,
                format!(
                    "{}! in an untrusted-input module — return a typed error",
                    t.text
                ),
            ));
        }
        if t.is_punct('[') && i > 0 {
            let p = &code[i - 1];
            let indexable = match p.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                TokKind::Punct => p.is_punct(')') || p.is_punct(']'),
                _ => false,
            };
            if indexable {
                out.push(f.finding(
                    "panic_on_untrusted",
                    t.line,
                    "slice/array indexing panics out of bounds — use get()/get_mut() or prove \
                     the bound and allow with the proof as reason",
                ));
            }
        }
    }
    out
}

/// `wallclock_in_scoring`: any `Instant` / `SystemTime` mention inside a
/// scoring/merge/partition module ([`crate::SCORING_MODULES`]). A result
/// bit must be a pure function of `(query, k)` — time-dependent scoring
/// breaks replica bit-identity and deterministic replay.
pub fn wallclock_in_scoring(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    if !f.roles.scoring || f.roles.test_only {
        return out;
    }
    for (i, t) in f.code.iter().enumerate() {
        if f.in_test[i] {
            continue;
        }
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            out.push(f.finding(
                "wallclock_in_scoring",
                t.line,
                format!(
                    "{} in a scoring/merge/partition module — results must be pure in (query, k)",
                    t.text
                ),
            ));
        }
    }
    out
}

/// `compat_containment`: `use` / `extern crate` of a root outside the
/// allowed surface (std + workspace crates + the `crates/compat/`
/// stand-ins). Guards the offline-build constraint: a new crates.io
/// dependency cannot slip in through one import.
///
/// Roots that are modules declared in the same file (`mod x;` /
/// `mod x {`) are local re-export paths, not dependencies; roots with an
/// uppercase initial are type paths (`use EntityType::Variant`) — both
/// admitted (crates.io crate names are lowercase by convention, so
/// neither loophole can smuggle a dependency in).
pub fn compat_containment(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let code = &f.code;
    let local_mods: Vec<&str> = code
        .iter()
        .enumerate()
        .filter(|(i, t)| {
            t.is_ident("mod")
                && code.get(i + 1).map(|n| n.kind) == Some(TokKind::Ident)
                && code
                    .get(i + 2)
                    .is_some_and(|n| n.is_punct(';') || n.is_punct('{'))
        })
        .filter_map(|(i, _)| code.get(i + 1).map(|n| n.text.as_str()))
        .collect();
    for i in 0..code.len() {
        let root = if code[i].is_ident("use") {
            // `use ::root::…` or `use root::…` — the segment must be
            // followed by `::`, `;`, ` as `, or `::{`; a bare `use x;`
            // re-export is still an import of root `x`.
            let mut j = i + 1;
            if code.get(j).is_some_and(|t| t.is_punct(':'))
                && code.get(j + 1).is_some_and(|t| t.is_punct(':'))
            {
                j += 2;
            }
            code.get(j).filter(|t| t.kind == TokKind::Ident)
        } else if code[i].is_ident("extern") && code.get(i + 1).is_some_and(|t| t.is_ident("crate"))
        {
            code.get(i + 2).filter(|t| t.kind == TokKind::Ident)
        } else {
            None
        };
        let Some(root) = root else { continue };
        let name = root.text.as_str();
        let allowed = ALLOWED_IMPORT_ROOTS.contains(&name)
            || name.starts_with("teda")
            || local_mods.contains(&name)
            || name.chars().next().is_some_and(char::is_uppercase);
        if !allowed {
            out.push(f.finding(
                "compat_containment",
                root.line,
                format!(
                    "import root `{name}` is outside the offline-build surface — extend \
                     crates/compat/ or stay inside the workspace"
                ),
            ));
        }
    }
    out
}
