//! Fixture: a reasoned allow that suppresses nothing — trips
//! `unused_allow` only.

pub fn fine() -> u32 {
    // teda-lint: allow(float_ord_panic) -- fixture: nothing here floats
    41 + 1
}
