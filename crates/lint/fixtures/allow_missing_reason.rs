//! Fixture: an allow without the mandatory reason — the annotation trips
//! `malformed_allow` AND the finding it failed to suppress still stands.
//! (Scanned with the untrusted role forced on.)

pub fn decode(bytes: &[u8]) -> u8 {
    // teda-lint: allow(panic_on_untrusted)
    bytes[0]
}
