//! Fixture: trips `float_ord_panic` (twice) and nothing else.

pub fn ranked(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs
}

pub fn best(xs: &[f64]) -> Option<f64> {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let _ = xs.first()?.partial_cmp(&m).unwrap();
    Some(m)
}
