//! Fixture: trips `wallclock_in_scoring` (twice) and nothing else.
//! (Scanned with the scoring role forced on.)

use std::time::Instant;

pub fn score(base: f64) -> f64 {
    let t = Instant::now();
    base + t.elapsed().as_secs_f64()
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
