//! Fixture: a finding suppressed by a well-formed allow — trips nothing.
//! (Scanned with the untrusted role forced on.)

pub fn decode(bytes: &[u8]) -> u8 {
    // teda-lint: allow(panic_on_untrusted) -- fixture: caller guarantees non-empty
    bytes[0]
}
