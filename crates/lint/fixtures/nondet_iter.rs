//! Fixture: trips `nondeterministic_iteration` (twice) and nothing else.
//! (Scanned with the result-producing role forced on.)

use std::collections::HashMap;

pub fn render(counts: &HashMap<String, usize>) -> String {
    let mut out = String::new();
    for (k, v) in counts.iter() {
        out.push_str(k);
        out.push_str(&v.to_string());
    }
    out
}

pub fn first_key(counts: &HashMap<String, usize>) -> Option<String> {
    let mut keys = Vec::new();
    for k in counts.keys() {
        keys.push(k.clone());
    }
    keys.into_iter().next()
}
