//! Fixture: hash iteration made deterministic — trips nothing.
//! (Scanned with the result-producing role forced on.)

use std::collections::HashMap;

pub fn render(counts: &HashMap<String, usize>) -> String {
    let mut pairs: Vec<(&String, &usize)> = counts.iter().collect();
    pairs.sort();
    let mut out = String::new();
    for (k, v) in pairs {
        out.push_str(k);
        out.push_str(&v.to_string());
    }
    out
}

pub fn size(counts: &HashMap<String, usize>) -> usize {
    counts.iter().count()
}
