//! Fixture: consistently-ordered nested locks — edges but no cycle.

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn sum(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    pub fn diff(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a - *b
    }
}
