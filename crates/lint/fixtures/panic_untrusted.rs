//! Fixture: trips `panic_on_untrusted` (four ways) and nothing else.
//! (Scanned with the untrusted role forced on.)

pub fn decode(bytes: &[u8]) -> u32 {
    let first = bytes[0];
    let s = std::str::from_utf8(bytes).unwrap();
    let n: u32 = s.trim().parse().expect("a number");
    if first == 0 {
        panic!("zero tag");
    }
    n
}
