//! Fixture: an allow naming a lint that does not exist — trips
//! `malformed_allow` only.

pub fn fine() -> u32 {
    // teda-lint: allow(no_such_lint) -- fixture: typo'd lint name
    41 + 1
}
