//! Fixture: clock reads like the obs clock facade's. Clean under the
//! roles `Roles::for_path` derives for `crates/obs/src/clock.rs` (the
//! WALLCLOCK_EXEMPT carve-out), but the same source under any
//! non-exempt scoring path must still trip `wallclock_in_scoring` —
//! the exemption is a named hole, not a weakening of the lint.

use std::time::Instant;

pub struct Timer {
    t0: Instant,
}

pub fn start() -> Timer {
    Timer { t0: Instant::now() }
}

pub fn elapsed_us(t: &Timer) -> u64 {
    t.t0.elapsed().as_micros() as u64
}
