//! Fixture: trips `compat_containment` (twice) and nothing else.

use serde::Serialize;
extern crate tokio;

pub fn noop<T: Serialize>(_t: T) {}
