//! Fixture: clean under every lint with every role forced on.

use std::collections::HashMap;

pub fn ranked(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs
}

pub fn render(counts: &HashMap<String, usize>) -> Result<String, String> {
    let mut pairs: Vec<(&String, &usize)> = counts.iter().collect();
    pairs.sort();
    let mut out = String::new();
    for (k, v) in pairs {
        out.push_str(k);
        out.push_str(&v.to_string());
    }
    Ok(out)
}

pub fn decode(bytes: &[u8]) -> Result<u8, String> {
    bytes.first().copied().ok_or_else(|| "empty".to_string())
}
