//! Fixture: cross-function lock cycle — `outer` holds `alpha` and calls
//! `helper`, which takes `beta`; `other` nests them the opposite way.

use std::sync::Mutex;

pub struct Trio {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Trio {
    pub fn outer(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        *a + self.helper()
    }

    fn helper(&self) -> u32 {
        let b = self.beta.lock().unwrap();
        *b
    }

    pub fn other(&self) -> u32 {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
        *a * *b
    }
}
