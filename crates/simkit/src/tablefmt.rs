//! A plain-text table renderer.
//!
//! Every experiment binary prints results as tables mirroring the paper's
//! layout (Table 1, 2, 3), so the renderer supports column alignment,
//! separator rows (used for the paper's per-category AVERAGE rows) and
//! fixed-precision float cells.

use std::fmt::Write as _;

/// Horizontal alignment of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    Left,
    Right,
}

/// A simple text-table builder.
///
/// ```
/// use teda_simkit::tablefmt::{Align, TextTable};
///
/// let mut t = TextTable::new(vec!["Type", "P", "R", "F"]);
/// t.align(0, Align::Left);
/// t.row(vec!["Museums".into(), "0.83".into(), "0.82".into(), "0.82".into()]);
/// t.separator();
/// t.row(vec!["AVERAGE".into(), "0.88".into(), "0.87".into(), "0.87".into()]);
/// let s = t.render();
/// assert!(s.contains("Museums"));
/// assert!(s.contains("AVERAGE"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<RowKind>,
}

#[derive(Debug, Clone)]
enum RowKind {
    Cells(Vec<String>),
    Separator,
}

impl TextTable {
    /// Creates a table with the given column headers. Columns default to
    /// right alignment (numeric results), which matches the paper's tables;
    /// label columns should be set to [`Align::Left`].
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Right; headers.len()];
        TextTable {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets the alignment of column `idx`.
    pub fn align(&mut self, idx: usize, a: Align) -> &mut Self {
        assert!(idx < self.aligns.len(), "column index out of range");
        self.aligns[idx] = a;
        self
    }

    /// Appends a data row. Panics if the cell count does not match the
    /// header count — experiment code should never emit ragged tables.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(RowKind::Cells(cells));
        self
    }

    /// Appends a horizontal separator (used before AVERAGE rows).
    pub fn separator(&mut self) -> &mut Self {
        self.rows.push(RowKind::Separator);
        self
    }

    /// Number of data rows added so far (separators excluded).
    pub fn n_rows(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r, RowKind::Cells(_)))
            .count()
    }

    /// Renders the table to a `String` terminated by a newline.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            if let RowKind::Cells(cells) = row {
                for (i, c) in cells.iter().enumerate() {
                    widths[i] = widths[i].max(c.chars().count());
                }
            }
        }

        let mut out = String::new();
        self.render_rule(&mut out, &widths);
        self.render_cells(&mut out, &widths, &self.headers);
        self.render_rule(&mut out, &widths);
        for row in &self.rows {
            match row {
                RowKind::Cells(cells) => self.render_cells(&mut out, &widths, cells),
                RowKind::Separator => self.render_rule(&mut out, &widths),
            }
        }
        self.render_rule(&mut out, &widths);
        let _ = ncols;
        out
    }

    fn render_rule(&self, out: &mut String, widths: &[usize]) {
        out.push('+');
        for w in widths {
            for _ in 0..w + 2 {
                out.push('-');
            }
            out.push('+');
        }
        out.push('\n');
    }

    fn render_cells(&self, out: &mut String, widths: &[usize], cells: &[String]) {
        out.push('|');
        for (i, cell) in cells.iter().enumerate() {
            let w = widths[i];
            let len = cell.chars().count();
            let pad = w.saturating_sub(len);
            match self.aligns[i] {
                Align::Left => {
                    let _ = write!(out, " {}{} ", cell, " ".repeat(pad));
                }
                Align::Right => {
                    let _ = write!(out, " {}{} ", " ".repeat(pad), cell);
                }
            }
            out.push('|');
        }
        out.push('\n');
    }
}

/// Formats an `f64` with 2 decimals, the paper's precision for P/R/F values.
/// Negative zero renders as plain zero.
pub fn f2(x: f64) -> String {
    let x = if x == 0.0 { 0.0 } else { x };
    format!("{x:.2}")
}

/// Formats an `f64` with 3 decimals (used for score breakdowns).
/// Negative zero renders as plain zero.
pub fn f3(x: f64) -> String {
    let x = if x == 0.0 { 0.0 } else { x };
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_and_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| a |") || s.contains("|  a |") || s.contains(" a "));
        assert!(s.contains('1') && s.contains('2'));
    }

    #[test]
    fn width_accounts_for_long_cells() {
        let mut t = TextTable::new(vec!["x"]);
        t.row(vec!["longer-cell".into()]);
        let s = t.render();
        assert!(s.contains("longer-cell"));
        // every line must be the same length
        let lens: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "ragged render: {s}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn left_and_right_alignment() {
        let mut t = TextTable::new(vec!["name", "val"]);
        t.align(0, Align::Left);
        t.row(vec!["x".into(), "9".into()]);
        let s = t.render();
        // left-aligned: "| x    |", right-aligned: "|    9 |"
        assert!(s.contains("| x  "), "left align missing: {s}");
        assert!(s.contains("  9 |"), "right align missing: {s}");
    }

    #[test]
    fn separators_and_counts() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into()]);
        t.separator();
        t.row(vec!["2".into()]);
        assert_eq!(t.n_rows(), 2);
        let s = t.render();
        // top rule + header rule + separator + bottom rule = 4 rules
        let rules = s.lines().filter(|l| l.starts_with('+')).count();
        assert_eq!(rules, 4);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(0.876), "0.88");
        assert_eq!(f3(0.125), "0.125");
        assert_eq!(f2(1.0), "1.00");
    }
}
