//! Small summary-statistics helpers used by the experiment harness when
//! reporting per-row timings, score distributions and sweep series.

use std::time::Duration;

/// Summary statistics over a sample of `f64` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean; 0.0 when empty.
    pub mean: f64,
    /// Population standard deviation; 0.0 when empty.
    pub std_dev: f64,
    /// Minimum; 0.0 when empty.
    pub min: f64,
    /// Maximum; 0.0 when empty.
    pub max: f64,
    /// Median (linear interpolation); 0.0 when empty.
    pub p50: f64,
    /// 95th percentile (linear interpolation); 0.0 when empty.
    pub p95: f64,
}

impl Summary {
    /// Computes summary statistics of `xs`. Non-finite values are ignored.
    pub fn of(xs: &[f64]) -> Self {
        let mut clean: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        if clean.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
            };
        }
        clean.sort_by(|a, b| a.total_cmp(b));
        let n = clean.len();
        let mean = clean.iter().sum::<f64>() / n as f64;
        let var = clean.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: clean[0],
            max: clean[n - 1],
            p50: percentile_sorted(&clean, 0.50),
            p95: percentile_sorted(&clean, 0.95),
        }
    }

    /// Convenience constructor from durations, reported in seconds.
    pub fn of_durations(ds: &[Duration]) -> Self {
        let xs: Vec<f64> = ds.iter().map(Duration::as_secs_f64).collect();
        Summary::of(&xs)
    }
}

/// Linear-interpolated percentile of an already-sorted, non-empty slice.
/// `q` in `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The mean of a slice; 0.0 when empty. Shared by several report builders.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p95, 0.0);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.p50, 3.5);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.p50 - 2.5).abs() < 1e-12);
        // population std dev of 1..4 = sqrt(1.25)
        assert!((s.std_dev - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn non_finite_values_ignored() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn all_non_finite_input_yields_the_empty_summary() {
        // The sort runs on the filtered sample; an all-NaN input must
        // fall into the empty branch, not panic in the comparator.
        let s = Summary::of(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY]);
        assert_eq!(s.n, 0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p95, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 10.0);
        assert_eq!(percentile_sorted(&xs, 1.0), 50.0);
        assert_eq!(percentile_sorted(&xs, 0.5), 30.0);
        assert!((percentile_sorted(&xs, 0.25) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn durations_reported_in_seconds() {
        let s = Summary::of_durations(&[Duration::from_millis(500), Duration::from_millis(1500)]);
        assert!((s.mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
