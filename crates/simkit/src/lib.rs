//! `teda-simkit` — the deterministic simulation kit underpinning the whole
//! reproduction.
//!
//! The paper's pipeline talks to three remote services (the Bing search API,
//! the Google Geocoding API, DBpedia's SPARQL endpoint). All of them are
//! replaced by local simulations in this repository, and all of those
//! simulations share the primitives defined here:
//!
//! * [`clock::VirtualClock`] — a shared, monotonically increasing virtual
//!   time source. Simulated services *charge* latency into it instead of
//!   sleeping, so the §6.4 efficiency experiment reproduces the paper's
//!   latency-dominated running times in microseconds of real CPU time.
//! * [`clock::LatencyModel`] — seeded latency distributions (fixed, uniform,
//!   jittered) used by the simulated services.
//! * [`rng`] — stable seed derivation so every component of the fixture
//!   (world, web corpus, table set, classifier initialisation) is
//!   deterministic given one master seed, yet decorrelated across
//!   components.
//! * [`stats`] — summary statistics used by the experiment harness.
//! * [`tablefmt`] — a plain-text table renderer; every experiment binary
//!   prints paper-style tables through it.

pub mod clock;
pub mod rng;
pub mod stats;
pub mod tablefmt;

pub use clock::{LatencyModel, VirtualClock};
pub use rng::{derive_seed, rng_from_seed};
pub use stats::Summary;
pub use tablefmt::TextTable;
