//! Virtual time: a shared clock that simulated services charge latency into.
//!
//! The paper (§6.4) reports that "the running time of our algorithm is
//! dominated by the latency time required to connect to the search engine"
//! (~0.5 s per table row). Reproducing that on a synthetic, in-process Web
//! would be meaningless with wall-clock timing — local lookups take
//! microseconds. Instead, every simulated remote call *advances* a
//! [`VirtualClock`] by a sampled latency, and the efficiency experiment
//! reports virtual seconds per row alongside real CPU time.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::Rng;

/// A monotonically increasing virtual clock, cheaply cloneable and shareable
/// between simulated services (search engine, geocoder) and the harness.
///
/// Internally a single atomic nanosecond counter; `advance` is the only
/// mutation. Cloning shares the underlying counter.
#[derive(Clone, Default)]
pub struct VirtualClock {
    nanos: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `d`, returning the new reading.
    pub fn advance(&self, d: Duration) -> Duration {
        let add = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let prev = self.nanos.fetch_add(add, Ordering::Relaxed);
        Duration::from_nanos(prev.saturating_add(add))
    }

    /// Current virtual time since clock creation (or the last [`reset`]).
    ///
    /// [`reset`]: VirtualClock::reset
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Resets the clock to zero. Useful between experiment phases that share
    /// one fixture but report independent timings.
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
    }

    /// Convenience: elapsed virtual time since an earlier reading.
    pub fn since(&self, earlier: Duration) -> Duration {
        self.now().saturating_sub(earlier)
    }
}

impl fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtualClock({:?})", self.now())
    }
}

/// A seeded latency distribution for a simulated remote service.
///
/// All variants are bounded and deterministic given the caller's RNG, so the
/// efficiency experiment is exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Always exactly this long.
    Fixed(Duration),
    /// Uniform in `[lo, hi]`.
    Uniform { lo: Duration, hi: Duration },
    /// `base` plus a uniform jitter of up to `jitter_frac * base` in either
    /// direction (clamped at zero). `jitter_frac` is typically in `[0, 1)`.
    Jittered { base: Duration, jitter_frac: f64 },
}

impl LatencyModel {
    /// The latency model used for the simulated Bing API: 350–450 ms, the
    /// ballpark that makes a k-snippet row cost ~0.5 s as in §6.4 (one
    /// search query per candidate cell, one to two candidate cells per row).
    pub fn bing_default() -> Self {
        LatencyModel::Uniform {
            lo: Duration::from_millis(350),
            hi: Duration::from_millis(450),
        }
    }

    /// The latency model used for the simulated Google Geocoding API.
    pub fn geocoder_default() -> Self {
        LatencyModel::Uniform {
            lo: Duration::from_millis(90),
            hi: Duration::from_millis(150),
        }
    }

    /// Zero latency — for unit tests that do not care about timing.
    pub fn zero() -> Self {
        LatencyModel::Fixed(Duration::ZERO)
    }

    /// Samples one latency value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { lo, hi } => {
                if hi <= lo {
                    return lo;
                }
                let span = (hi - lo).as_nanos() as u64;
                lo + Duration::from_nanos(rng.gen_range(0..=span))
            }
            LatencyModel::Jittered { base, jitter_frac } => {
                let base_ns = base.as_nanos() as f64;
                let jitter = base_ns * jitter_frac.clamp(0.0, 1.0);
                let lo = (base_ns - jitter).max(0.0) as u64;
                let hi = (base_ns + jitter) as u64;
                if hi <= lo {
                    return base;
                }
                Duration::from_nanos(rng.gen_range(lo..=hi))
            }
        }
    }

    /// The mean of the distribution, used for back-of-envelope reporting.
    pub fn mean(&self) -> Duration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { lo, hi } => (lo + hi) / 2,
            LatencyModel::Jittered { base, .. } => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clock_starts_at_zero() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let c = VirtualClock::new();
        c.advance(Duration::from_millis(100));
        c.advance(Duration::from_millis(250));
        assert_eq!(c.now(), Duration::from_millis(350));
    }

    #[test]
    fn clones_share_time() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        c.advance(Duration::from_secs(1));
        assert_eq!(c2.now(), Duration::from_secs(1));
        c2.advance(Duration::from_secs(2));
        assert_eq!(c.now(), Duration::from_secs(3));
    }

    #[test]
    fn reset_zeroes() {
        let c = VirtualClock::new();
        c.advance(Duration::from_secs(5));
        c.reset();
        assert_eq!(c.now(), Duration::ZERO);
    }

    #[test]
    fn since_computes_deltas() {
        let c = VirtualClock::new();
        c.advance(Duration::from_millis(10));
        let t0 = c.now();
        c.advance(Duration::from_millis(30));
        assert_eq!(c.since(t0), Duration::from_millis(30));
    }

    #[test]
    fn fixed_latency_is_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = LatencyModel::Fixed(Duration::from_millis(42));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), Duration::from_millis(42));
        }
    }

    #[test]
    fn uniform_latency_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let lo = Duration::from_millis(100);
        let hi = Duration::from_millis(200);
        let m = LatencyModel::Uniform { lo, hi };
        for _ in 0..500 {
            let d = m.sample(&mut rng);
            assert!(d >= lo && d <= hi, "{d:?} out of bounds");
        }
    }

    #[test]
    fn uniform_degenerate_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Duration::from_millis(5);
        let m = LatencyModel::Uniform { lo: d, hi: d };
        assert_eq!(m.sample(&mut rng), d);
    }

    #[test]
    fn jittered_latency_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = LatencyModel::Jittered {
            base: Duration::from_millis(100),
            jitter_frac: 0.5,
        };
        for _ in 0..500 {
            let d = m.sample(&mut rng);
            assert!(d >= Duration::from_millis(50) && d <= Duration::from_millis(150));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = LatencyModel::bing_default();
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(123);
            (0..20).map(|_| m.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(123);
            (0..20).map(|_| m.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn means_are_sensible() {
        assert_eq!(
            LatencyModel::Fixed(Duration::from_secs(1)).mean(),
            Duration::from_secs(1)
        );
        assert_eq!(
            LatencyModel::Uniform {
                lo: Duration::from_millis(100),
                hi: Duration::from_millis(300),
            }
            .mean(),
            Duration::from_millis(200)
        );
    }
}
