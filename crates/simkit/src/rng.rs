//! Stable seed derivation.
//!
//! Every generated artefact in the reproduction (knowledge world, Web
//! corpus, gazetteer, table sets, train/test splits, classifier
//! initialisation) must be deterministic given one master seed, yet the
//! streams must be statistically decorrelated: reordering the construction
//! of two components must not change either one.
//!
//! `derive_seed(master, label)` hashes a component label into the master
//! seed (FNV-1a followed by a SplitMix64 finalizer), giving each component
//! its own independent, stable seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Derives a stable sub-seed for a named component from a master seed.
///
/// The same `(master, label)` pair always yields the same seed; different
/// labels yield decorrelated seeds.
///
/// ```
/// use teda_simkit::derive_seed;
///
/// assert_eq!(derive_seed(42, "web"), derive_seed(42, "web"));
/// assert_ne!(derive_seed(42, "web"), derive_seed(42, "world"));
/// ```
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut h = FNV_OFFSET ^ master;
    for &b in label.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h)
}

/// Constructs a [`StdRng`] from a seed. Thin wrapper kept for call-site
/// readability (`rng_from_seed(derive_seed(master, "web"))`).
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// SplitMix64 finalizer: diffuses low-entropy inputs (small master seeds,
/// short labels) across all 64 bits.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn same_inputs_same_seed() {
        assert_eq!(derive_seed(42, "web"), derive_seed(42, "web"));
    }

    #[test]
    fn different_labels_differ() {
        assert_ne!(derive_seed(42, "web"), derive_seed(42, "world"));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(derive_seed(1, "web"), derive_seed(2, "web"));
    }

    #[test]
    fn empty_label_is_valid() {
        // Shouldn't panic, and should still mix the master seed.
        assert_ne!(derive_seed(1, ""), derive_seed(2, ""));
    }

    #[test]
    fn no_collisions_over_small_space() {
        // 1000 (master, label) pairs — collisions would indicate a broken
        // mixer, not bad luck (p < 1e-11 for a good 64-bit hash).
        let mut seen = HashSet::new();
        for master in 0..10u64 {
            for i in 0..100 {
                let s = derive_seed(master, &format!("component-{i}"));
                assert!(seen.insert(s), "collision at master={master} i={i}");
            }
        }
    }

    #[test]
    fn rng_stream_is_reproducible() {
        let mut a = rng_from_seed(derive_seed(7, "x"));
        let mut b = rng_from_seed(derive_seed(7, "x"));
        let va: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn label_prefix_does_not_alias() {
        // "ab" + "c" must differ from "a" + "bc" style aliasing.
        assert_ne!(derive_seed(3, "abc"), derive_seed(3, "ab"));
        assert_ne!(derive_seed(3, "abc"), derive_seed(3, "bc"));
    }
}
