//! Property tests for the table substrate.

use proptest::prelude::*;

use teda_tabular::csv::{parse_table, write_table};
use teda_tabular::detect::detect;
use teda_tabular::Table;

proptest! {
    /// CSV round-trips arbitrary cell content, including quotes, commas
    /// and newlines.
    #[test]
    fn csv_round_trip(
        rows in proptest::collection::vec(
            proptest::collection::vec("\\PC{0,20}", 2..=2),
            1..8
        )
    ) {
        let mut b = Table::builder(2).name("rt");
        for r in &rows {
            b.push_row(r.clone()).unwrap();
        }
        let t = b.build().unwrap();
        let csv = write_table(&t);
        let back = parse_table(&csv, "rt", false).unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        for i in 0..t.n_rows() {
            for j in 0..2 {
                // \r\n and \r normalize to \n on re-parse; compare modulo that
                let orig = t.cell(i, j).replace("\r\n", "\n").replace('\r', "");
                prop_assert_eq!(back.cell(i, j), orig);
            }
        }
    }

    /// Occurrence counts per column sum to the number of rows.
    #[test]
    fn occurrences_partition_the_column(
        cells in proptest::collection::vec("[a-c]{0,2}", 1..20)
    ) {
        let mut b = Table::builder(1);
        for c in &cells {
            b.push_row(vec![c.clone()]).unwrap();
        }
        let t = b.build().unwrap();
        let occ = t.column_occurrences(0);
        let total: usize = occ.values().sum();
        prop_assert_eq!(total, t.n_rows());
        for i in 0..t.n_rows() {
            prop_assert_eq!(t.occurrence_count(i, 0), occ[t.cell(i, 0)]);
        }
    }

    /// The value detector never panics and is deterministic.
    #[test]
    fn detect_total_and_pure(s in "\\PC{0,60}") {
        prop_assert_eq!(detect(&s), detect(&s));
    }
}
