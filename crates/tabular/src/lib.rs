//! `teda-tabular` — the table substrate.
//!
//! The paper annotates tables hosted by Google Fusion Tables (GFT), whose
//! distinguishing feature over generic Web tables is that *columns carry a
//! type* — `Text`, `Number`, `Location` or `Date` (§3). The pre-processing
//! step of the annotation algorithm (§5.1) uses those types to rule out
//! cells, and the spatial-disambiguation step (§5.2.2) uses `Location`
//! columns to find addresses.
//!
//! This crate models such tables as dense `n × m` grids of string cells
//! (§4 explicitly scopes the paper to tables without branching subcolumns),
//! with optional headers and per-column [`ColumnType`]s. For Web tables that
//! carry no GFT types (the "Wiki Manual" comparison set of §6.3), the
//! [`infer`] module provides syntactic column-type inference.

pub mod cell;
pub mod csv;
pub mod detect;
pub mod infer;
pub mod table;

pub use cell::CellId;
pub use detect::ValueKind;
pub use table::{ColumnType, Table, TableBuilder, TableError};
