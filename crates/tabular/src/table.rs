//! The table model: a dense `n × m` grid of string cells with optional
//! headers and per-column GFT types.

use std::collections::HashMap;
use std::fmt;

use crate::cell::CellId;

/// The column types assigned by Google Fusion Tables (§3), plus `Unknown`
/// for generic Web tables that carry no type information (the Wiki Manual
/// set of §6.3 is loaded with every column `Unknown` and then run through
/// [`crate::infer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ColumnType {
    /// Free text — the only column type whose cells may name entities.
    #[default]
    Text,
    /// Numeric values (ratings, counts, years used as plain numbers).
    Number,
    /// Spatial values: postal addresses, city names, coordinates.
    Location,
    /// Calendar dates.
    Date,
    /// No type information available (non-GFT Web tables).
    Unknown,
}

impl ColumnType {
    /// All concrete GFT types (excludes `Unknown`).
    pub const GFT_TYPES: [ColumnType; 4] = [
        ColumnType::Text,
        ColumnType::Number,
        ColumnType::Location,
        ColumnType::Date,
    ];

    /// Whether the pre-processing step (§5.1) may skip querying the search
    /// engine for cells of this column when looking for entity names:
    /// "Cells that belong to columns with a specific GFT type such as
    /// Location, Date, or Number."
    pub fn excludes_entity_names(self) -> bool {
        matches!(
            self,
            ColumnType::Number | ColumnType::Location | ColumnType::Date
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Text => "Text",
            ColumnType::Number => "Number",
            ColumnType::Location => "Location",
            ColumnType::Date => "Date",
            ColumnType::Unknown => "Unknown",
        };
        f.write_str(s)
    }
}

/// Errors raised while constructing or mutating tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A row was pushed whose width differs from the table's column count.
    RaggedRow { expected: usize, got: usize },
    /// Header or column-type vector width differs from the column count.
    WidthMismatch { expected: usize, got: usize },
    /// The builder was finished with zero columns.
    NoColumns,
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::RaggedRow { expected, got } => {
                write!(f, "ragged row: expected {expected} cells, got {got}")
            }
            TableError::WidthMismatch { expected, got } => {
                write!(f, "width mismatch: expected {expected}, got {got}")
            }
            TableError::NoColumns => write!(f, "table must have at least one column"),
        }
    }
}

impl std::error::Error for TableError {}

/// A rectangular table: `n` data rows by `m` columns of string cells.
///
/// Headers are *not* part of the grid (the paper treats the header row as
/// unreliable context — Fig. 4 — and never annotates it), but are kept for
/// reporting. Cell content is stored row-major in a single `Vec<String>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    headers: Option<Vec<String>>,
    column_types: Vec<ColumnType>,
    cells: Vec<String>,
    n_rows: usize,
    n_cols: usize,
}

impl Table {
    /// Starts building a table with `n_cols` columns.
    pub fn builder(n_cols: usize) -> TableBuilder {
        TableBuilder::new(n_cols)
    }

    /// The table's name (GFT tables are named documents).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// The header row, if any.
    pub fn headers(&self) -> Option<&[String]> {
        self.headers.as_deref()
    }

    /// The GFT type of column `j`. Panics on out-of-range `j`.
    pub fn column_type(&self, j: usize) -> ColumnType {
        self.column_types[j]
    }

    /// All column types in order.
    pub fn column_types(&self) -> &[ColumnType] {
        &self.column_types
    }

    /// Replaces the type of column `j` (used by [`crate::infer`]).
    pub fn set_column_type(&mut self, j: usize, t: ColumnType) {
        assert!(j < self.n_cols, "column index out of range");
        self.column_types[j] = t;
    }

    /// The content of cell `(i, j)`, 0-based. Panics when out of range.
    pub fn cell(&self, i: usize, j: usize) -> &str {
        assert!(i < self.n_rows && j < self.n_cols, "cell out of range");
        &self.cells[i * self.n_cols + j]
    }

    /// The content of a cell addressed by id.
    pub fn cell_at(&self, id: CellId) -> &str {
        self.cell(id.row, id.col)
    }

    /// Checked cell access.
    pub fn get(&self, i: usize, j: usize) -> Option<&str> {
        if i < self.n_rows && j < self.n_cols {
            Some(&self.cells[i * self.n_cols + j])
        } else {
            None
        }
    }

    /// Iterates over the cells of row `i` in column order.
    pub fn row(&self, i: usize) -> impl Iterator<Item = &str> {
        assert!(i < self.n_rows, "row out of range");
        self.cells[i * self.n_cols..(i + 1) * self.n_cols]
            .iter()
            .map(String::as_str)
    }

    /// Iterates over the cells of column `j` in row order.
    pub fn column(&self, j: usize) -> impl Iterator<Item = &str> + '_ {
        assert!(j < self.n_cols, "column out of range");
        (0..self.n_rows).map(move |i| self.cell(i, j))
    }

    /// Iterates over all cell ids in row-major order.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        let n_cols = self.n_cols;
        (0..self.n_rows).flat_map(move |i| (0..n_cols).map(move |j| CellId::new(i, j)))
    }

    /// Occurrence counts of each distinct value in column `j`.
    ///
    /// This is the `o(i, j)` factor of Eq. 2 (§5.3): the number of cells in
    /// column `j` whose content equals the content of `T(i, j)`. Repeated
    /// values (e.g. a column full of the literal word "Museum", Fig. 8) get
    /// their scores discounted by `1 / o(i, j)` during post-processing.
    pub fn column_occurrences(&self, j: usize) -> HashMap<&str, usize> {
        let mut counts: HashMap<&str, usize> = HashMap::with_capacity(self.n_rows);
        for v in self.column(j) {
            *counts.entry(v).or_insert(0) += 1;
        }
        counts
    }

    /// `o(i, j)`: occurrences of the content of `T(i, j)` within column `j`.
    /// At least 1 for any in-range cell.
    pub fn occurrence_count(&self, i: usize, j: usize) -> usize {
        let needle = self.cell(i, j);
        self.column(j).filter(|v| *v == needle).count()
    }

    /// Number of distinct values in column `j`.
    pub fn column_distinct(&self, j: usize) -> usize {
        self.column_occurrences(j).len()
    }

    /// Indices of columns with the given type.
    pub fn columns_of_type(&self, t: ColumnType) -> Vec<usize> {
        (0..self.n_cols)
            .filter(|&j| self.column_types[j] == t)
            .collect()
    }
}

/// Builder for [`Table`]; validates rectangularity as rows are pushed.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    headers: Option<Vec<String>>,
    column_types: Vec<ColumnType>,
    cells: Vec<String>,
    n_cols: usize,
    n_rows: usize,
}

impl TableBuilder {
    /// Creates a builder for a table with `n_cols` columns; all columns
    /// default to [`ColumnType::Text`].
    pub fn new(n_cols: usize) -> Self {
        TableBuilder {
            name: String::new(),
            headers: None,
            column_types: vec![ColumnType::Text; n_cols],
            cells: Vec::new(),
            n_cols,
            n_rows: 0,
        }
    }

    /// Names the table.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the header row. Must match the column count.
    pub fn headers<S: Into<String>>(mut self, headers: Vec<S>) -> Result<Self, TableError> {
        if headers.len() != self.n_cols {
            return Err(TableError::WidthMismatch {
                expected: self.n_cols,
                got: headers.len(),
            });
        }
        self.headers = Some(headers.into_iter().map(Into::into).collect());
        Ok(self)
    }

    /// Sets all column types at once. Must match the column count.
    pub fn column_types(mut self, types: Vec<ColumnType>) -> Result<Self, TableError> {
        if types.len() != self.n_cols {
            return Err(TableError::WidthMismatch {
                expected: self.n_cols,
                got: types.len(),
            });
        }
        self.column_types = types;
        Ok(self)
    }

    /// Sets the type of a single column.
    pub fn column_type(mut self, j: usize, t: ColumnType) -> Self {
        assert!(j < self.n_cols, "column index out of range");
        self.column_types[j] = t;
        self
    }

    /// Appends a data row.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) -> Result<&mut Self, TableError> {
        if row.len() != self.n_cols {
            return Err(TableError::RaggedRow {
                expected: self.n_cols,
                got: row.len(),
            });
        }
        self.cells.extend(row.into_iter().map(Into::into));
        self.n_rows += 1;
        Ok(self)
    }

    /// Appends a data row, consuming and returning the builder (chainable
    /// form used heavily by tests and generators).
    pub fn row<S: Into<String>>(mut self, row: Vec<S>) -> Result<Self, TableError> {
        self.push_row(row)?;
        Ok(self)
    }

    /// Finishes the table.
    pub fn build(self) -> Result<Table, TableError> {
        if self.n_cols == 0 {
            return Err(TableError::NoColumns);
        }
        Ok(Table {
            name: self.name,
            headers: self.headers,
            column_types: self.column_types,
            cells: self.cells,
            n_rows: self.n_rows,
            n_cols: self.n_cols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Table {
        Table::builder(2)
            .name("poi")
            .headers(vec!["Name", "City"])
            .unwrap()
            .column_type(1, ColumnType::Location)
            .row(vec!["Musée du Louvre", "Paris"])
            .unwrap()
            .row(vec!["Metropolitan Museum of Art", "New York"])
            .unwrap()
            .row(vec!["Musée du Louvre", "Paris"])
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn dimensions_and_access() {
        let t = small();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.cell(0, 0), "Musée du Louvre");
        assert_eq!(t.cell(1, 1), "New York");
        assert_eq!(t.cell_at(CellId::new(2, 0)), "Musée du Louvre");
        assert_eq!(t.get(3, 0), None);
        assert_eq!(t.get(0, 2), None);
    }

    #[test]
    fn headers_and_types() {
        let t = small();
        assert_eq!(t.headers().unwrap()[1], "City");
        assert_eq!(t.column_type(0), ColumnType::Text);
        assert_eq!(t.column_type(1), ColumnType::Location);
        assert_eq!(t.columns_of_type(ColumnType::Location), vec![1]);
    }

    #[test]
    fn row_and_column_iteration() {
        let t = small();
        let r0: Vec<&str> = t.row(0).collect();
        assert_eq!(r0, vec!["Musée du Louvre", "Paris"]);
        let c1: Vec<&str> = t.column(1).collect();
        assert_eq!(c1, vec!["Paris", "New York", "Paris"]);
    }

    #[test]
    fn occurrence_counts_match_eq2_factor() {
        let t = small();
        assert_eq!(t.occurrence_count(0, 0), 2); // Louvre appears twice
        assert_eq!(t.occurrence_count(1, 0), 1);
        let occ = t.column_occurrences(1);
        assert_eq!(occ["Paris"], 2);
        assert_eq!(occ["New York"], 1);
        assert_eq!(t.column_distinct(1), 2);
    }

    #[test]
    fn cell_ids_are_row_major() {
        let t = small();
        let ids: Vec<CellId> = t.cell_ids().collect();
        assert_eq!(ids.len(), 6);
        assert_eq!(ids[0], CellId::new(0, 0));
        assert_eq!(ids[1], CellId::new(0, 1));
        assert_eq!(ids[2], CellId::new(1, 0));
    }

    #[test]
    fn ragged_row_rejected() {
        let mut b = Table::builder(2);
        let err = b.push_row(vec!["only one"]).unwrap_err();
        assert_eq!(
            err,
            TableError::RaggedRow {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn header_width_checked() {
        let err = Table::builder(2).headers(vec!["a"]).unwrap_err();
        assert_eq!(
            err,
            TableError::WidthMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn zero_column_table_rejected() {
        assert_eq!(
            Table::builder(0).build().unwrap_err(),
            TableError::NoColumns
        );
    }

    #[test]
    fn empty_table_is_fine() {
        let t = Table::builder(3).build().unwrap();
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.cell_ids().count(), 0);
    }

    #[test]
    fn set_column_type_mutates() {
        let mut t = small();
        t.set_column_type(0, ColumnType::Date);
        assert_eq!(t.column_type(0), ColumnType::Date);
    }

    #[test]
    fn exclusion_rule_matches_paper() {
        assert!(ColumnType::Number.excludes_entity_names());
        assert!(ColumnType::Location.excludes_entity_names());
        assert!(ColumnType::Date.excludes_entity_names());
        assert!(!ColumnType::Text.excludes_entity_names());
        assert!(!ColumnType::Unknown.excludes_entity_names());
    }
}
