//! Cell addressing.
//!
//! The paper addresses cells as `T(i, j)` with 1-based row and column
//! indices (§4). Rust-side we use 0-based indices throughout; the paper's
//! worked examples are translated in tests where they are reproduced.

use std::fmt;

/// The coordinates of one cell inside a table: `row` then `col`, 0-based.
///
/// Annotations, gold-standard records and disambiguation-graph nodes all
/// refer to cells through this id, so it is `Copy`, hashable and ordered
/// (row-major) to make reports deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// 0-based row index.
    pub row: usize,
    /// 0-based column index.
    pub col: usize,
}

impl CellId {
    /// Creates a cell id.
    pub fn new(row: usize, col: usize) -> Self {
        CellId { row, col }
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Rendered 1-based to match the paper's T(i, j) notation in reports.
        write!(f, "T({},{})", self.row + 1, self.col + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_is_one_based_like_the_paper() {
        assert_eq!(CellId::new(11, 0).to_string(), "T(12,1)");
    }

    #[test]
    fn ordering_is_row_major() {
        let mut v = vec![CellId::new(1, 0), CellId::new(0, 5), CellId::new(0, 1)];
        v.sort();
        assert_eq!(
            v,
            vec![CellId::new(0, 1), CellId::new(0, 5), CellId::new(1, 0)]
        );
    }

    #[test]
    fn hashable() {
        let mut s = HashSet::new();
        s.insert(CellId::new(0, 0));
        s.insert(CellId::new(0, 0));
        assert_eq!(s.len(), 1);
    }
}
