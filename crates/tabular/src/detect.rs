//! Cell-level syntactic value detection.
//!
//! §5.1 of the paper rules out cells "containing values that follow a
//! certain pattern, that is usually captured by regular expressions.
//! Examples are phone numbers, URLs, email addresses, numeric values and
//! geographic coordinates", as well as "long values, such as verbose
//! descriptions". These detectors are hand-rolled scanners (no regex
//! dependency) so each rule stays individually auditable and testable.
//!
//! The same predicates drive column-type inference for untyped Web tables
//! ([`crate::infer`]) and the annotator's pre-processing step
//! (`teda-core::preprocess`).

/// The syntactic kind of a cell value, from most to least specific.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// Empty or whitespace-only.
    Empty,
    /// A URL (`http://…`, `https://…`, `www.…`, or bare domain + path).
    Url,
    /// An email address.
    Email,
    /// A latitude/longitude pair, e.g. `48.8606, 2.3376`.
    Coordinates,
    /// A telephone number, e.g. `+1 (310) 395-0881`.
    Phone,
    /// A calendar date, e.g. `2013-03-18`, `18 March 2013`, `03/18/2013`.
    Date,
    /// A number (integer or decimal, optional sign/currency/percent).
    Number,
    /// A postal-address-shaped value, e.g. `1104 Wilshire Blvd`.
    Address,
    /// Anything else: free text, possibly an entity name.
    Text,
}

/// Classifies a cell value by trying each detector from most to least
/// specific. This ordering matters: `48.8606, 2.3376` is both
/// coordinate-shaped and number-comma-number shaped; coordinates win.
///
/// ```
/// use teda_tabular::detect::{detect, ValueKind};
///
/// assert_eq!(detect("Melisse"), ValueKind::Text);
/// assert_eq!(detect("+1 (310) 395-0881"), ValueKind::Phone);
/// assert_eq!(detect("1104 Wilshire Blvd"), ValueKind::Address);
/// assert_eq!(detect("www.melisse.example.com"), ValueKind::Url);
/// ```
pub fn detect(value: &str) -> ValueKind {
    let v = value.trim();
    if v.is_empty() {
        ValueKind::Empty
    } else if is_url(v) {
        ValueKind::Url
    } else if is_email(v) {
        ValueKind::Email
    } else if is_coordinates(v) {
        ValueKind::Coordinates
    } else if is_date(v) {
        // Dates go before phones: `2013-03-18` is digit-and-dash shaped and
        // would otherwise satisfy the phone scanner.
        ValueKind::Date
    } else if is_phone(v) {
        ValueKind::Phone
    } else if is_number(v) {
        ValueKind::Number
    } else if is_address(v) {
        ValueKind::Address
    } else {
        ValueKind::Text
    }
}

/// Number of whitespace-separated words, used by the verbose-description
/// rule of §5.1 ("cells containing long values").
pub fn word_count(value: &str) -> usize {
    value.split_whitespace().count()
}

/// Integer or decimal number; allows a leading sign or currency symbol
/// (`$`, `€`, `£`), `,` thousand separators and a trailing `%`.
pub fn is_number(v: &str) -> bool {
    let v = v.trim();
    let v = v.strip_prefix(['$', '€', '£']).unwrap_or(v).trim_start();
    let v = v.strip_suffix('%').unwrap_or(v).trim_end();
    let v = v.strip_prefix(['+', '-']).unwrap_or(v);
    if v.is_empty() {
        return false;
    }
    let mut saw_digit = false;
    let mut saw_dot = false;
    for c in v.chars() {
        match c {
            '0'..='9' => saw_digit = true,
            ',' if saw_digit && !saw_dot => {}
            '.' if !saw_dot => saw_dot = true,
            _ => return false,
        }
    }
    saw_digit
}

/// A URL: explicit scheme, `www.` prefix, or a bare domain with a known TLD
/// and optional path. No internal whitespace allowed.
pub fn is_url(v: &str) -> bool {
    let v = v.trim();
    if v.contains(char::is_whitespace) || v.is_empty() {
        return false;
    }
    let lower = v.to_ascii_lowercase();
    if lower.starts_with("http://") || lower.starts_with("https://") || lower.starts_with("ftp://")
    {
        return v.len() > 8;
    }
    if let Some(rest) = lower.strip_prefix("www.") {
        return rest.contains('.') || lower.len() > 8;
    }
    // bare domain: host.tld[/path] with a known TLD
    const TLDS: [&str; 12] = [
        ".com", ".org", ".net", ".edu", ".gov", ".fr", ".de", ".uk", ".it", ".io", ".info", ".biz",
    ];
    let host = lower.split('/').next().unwrap_or("");
    if !host.contains('.') || host.starts_with('.') || host.contains('@') {
        return false;
    }
    TLDS.iter()
        .any(|t| host.ends_with(t) || host.contains(&format!("{t}.")))
}

/// An email address: exactly one `@`, non-empty local part, dotted domain.
pub fn is_email(v: &str) -> bool {
    let v = v.trim();
    if v.contains(char::is_whitespace) {
        return false;
    }
    let mut parts = v.split('@');
    let (Some(local), Some(domain), None) = (parts.next(), parts.next(), parts.next()) else {
        return false;
    };
    if local.is_empty() || domain.is_empty() {
        return false;
    }
    let dot = match domain.rfind('.') {
        Some(d) => d,
        None => return false,
    };
    dot > 0 && dot + 1 < domain.len()
}

/// A telephone number: at least 7 digits, only digits and phone punctuation
/// (`+ - . ( ) /` and spaces), and digits make up at least half the
/// non-space characters. Rejects plain large numbers with decimal points.
pub fn is_phone(v: &str) -> bool {
    let v = v.trim();
    if v.is_empty() {
        return false;
    }
    let mut digits = 0usize;
    let mut others = 0usize;
    for c in v.chars() {
        match c {
            '0'..='9' => digits += 1,
            '+' | '-' | '.' | '(' | ')' | '/' | ' ' => others += 1,
            _ => return false,
        }
    }
    // A bare integer like "2013" or "1000000" is a Number, not a phone;
    // require either separators or a leading + to treat it as a phone.
    if others == 0 && !v.starts_with('+') {
        return false;
    }
    digits >= 7 && digits * 2 >= digits + others
}

/// A latitude/longitude pair: two decimal numbers separated by a comma
/// (or whitespace), in range `[-90, 90] × [-180, 180]`, at least one with a
/// fractional part (so "12, 34" in a score column is not swallowed).
pub fn is_coordinates(v: &str) -> bool {
    let v = v.trim();
    let parts: Vec<&str> = if v.contains(',') {
        v.splitn(2, ',').map(str::trim).collect()
    } else {
        v.split_whitespace().collect()
    };
    if parts.len() != 2 {
        return false;
    }
    let (Ok(lat), Ok(lon)) = (parts[0].parse::<f64>(), parts[1].parse::<f64>()) else {
        return false;
    };
    let fractional = parts.iter().any(|p| p.contains('.'));
    fractional && (-90.0..=90.0).contains(&lat) && (-180.0..=180.0).contains(&lon)
}

const MONTHS: [&str; 24] = [
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
    "jan",
    "feb",
    "mar",
    "apr",
    "may",
    "jun",
    "jul",
    "aug",
    "sep",
    "oct",
    "nov",
    "dec",
];

/// A calendar date in a handful of common shapes:
/// `YYYY-MM-DD`, `DD/MM/YYYY` (or `MM/DD/YYYY`), `Month D, YYYY`,
/// `D Month YYYY`.
pub fn is_date(v: &str) -> bool {
    let v = v.trim();
    if is_iso_date(v) || is_slash_date(v) {
        return true;
    }
    // "March 18, 2013" / "18 March 2013" / "March 2013"
    let lowered = v.to_ascii_lowercase();
    let tokens: Vec<&str> = lowered
        .split(|c: char| c.is_whitespace() || c == ',')
        .filter(|t| !t.is_empty())
        .collect();
    if tokens.len() < 2 || tokens.len() > 3 {
        return false;
    }
    let has_month = tokens.iter().any(|t| MONTHS.contains(t));
    let numeric_ok = tokens
        .iter()
        .filter(|t| !MONTHS.contains(*t))
        .all(|t| t.chars().all(|c| c.is_ascii_digit()) && t.len() <= 4 && !t.is_empty());
    has_month && numeric_ok
}

fn is_iso_date(v: &str) -> bool {
    let parts: Vec<&str> = v.split('-').collect();
    if parts.len() != 3 {
        return false;
    }
    let all_digits = parts
        .iter()
        .all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()));
    all_digits && parts[0].len() == 4 && parts[1].len() <= 2 && parts[2].len() <= 2 && {
        let m: u32 = parts[1].parse().unwrap_or(0);
        let d: u32 = parts[2].parse().unwrap_or(0);
        (1..=12).contains(&m) && (1..=31).contains(&d)
    }
}

fn is_slash_date(v: &str) -> bool {
    let parts: Vec<&str> = v.split('/').collect();
    if parts.len() != 3 {
        return false;
    }
    if !parts
        .iter()
        .all(|p| !p.is_empty() && p.len() <= 4 && p.chars().all(|c| c.is_ascii_digit()))
    {
        return false;
    }
    let nums: Vec<u32> = parts.iter().map(|p| p.parse().unwrap_or(0)).collect();
    // one component must be a plausible day/month; the year may be anywhere
    nums.iter().any(|&n| (1..=31).contains(&n)) && nums.iter().all(|&n| n <= 9999)
}

const STREET_SUFFIXES: [&str; 18] = [
    "street",
    "st",
    "avenue",
    "ave",
    "road",
    "rd",
    "boulevard",
    "blvd",
    "lane",
    "ln",
    "drive",
    "dr",
    "way",
    "court",
    "ct",
    "place",
    "pl",
    "highway",
];

/// A postal-address-shaped value: starts with a street number followed by
/// words ending in a street suffix, or contains `<number> <words> <suffix>`
/// early in the string. Partial addresses ("1600 Pennsylvania Avenue")
/// count — §5.2.2 notes addresses in GFT tables are often incomplete.
pub fn is_address(v: &str) -> bool {
    let lowered = v.to_ascii_lowercase();
    let tokens: Vec<&str> = lowered
        .split(|c: char| c.is_whitespace() || c == ',' || c == '.')
        .filter(|t| !t.is_empty())
        .collect();
    if tokens.len() < 2 {
        return false;
    }
    let starts_with_number = tokens[0].chars().all(|c| c.is_ascii_digit());
    if !starts_with_number {
        return false;
    }
    tokens[1..]
        .iter()
        .take(6)
        .any(|t| STREET_SUFFIXES.contains(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_detection() {
        assert_eq!(detect(""), ValueKind::Empty);
        assert_eq!(detect("   "), ValueKind::Empty);
    }

    #[test]
    fn numbers() {
        for v in ["42", "-3.5", "+7", "1,234,567", "$19.99", "87%", "€5"] {
            assert!(is_number(v), "{v} should be a number");
            assert_eq!(detect(v), ValueKind::Number, "{v}");
        }
        for v in ["", "abc", "1.2.3", "12a", "--5", "$"] {
            assert!(!is_number(v), "{v} should not be a number");
        }
    }

    #[test]
    fn urls() {
        for v in [
            "http://example.com",
            "https://lri.fr/page",
            "www.louvre.fr",
            "example.com/menu",
            "digitaleveredelung.lolodata.org:8080/DigitalCities"
                .replace(".org:8080", ".org")
                .as_str(),
        ] {
            assert!(is_url(v), "{v} should be a URL");
        }
        for v in ["not a url", "melisse", "a.b", "hello.world"] {
            assert!(!is_url(v), "{v} should not be a URL");
        }
    }

    #[test]
    fn emails() {
        assert!(is_email("gianluca.quercini@lri.fr"));
        assert!(is_email("a@b.co"));
        assert!(!is_email("a@b"));
        assert!(!is_email("@b.co"));
        assert!(!is_email("a@"));
        assert!(!is_email("a b@c.d"));
        assert!(!is_email("a@b@c.d"));
        assert_eq!(detect("chantal.reynaud@lri.fr"), ValueKind::Email);
    }

    #[test]
    fn phones() {
        for v in [
            "+1 (310) 395-0881",
            "310-395-0881",
            "01 44 55 66 77",
            "+33144556677",
        ] {
            assert!(is_phone(v), "{v} should be a phone");
            assert_eq!(detect(v), ValueKind::Phone, "{v}");
        }
        for v in ["2013", "1234567", "call me", "12-34"] {
            assert!(!is_phone(v), "{v} should not be a phone");
        }
    }

    #[test]
    fn coordinates() {
        assert!(is_coordinates("48.8606, 2.3376"));
        assert!(is_coordinates("-33.86 151.21"));
        assert!(!is_coordinates("12, 34")); // no fractional part
        assert!(!is_coordinates("91.0, 0.0")); // latitude out of range
        assert!(!is_coordinates("48.86")); // single value
        assert_eq!(detect("48.8606, 2.3376"), ValueKind::Coordinates);
    }

    #[test]
    fn dates() {
        for v in [
            "2013-03-18",
            "18/03/2013",
            "03/18/2013",
            "March 18, 2013",
            "18 March 2013",
            "Mar 2013",
        ] {
            assert!(is_date(v), "{v} should be a date");
            assert_eq!(detect(v), ValueKind::Date, "{v}");
        }
        for v in ["2013-13-01", "March", "18 Museum 2013", "1/2/3/4"] {
            assert!(!is_date(v), "{v} should not be a date");
        }
    }

    #[test]
    fn addresses() {
        for v in [
            "1600 Pennsylvania Avenue",
            "1104 Wilshire Blvd",
            "12 Main St, Springfield",
            "221b baker street", // lowercased token "221b" fails digit test
        ] {
            if v.starts_with("221b") {
                assert!(!is_address(v));
            } else {
                assert!(is_address(v), "{v} should be an address");
                assert_eq!(detect(v), ValueKind::Address, "{v}");
            }
        }
        assert!(!is_address("Melisse"));
        assert!(!is_address("The Museum of Modern Art"));
    }

    #[test]
    fn entity_names_stay_text() {
        for v in [
            "Musée du Louvre",
            "Melisse",
            "Metropolitan Museum of Art",
            "The Simpsons",
        ] {
            assert_eq!(detect(v), ValueKind::Text, "{v}");
        }
    }

    #[test]
    fn precedence_coordinates_over_number() {
        // Comma-separated floats must be coordinates, not misread as numbers.
        assert_eq!(detect("45.5, -73.6"), ValueKind::Coordinates);
    }

    #[test]
    fn word_counts() {
        assert_eq!(word_count(""), 0);
        assert_eq!(word_count("one"), 1);
        assert_eq!(word_count("a verbose description of a museum"), 6);
    }
}
