//! Column-type inference for tables that carry no GFT types.
//!
//! The §6.3 comparison runs the annotator on a Wikipedia-derived table set
//! ("Wiki Manual"), where columns have no declared types. GFT's own typing
//! is approximated here by a majority vote over the syntactic kind of each
//! column's non-empty cells ([`crate::detect`]), echoing the paper's
//! principle of column homogeneity (§4): "the cells in a single column have
//! homogeneous data types".

use crate::detect::{detect, ValueKind};
use crate::table::{ColumnType, Table};

/// Fraction of (non-empty) cells that must agree on a kind before the
/// column is assigned the corresponding type. Below this the column stays
/// `Text` — the safe default, since only `Number`/`Location`/`Date` columns
/// are *excluded* from annotation.
pub const MAJORITY_THRESHOLD: f64 = 0.6;

/// Infers a [`ColumnType`] for column `j` of `table`.
///
/// Empty cells are ignored; an entirely empty column stays
/// [`ColumnType::Text`].
pub fn infer_column_type(table: &Table, j: usize) -> ColumnType {
    let mut counts = [0usize; 5]; // number, location, date, text, total
    for v in table.column(j) {
        let kind = detect(v);
        let slot = match kind {
            ValueKind::Empty => continue,
            ValueKind::Number => 0,
            ValueKind::Coordinates | ValueKind::Address => 1,
            ValueKind::Date => 2,
            // URLs, emails and phones are Text in the GFT type system; the
            // annotator's pre-processing handles them at cell granularity.
            ValueKind::Url | ValueKind::Email | ValueKind::Phone | ValueKind::Text => 3,
        };
        counts[slot] += 1;
        counts[4] += 1;
    }
    let total = counts[4];
    if total == 0 {
        return ColumnType::Text;
    }
    let threshold = (total as f64 * MAJORITY_THRESHOLD).ceil() as usize;
    if counts[0] >= threshold {
        ColumnType::Number
    } else if counts[1] >= threshold {
        ColumnType::Location
    } else if counts[2] >= threshold {
        ColumnType::Date
    } else {
        ColumnType::Text
    }
}

/// Infers and assigns types for every `Unknown` column of `table`.
/// Returns the inferred types (including those already set, untouched).
pub fn infer_column_types(table: &mut Table) -> Vec<ColumnType> {
    for j in 0..table.n_cols() {
        if table.column_type(j) == ColumnType::Unknown {
            let t = infer_column_type(table, j);
            table.set_column_type(j, t);
        }
    }
    table.column_types().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn table_with_column(values: &[&str]) -> Table {
        let mut b = Table::builder(1);
        for v in values {
            b.push_row(vec![*v]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn numeric_column() {
        let t = table_with_column(&["1", "2.5", "300", "4,000"]);
        assert_eq!(infer_column_type(&t, 0), ColumnType::Number);
    }

    #[test]
    fn address_column_is_location() {
        let t = table_with_column(&[
            "1104 Wilshire Blvd",
            "1600 Pennsylvania Avenue",
            "12 Main St",
        ]);
        assert_eq!(infer_column_type(&t, 0), ColumnType::Location);
    }

    #[test]
    fn coordinate_column_is_location() {
        let t = table_with_column(&["48.86, 2.33", "40.71, -74.0", "51.5, -0.12"]);
        assert_eq!(infer_column_type(&t, 0), ColumnType::Location);
    }

    #[test]
    fn date_column() {
        let t = table_with_column(&["2013-03-18", "2013-03-22", "March 20, 2013"]);
        assert_eq!(infer_column_type(&t, 0), ColumnType::Date);
    }

    #[test]
    fn name_column_stays_text() {
        let t = table_with_column(&["Melisse", "Musée du Louvre", "Bayona"]);
        assert_eq!(infer_column_type(&t, 0), ColumnType::Text);
    }

    #[test]
    fn mixed_column_defaults_to_text() {
        let t = table_with_column(&["42", "Melisse", "2013-01-01", "hello"]);
        assert_eq!(infer_column_type(&t, 0), ColumnType::Text);
    }

    #[test]
    fn majority_not_unanimity() {
        // 3 of 4 numeric (75% ≥ 60%) → Number despite one stray value.
        let t = table_with_column(&["1", "2", "3", "n/a"]);
        assert_eq!(infer_column_type(&t, 0), ColumnType::Number);
    }

    #[test]
    fn empty_cells_ignored() {
        let t = table_with_column(&["", "42", "", "7"]);
        assert_eq!(infer_column_type(&t, 0), ColumnType::Number);
    }

    #[test]
    fn all_empty_column_is_text() {
        let t = table_with_column(&["", "", ""]);
        assert_eq!(infer_column_type(&t, 0), ColumnType::Text);
    }

    #[test]
    fn infer_all_respects_existing_types() {
        let mut t = Table::builder(2)
            .column_type(0, ColumnType::Date) // pre-set, must be kept
            .column_type(1, ColumnType::Unknown)
            .row(vec!["not a date", "42"])
            .unwrap()
            .row(vec!["also text", "7"])
            .unwrap()
            .build()
            .unwrap();
        let types = infer_column_types(&mut t);
        assert_eq!(types, vec![ColumnType::Date, ColumnType::Number]);
    }
}
