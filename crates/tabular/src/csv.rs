//! Minimal CSV support, hand-rolled (no external dependency).
//!
//! Supports RFC-4180-style quoting: fields containing commas, quotes or
//! newlines are wrapped in double quotes, embedded quotes doubled. Used by
//! the examples to persist and reload generated tables, and to let users
//! feed their own tables to the annotator.

use std::fmt;

use crate::table::{ColumnType, Table, TableError};

/// Errors raised while parsing CSV input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A quoted field was still open at end of input.
    UnterminatedQuote { line: usize },
    /// A row had a different number of fields than the first row.
    Ragged {
        line: usize,
        expected: usize,
        got: usize,
    },
    /// The input contained no rows at all.
    Empty,
    /// Table construction failed (should be unreachable for well-formed input).
    Table(TableError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting near line {line}")
            }
            CsvError::Ragged {
                line,
                expected,
                got,
            } => write!(f, "line {line}: expected {expected} fields, got {got}"),
            CsvError::Empty => write!(f, "empty CSV input"),
            CsvError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<TableError> for CsvError {
    fn from(e: TableError) -> Self {
        CsvError::Table(e)
    }
}

/// Parses CSV records from `input`. Returns one `Vec<String>` per record.
///
/// Handles quoted fields (embedded commas, doubled quotes, embedded
/// newlines) and both `\n` and `\r\n` line endings. A trailing newline does
/// not produce an empty record.
pub fn parse_records(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut quote_open_line = 1usize;
    let mut line = 1usize;
    let mut any_char = false;

    while let Some(c) = chars.next() {
        any_char = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    quote_open_line = line;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    // swallow; the following '\n' terminates the record
                }
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote {
            line: quote_open_line,
        });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if !any_char || records.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(records)
}

/// Parses a CSV document into a [`Table`].
///
/// The first record is taken as the header row when `has_headers` is true.
/// All columns get type [`ColumnType::Unknown`]; run
/// [`crate::infer::infer_column_types`] afterwards for Web-table inputs, or
/// set the types explicitly for GFT-style inputs.
pub fn parse_table(input: &str, name: &str, has_headers: bool) -> Result<Table, CsvError> {
    let records = parse_records(input)?;
    // teda-lint: allow(panic_on_untrusted) -- parse_records returns CsvError::Empty for zero records, so records is non-empty here
    let width = records[0].len();
    for (idx, r) in records.iter().enumerate() {
        if r.len() != width {
            return Err(CsvError::Ragged {
                line: idx + 1,
                expected: width,
                got: r.len(),
            });
        }
    }
    let mut it = records.into_iter();
    let mut builder = Table::builder(width)
        .name(name)
        .column_types(vec![ColumnType::Unknown; width])?;
    if has_headers {
        // teda-lint: allow(panic_on_untrusted) -- same non-empty guarantee: parse_records errored on zero records above
        let headers = it.next().expect("checked non-empty");
        builder = builder.headers(headers)?;
    }
    for r in it {
        builder.push_row(r)?;
    }
    Ok(builder.build()?)
}

/// Serializes a table to CSV (headers first when present).
pub fn write_table(table: &Table) -> String {
    let mut out = String::new();
    if let Some(headers) = table.headers() {
        write_record(&mut out, headers.iter().map(String::as_str));
    }
    for i in 0..table.n_rows() {
        write_record(&mut out, table.row(i));
    }
    out
}

fn write_record<'a>(out: &mut String, fields: impl Iterator<Item = &'a str>) {
    let mut first = true;
    for f in fields {
        if !first {
            out.push(',');
        }
        first = false;
        if f.contains(',') || f.contains('"') || f.contains('\n') || f.contains('\r') {
            out.push('"');
            for c in f.chars() {
                if c == '"' {
                    out.push('"');
                }
                out.push(c);
            }
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_records() {
        let recs = parse_records("a,b\nc,d\n").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn quoted_comma_and_doubled_quote() {
        let recs = parse_records("\"Bar, Grill\",\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(recs, vec![vec!["Bar, Grill", "say \"hi\""]]);
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let recs = parse_records("\"line1\nline2\",x\n").unwrap();
        assert_eq!(recs, vec![vec!["line1\nline2", "x"]]);
    }

    #[test]
    fn crlf_endings() {
        let recs = parse_records("a,b\r\nc,d\r\n").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn no_trailing_newline() {
        let recs = parse_records("a,b\nc,d").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], vec!["c", "d"]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        let err = parse_records("\"oops\n").unwrap_err();
        assert!(matches!(err, CsvError::UnterminatedQuote { .. }));
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(parse_records("").unwrap_err(), CsvError::Empty);
        // `parse_table` leans on this: its width probe reads the first
        // record unchecked, which is only sound because zero records is
        // an error here, never an empty Vec.
        assert_eq!(parse_table("", "t", false).unwrap_err(), CsvError::Empty);
        assert_eq!(parse_table("", "t", true).unwrap_err(), CsvError::Empty);
    }

    #[test]
    fn ragged_table_is_error() {
        let err = parse_table("a,b\nc\n", "t", true).unwrap_err();
        assert!(matches!(err, CsvError::Ragged { line: 2, .. }));
    }

    #[test]
    fn table_round_trip() {
        let t = Table::builder(2)
            .name("rt")
            .headers(vec!["Name", "Addr"])
            .unwrap()
            .row(vec!["Melisse", "1104 Wilshire Blvd, Santa Monica"])
            .unwrap()
            .row(vec!["Joe's \"Place\"", "12 Main St"])
            .unwrap()
            .build()
            .unwrap();
        let csv = write_table(&t);
        let back = parse_table(&csv, "rt", true).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.cell(0, 0), "Melisse");
        assert_eq!(back.cell(1, 0), "Joe's \"Place\"");
        assert_eq!(back.cell(0, 1), "1104 Wilshire Blvd, Santa Monica");
        assert_eq!(back.headers().unwrap(), &["Name", "Addr"]);
    }

    #[test]
    fn headerless_parse() {
        let t = parse_table("x,y\n1,2\n", "t", false).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert!(t.headers().is_none());
    }

    #[test]
    fn unknown_types_assigned() {
        let t = parse_table("a,b\n1,2\n", "t", true).unwrap();
        assert!(t.column_types().iter().all(|&ty| ty == ColumnType::Unknown));
    }
}
