//! Building the synthetic Web for a world.

use rand::Rng;

use teda_kb::{EntityType, World};
use teda_simkit::{derive_seed, rng_from_seed};

use crate::index::InvertedIndex;
use crate::page::{PageId, WebPage};
use crate::template::{entity_page, noise_page, type_directory_page, PageFlavour};

/// Shape parameters for [`WebCorpus::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebCorpusSpec {
    /// Minimum pages per entity (the official site).
    pub min_pages_per_entity: usize,
    /// Maximum extra pages per entity (reviews / listings / news).
    pub max_extra_pages_per_entity: usize,
    /// Directory pages per entity type.
    pub directory_pages_per_type: usize,
    /// Pure-noise pages.
    pub noise_pages: usize,
}

impl Default for WebCorpusSpec {
    fn default() -> Self {
        // An entity needs enough pages that the top-10 results for its
        // bare name are dominated by pages actually about it — on the real
        // Web even obscure POIs have listings, reviews and socials. With
        // fewer than ~6 pages the §5.2 majority rule (> k/2 of 10) can
        // never fire for unambiguous names.
        WebCorpusSpec {
            min_pages_per_entity: 6,
            max_extra_pages_per_entity: 5,
            directory_pages_per_type: 6,
            noise_pages: 150,
        }
    }
}

impl WebCorpusSpec {
    /// A reduced Web for unit tests.
    pub fn tiny() -> Self {
        WebCorpusSpec {
            min_pages_per_entity: 6,
            max_extra_pages_per_entity: 3,
            directory_pages_per_type: 2,
            noise_pages: 20,
        }
    }
}

/// The synthetic Web: a page store plus its search index.
#[derive(Debug, Clone)]
pub struct WebCorpus {
    pages: Vec<WebPage>,
    index: InvertedIndex,
}

impl WebCorpus {
    /// Generates every page for `world` and indexes them. Deterministic in
    /// `seed`.
    pub fn build(world: &World, spec: WebCorpusSpec, seed: u64) -> Self {
        let mut rng = rng_from_seed(derive_seed(seed, "web"));
        let mut pages = Vec::new();

        for entity in world.entities() {
            // Official page first.
            pages.push(entity_page(
                &mut rng,
                world,
                entity,
                PageFlavour::Official,
                0,
            ));
            let extra = rng.gen_range(
                spec.min_pages_per_entity.saturating_sub(1)
                    ..=spec.min_pages_per_entity.saturating_sub(1)
                        + spec.max_extra_pages_per_entity,
            );
            for serial in 1..=extra {
                // Reviews dominate third-party coverage; news items (the
                // weakest type signal) are rare.
                let flavour = match rng.gen_range(0..6) {
                    0..=2 => PageFlavour::Review,
                    3 | 4 => PageFlavour::Listing,
                    _ => PageFlavour::News,
                };
                pages.push(entity_page(&mut rng, world, entity, flavour, serial as u32));
            }
        }

        for &etype in EntityType::ALL.iter() {
            if world.entities_of(etype).is_empty() {
                continue;
            }
            for serial in 0..spec.directory_pages_per_type {
                pages.push(type_directory_page(&mut rng, world, etype, serial as u32));
            }
        }

        for serial in 0..spec.noise_pages {
            pages.push(noise_page(&mut rng, serial as u32));
        }

        // Sharded parallel construction — byte-identical to the
        // sequential build (see index.rs), just faster on big corpora.
        let index = InvertedIndex::build_parallel(&pages);
        WebCorpus { pages, index }
    }

    /// Builds a corpus over an explicit page list (ids are positional),
    /// indexing with the sharded parallel build — byte-identical to the
    /// sequential reference for any shard count. This is the
    /// construction `teda-store` uses both for delta replay and for
    /// compaction, so "compact == full rebuild" is an identity between
    /// two calls of this one function on the same logical page list.
    pub fn from_pages(pages: Vec<WebPage>) -> Self {
        let index = InvertedIndex::build_parallel(&pages);
        WebCorpus { pages, index }
    }

    /// Reassembles a corpus from a page list and an already-validated
    /// index (the snapshot-load path, which skips re-tokenizing the
    /// whole collection). Fails when the two halves disagree on the
    /// document count — corrupt snapshot bytes must never produce an
    /// index that answers queries about pages that do not exist.
    pub fn from_parts(
        pages: Vec<WebPage>,
        index: InvertedIndex,
    ) -> Result<Self, crate::index::InvalidIndexParts> {
        if index.n_docs() != pages.len() {
            return Err(crate::index::invalid_parts(format!(
                "index covers {} documents but the page store holds {}",
                index.n_docs(),
                pages.len()
            )));
        }
        Ok(WebCorpus { pages, index })
    }

    /// The page with id `id`.
    pub fn page(&self, id: PageId) -> &WebPage {
        &self.pages[id.0 as usize]
    }

    /// Borrowed field views of the page with id `id`.
    pub fn page_fields(&self, id: PageId) -> crate::backend::PageFields<'_> {
        let p = self.page(id);
        crate::backend::PageFields {
            url: &p.url,
            title: &p.title,
            body: &p.body,
        }
    }

    /// Consumes the corpus, returning its page list — the delta-replay
    /// and compaction paths mutate the list and re-derive the index
    /// with [`from_pages`](Self::from_pages).
    pub fn into_pages(self) -> Vec<WebPage> {
        self.pages
    }

    /// Consumes the corpus into both halves. The incremental-merge load
    /// path extends the page list and the index separately (via
    /// [`InvertedIndex::extend_with_parts`]) instead of re-tokenizing
    /// everything through [`from_pages`](Self::from_pages).
    pub fn into_pages_and_index(self) -> (Vec<WebPage>, InvertedIndex) {
        (self.pages, self.index)
    }

    /// All pages.
    pub fn pages(&self) -> &[WebPage] {
        &self.pages
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The search index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teda_kb::WorldSpec;

    fn fixture() -> (World, WebCorpus) {
        let w = World::generate(WorldSpec::tiny(), 42);
        let c = WebCorpus::build(&w, WebCorpusSpec::tiny(), 42);
        (w, c)
    }

    #[test]
    fn every_entity_has_pages() {
        let (w, c) = fixture();
        for e in w.entities().iter().take(30) {
            let hits = c.index().search(&e.name, 10);
            assert!(!hits.is_empty(), "no pages found for {}", e.name);
            // at least one hit actually mentions the entity's name tokens
            let first_tok = e.name.split_whitespace().next().unwrap().to_lowercase();
            assert!(
                hits.iter()
                    .any(|(p, _)| c.page(*p).body.to_lowercase().contains(&first_tok)),
                "hits for {} don't mention it",
                e.name
            );
        }
    }

    #[test]
    fn page_count_is_plausible() {
        let (w, c) = fixture();
        let min_expected = w.len() * 2; // ≥ min_pages_per_entity
        assert!(
            c.len() >= min_expected,
            "only {} pages for {} entities",
            c.len(),
            w.len()
        );
    }

    #[test]
    fn build_is_deterministic() {
        let w = World::generate(WorldSpec::tiny(), 7);
        let a = WebCorpus::build(&w, WebCorpusSpec::tiny(), 7);
        let b = WebCorpus::build(&w, WebCorpusSpec::tiny(), 7);
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.pages().iter().zip(b.pages()) {
            assert_eq!(pa.url, pb.url);
            assert_eq!(pa.body, pb.body);
        }
    }

    #[test]
    fn directory_pages_exist_per_type() {
        let (_, c) = fixture();
        for t in EntityType::TARGETS {
            let n = c
                .pages()
                .iter()
                .filter(|p| p.url.contains(&format!("/directory/{}", t.type_word())))
                .count();
            assert_eq!(n, 2, "{t}");
        }
    }

    #[test]
    fn ambiguous_names_retrieve_mixed_pages() {
        // A jazz label sharing a restaurant's name must surface pages of
        // both senses for the bare-name query.
        let w = World::generate(
            WorldSpec {
                cross_type_name_share: 0.9,
                ..WorldSpec::tiny()
            },
            11,
        );
        let c = WebCorpus::build(&w, WebCorpusSpec::tiny(), 11);
        let shared = w.entities_of(EntityType::JazzLabel).iter().find(|&&id| {
            w.lookup_name(&w.entity(id).name)
                .iter()
                .any(|&o| w.entity(o).etype == EntityType::Restaurant)
        });
        let Some(&label_id) = shared else {
            panic!("fixture should contain a shared name at this seed");
        };
        let name = &w.entity(label_id).name;
        let hits = c.index().search(name, 10);
        let urls: Vec<&str> = hits.iter().map(|(p, _)| c.page(*p).url.as_str()).collect();
        // both the label's pages and the restaurant's pages appear
        assert!(urls.len() >= 2, "{urls:?}");
    }
}
