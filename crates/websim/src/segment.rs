//! The segmented index: a base corpus plus journaled segments, merged
//! at **read time** instead of re-indexed at load time.
//!
//! Lucene-style shape: the base collection (any
//! [`BaseCorpus`] — the heap-resident [`WebCorpus`] with its monolithic
//! [`InvertedIndex`], or `teda-store`'s mmap'd view backend) keeps its
//! own index; every journal segment carries the pages of its
//! `add` operations together with a **partial index built over exactly
//! those pages** (one `InvertedIndex::build` at append time — the
//! O(delta) cost); removals become a remove-set applied while scoring.
//! [`SegmentedCorpus::search`] then answers queries by walking base
//! postings and segment postings in final-document order and feeding
//! the shared [`crate::scoring`] kernel.
//!
//! **Bit-identity to a full rebuild** — the hard invariant — needs four
//! things, all arranged here:
//!
//! 1. *Per-document inputs are pure.* A document's `tf` values and
//!    indexed length depend only on its own text, so a partial index
//!    built at append time stores the same bit patterns a from-scratch
//!    rebuild would compute for that document.
//! 2. *`avg_len` is an ordered sum.* `f64` addition is not associative,
//!    so the average document length is recomputed as the sum over
//!    surviving documents **in final document order** (base survivors
//!    first, then added survivors), exactly the order the rebuild's
//!    merge accumulates — same additions, same bits.
//! 3. *`df` counts survivors.* A term's document frequency is the
//!    number of its postings that survive the remove-set, counted in a
//!    first pass before any scoring, because the rebuild computes `idf`
//!    from the final posting-list length up front.
//! 4. *Postings walk in final-id order.* Base survivors are remapped
//!    (old id minus the removed ids below it — order-preserving), then
//!    segment postings follow in journal order; the resulting scan is
//!    ascending in final ids, so score accumulation and the first-touch
//!    order behind tie-breaking match the rebuild exactly.
//!
//! Proven per-query in the `tests/store.rs` property tests: random
//! add/remove sequences × random segment boundaries × random `k`,
//! compared bit-for-bit against `WebCorpus::from_pages` on the same
//! logical page list.

use std::collections::HashMap;
use std::sync::Arc;

use teda_text::tokenize;

use crate::backend::{assemble_results, BaseCorpus, PageFields, SearchBackend};
use crate::engine::SearchResult;
use crate::index::{invalid_parts, InvalidIndexParts, InvertedIndex};
use crate::page::{PageId, WebPage};
use crate::scoring;

/// One journaled operation inside a segment. Additions carry the
/// partial index built over exactly their pages; the pairing is
/// enforced by construction (no public way to attach a mismatched
/// index).
#[derive(Debug, Clone)]
pub struct SegmentOp(OpKind);

#[derive(Debug, Clone)]
enum OpKind {
    Add {
        pages: Vec<WebPage>,
        index: InvertedIndex,
    },
    Remove {
        urls: Vec<String>,
    },
}

impl SegmentOp {
    /// An addition, building the partial index over `pages` here (the
    /// one O(delta) tokenization this update will ever pay).
    pub fn add(pages: Vec<WebPage>) -> Self {
        let index = InvertedIndex::build(&pages);
        SegmentOp(OpKind::Add { pages, index })
    }

    /// An addition with an already-built partial index (the snapshot
    /// load path, which deserializes the index instead of re-building
    /// it). Fails when the index does not cover exactly `pages` — a
    /// corrupt partial must fall back to [`add`](Self::add), never
    /// serve queries about the wrong documents.
    pub fn add_prebuilt(
        pages: Vec<WebPage>,
        index: InvertedIndex,
    ) -> Result<Self, InvalidIndexParts> {
        if index.n_docs() != pages.len() {
            return Err(invalid_parts(format!(
                "segment partial index covers {} documents but the op adds {}",
                index.n_docs(),
                pages.len()
            )));
        }
        Ok(SegmentOp(OpKind::Add { pages, index }))
    }

    /// A removal of every current page whose URL is listed.
    pub fn remove(urls: Vec<String>) -> Self {
        SegmentOp(OpKind::Remove { urls })
    }

    /// The added pages and their partial index, for an add op.
    pub fn added(&self) -> Option<(&[WebPage], &InvertedIndex)> {
        match &self.0 {
            OpKind::Add { pages, index } => Some((pages, index)),
            OpKind::Remove { .. } => None,
        }
    }

    /// The removed URLs, for a remove op.
    pub fn removed(&self) -> Option<&[String]> {
        match &self.0 {
            OpKind::Remove { urls } => Some(urls),
            OpKind::Add { .. } => None,
        }
    }
}

/// One journal segment: an ordered operation batch (one
/// `add_pages`/`remove_pages` call journaled together).
#[derive(Debug, Clone, Default)]
pub struct Segment {
    ops: Vec<SegmentOp>,
}

impl Segment {
    /// A segment over the given operations, in journal order.
    pub fn new(ops: Vec<SegmentOp>) -> Self {
        Segment { ops }
    }

    /// The operations, in order.
    pub fn ops(&self) -> &[SegmentOp] {
        &self.ops
    }
}

/// Where every surviving document lands in the final id space, plus the
/// collection-level BM25 inputs. Recomputed when a segment is pushed —
/// O(base) bookkeeping at worst (when removals exist), never any
/// tokenization.
#[derive(Debug)]
struct Plan {
    /// Final (logical) document count.
    n_docs: usize,
    /// Base documents surviving the remove-set.
    n_base_alive: usize,
    /// Documents (base + added) killed by remove ops.
    removed_docs: usize,
    /// Ordered-sum average document length over the final collection.
    avg_len: f64,
    /// Base orig id → final id (`u32::MAX` = removed); `None` when no
    /// base document was removed (identity).
    base_remap: Option<Vec<u32>>,
    /// Final base id → orig id; `None` = identity.
    base_orig: Option<Vec<u32>>,
    /// Surviving add ops, ascending in final ids.
    runs: Vec<Run>,
}

/// One add op's surviving documents: a contiguous block of final ids
/// starting at `first_final`.
#[derive(Debug)]
struct Run {
    seg: u32,
    op: u32,
    first_final: u32,
    /// Local doc id (within the op) → final id (`u32::MAX` = removed).
    final_of_local: Vec<u32>,
    /// Surviving local ids in order; `alive_locals[f - first_final]`
    /// recovers the local id of final id `f`.
    alive_locals: Vec<u32>,
}

/// Which page list slot a URL currently occupies, while replaying ops.
#[derive(Clone, Copy)]
enum Slot {
    Base(u32),
    Added { add: u32, local: u32 },
}

/// A base corpus plus journal segments, searchable as one logical
/// collection with results bit-identical to a full rebuild.
#[derive(Debug)]
pub struct SegmentedCorpus {
    base: Arc<dyn BaseCorpus>,
    segments: Vec<Arc<Segment>>,
    plan: Plan,
}

impl SegmentedCorpus {
    /// A segmented view of `base` with `segments` applied in order.
    /// O(segments + base bookkeeping); no tokenization. `base` is any
    /// [`BaseCorpus`] — an `Arc<WebCorpus>` coerces here unchanged.
    pub fn new(
        base: Arc<dyn BaseCorpus>,
        segments: Vec<Arc<Segment>>,
    ) -> Result<Self, InvalidIndexParts> {
        let plan = compute_plan(base.as_ref(), &segments)?;
        Ok(SegmentedCorpus {
            base,
            segments,
            plan,
        })
    }

    /// A new view with one more segment at the end — the live-refresh
    /// step. The base and existing segments are shared (`Arc`), only
    /// the plan is recomputed.
    pub fn push_segment(&self, segment: Arc<Segment>) -> Result<Self, InvalidIndexParts> {
        let mut segments = self.segments.clone();
        segments.push(segment);
        Self::new(self.base.clone(), segments)
    }

    /// The base collection under the segments.
    pub fn base(&self) -> &Arc<dyn BaseCorpus> {
        &self.base
    }

    /// The applied segments, in order.
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// Final (logical) document count.
    pub fn n_docs(&self) -> usize {
        self.plan.n_docs
    }

    /// Documents the remove-set has killed (base and added alike) —
    /// the quantity tier policies bound.
    pub fn removed_docs(&self) -> usize {
        self.plan.removed_docs
    }

    /// The logical page list, in final id order — what a rebuild would
    /// index. Materializes clones; meant for compaction oracles and
    /// tests, not the serving path.
    pub fn to_pages(&self) -> Vec<WebPage> {
        fn owned(f: PageFields<'_>) -> WebPage {
            WebPage {
                url: f.url.to_string(),
                title: f.title.to_string(),
                body: f.body.to_string(),
            }
        }
        let mut out = Vec::with_capacity(self.plan.n_docs);
        match &self.plan.base_orig {
            Some(orig) => {
                for &i in orig {
                    out.push(owned(self.base.page_fields(PageId(i))));
                }
            }
            None => {
                for i in 0..self.base.n_docs() {
                    out.push(owned(self.base.page_fields(PageId(i as u32))));
                }
            }
        }
        for run in &self.plan.runs {
            let (pages, _) = self.run_parts(run);
            for &l in &run.alive_locals {
                out.push(pages[l as usize].clone());
            }
        }
        out
    }

    /// Borrowed field views of the page with final id `id`. Panics on
    /// out-of-range ids (same contract as [`WebCorpus::page`]).
    pub fn page_fields(&self, id: PageId) -> PageFields<'_> {
        let f = id.0;
        if (f as usize) < self.plan.n_base_alive {
            let orig = match &self.plan.base_orig {
                Some(orig) => orig[f as usize],
                None => f,
            };
            return self.base.page_fields(PageId(orig));
        }
        let runs = &self.plan.runs;
        let at = runs
            .partition_point(|r| r.first_final <= f)
            .checked_sub(1)
            .expect("page id out of range");
        let run = &runs[at];
        let local = run.alive_locals[(f - run.first_final) as usize];
        let (pages, _) = self.run_parts(run);
        let p = &pages[local as usize];
        PageFields {
            url: &p.url,
            title: &p.title,
            body: &p.body,
        }
    }

    /// Scores `query` against the merged collection: up to `k` pages by
    /// descending BM25, ties by ascending final id — bit-identical to
    /// `WebCorpus::from_pages(self.to_pages()).index().search(query, k)`
    /// (see the module docs for why).
    pub fn search(&self, query: &str, k: usize) -> Vec<(PageId, f64)> {
        let n = self.plan.n_docs;
        if k == 0 || n == 0 {
            return Vec::new();
        }
        let base = self.base.as_ref();
        let mut scores = vec![0.0f64; n];
        let mut touched: Vec<u32> = Vec::new();
        let mut run_tids: Vec<Option<u32>> = Vec::with_capacity(self.plan.runs.len());
        for term in tokenize(query) {
            // Pass 1: the term's surviving document frequency — the
            // rebuild derives idf from the *final* posting-list length
            // before scoring a single posting.
            let base_tid = base.term_id(&term);
            let mut df = 0usize;
            if let Some(tid) = base_tid {
                match &self.plan.base_remap {
                    None => df += base.postings_len(tid),
                    Some(remap) => base.for_each_posting(tid, &mut |page, _| {
                        if remap[page as usize] != u32::MAX {
                            df += 1;
                        }
                    }),
                }
            }
            run_tids.clear();
            for run in &self.plan.runs {
                let (_, index) = self.run_parts(run);
                let tid = index.term_id(&term);
                if let Some(t) = tid {
                    df += index
                        .postings_of(t)
                        .iter()
                        .filter(|p| run.final_of_local[p.page.0 as usize] != u32::MAX)
                        .count();
                }
                run_tids.push(tid);
            }
            if df == 0 {
                continue;
            }
            let idf = scoring::idf(n, df);
            // Pass 2: accumulate in ascending final-id order — base
            // survivors (remap is order-preserving), then each run.
            if let Some(tid) = base_tid {
                let remap = self.plan.base_remap.as_deref();
                let (scores, touched) = (&mut scores, &mut touched);
                base.for_each_posting(tid, &mut |page, tf| {
                    let orig = page as usize;
                    let f = match remap {
                        None => page,
                        Some(remap) => remap[orig],
                    };
                    if f == u32::MAX {
                        return;
                    }
                    let contrib = scoring::weight(
                        idf,
                        f64::from(tf),
                        base.doc_len_of(orig),
                        self.plan.avg_len,
                    );
                    let i = f as usize;
                    if scores[i] == 0.0 {
                        touched.push(f);
                    }
                    scores[i] += contrib;
                });
            }
            for (run, &tid) in self.plan.runs.iter().zip(&run_tids) {
                let Some(tid) = tid else { continue };
                let (_, index) = self.run_parts(run);
                for p in index.postings_of(tid) {
                    let local = p.page.0 as usize;
                    let f = run.final_of_local[local];
                    if f == u32::MAX {
                        continue;
                    }
                    let contrib = scoring::weight(
                        idf,
                        f64::from(p.tf),
                        index.doc_len_of(local),
                        self.plan.avg_len,
                    );
                    let i = f as usize;
                    if scores[i] == 0.0 {
                        touched.push(f);
                    }
                    scores[i] += contrib;
                }
            }
        }
        scoring::rank_top_k(&scores, &touched, k)
    }

    fn run_parts(&self, run: &Run) -> (&[WebPage], &InvertedIndex) {
        self.segments[run.seg as usize].ops()[run.op as usize]
            .added()
            .expect("plan runs only reference add ops")
    }
}

impl SearchBackend for SegmentedCorpus {
    fn search(&self, query: &str, k: usize) -> Vec<(PageId, f64)> {
        SegmentedCorpus::search(self, query, k)
    }

    fn search_results(&self, query: &str, k: usize) -> Vec<SearchResult> {
        assemble_results(SegmentedCorpus::search(self, query, k), |id| {
            self.page_fields(id)
        })
    }

    fn n_docs(&self) -> usize {
        self.plan.n_docs
    }
}

/// Replays the segments' operations over the base to decide which
/// documents survive and where they land — the exact alive/ordering
/// semantics of [`teda-store`'s] page-list replay (`DeltaOp::apply`):
/// adds append in order, a removal kills every *currently alive* page
/// with a matching URL, base and previously added pages alike.
fn compute_plan(
    base: &dyn BaseCorpus,
    segments: &[Arc<Segment>],
) -> Result<Plan, InvalidIndexParts> {
    struct AddState {
        seg: u32,
        op: u32,
        alive: Vec<bool>,
    }

    let n_base = base.n_docs();
    let any_remove = segments
        .iter()
        .any(|s| s.ops().iter().any(|o| o.removed().is_some()));

    let mut adds: Vec<AddState> = Vec::new();
    let mut base_alive: Vec<bool> = Vec::new();
    if any_remove {
        // Removal targets resolve by URL against everything currently
        // alive, so a URL → slot multimap is maintained through the
        // replay. Only built when a removal actually exists — the
        // pure-append fast path never hashes a single base URL.
        base_alive = vec![true; n_base];
        let mut by_url: HashMap<&str, Vec<Slot>> = HashMap::with_capacity(n_base);
        for i in 0..n_base {
            by_url
                .entry(base.page_fields(PageId(i as u32)).url)
                .or_default()
                .push(Slot::Base(i as u32));
        }
        for (si, seg) in segments.iter().enumerate() {
            for (oi, op) in seg.ops().iter().enumerate() {
                if let Some((pages, _)) = op.added() {
                    let add = adds.len() as u32;
                    for (l, p) in pages.iter().enumerate() {
                        by_url.entry(p.url.as_str()).or_default().push(Slot::Added {
                            add,
                            local: l as u32,
                        });
                    }
                    adds.push(AddState {
                        seg: si as u32,
                        op: oi as u32,
                        alive: vec![true; pages.len()],
                    });
                } else if let Some(urls) = op.removed() {
                    for url in urls {
                        let Some(slots) = by_url.remove(url.as_str()) else {
                            continue;
                        };
                        for slot in slots {
                            match slot {
                                Slot::Base(i) => base_alive[i as usize] = false,
                                Slot::Added { add, local } => {
                                    adds[add as usize].alive[local as usize] = false;
                                }
                            }
                        }
                    }
                }
            }
        }
    } else {
        for (si, seg) in segments.iter().enumerate() {
            for (oi, op) in seg.ops().iter().enumerate() {
                if let Some((pages, _)) = op.added() {
                    adds.push(AddState {
                        seg: si as u32,
                        op: oi as u32,
                        alive: vec![true; pages.len()],
                    });
                }
            }
        }
    }

    // Final ids for base survivors: old id minus removed-ids-below —
    // computed as one order-preserving remap sweep.
    let base_removed = base_alive.iter().filter(|&&a| !a).count();
    let (n_base_alive, base_remap, base_orig) = if base_removed > 0 {
        let mut remap = vec![u32::MAX; n_base];
        let mut orig = Vec::with_capacity(n_base - base_removed);
        for (i, &alive) in base_alive.iter().enumerate() {
            if alive {
                remap[i] = orig.len() as u32;
                orig.push(i as u32);
            }
        }
        (orig.len(), Some(remap), Some(orig))
    } else {
        (n_base, None, None)
    };

    let mut removed_docs = base_removed;
    let mut next = n_base_alive as u64;
    let mut runs = Vec::with_capacity(adds.len());
    for st in adds {
        let first_final = next;
        let mut final_of_local = vec![u32::MAX; st.alive.len()];
        let mut alive_locals = Vec::new();
        for (l, &alive) in st.alive.iter().enumerate() {
            if !alive {
                removed_docs += 1;
                continue;
            }
            if next > u64::from(u32::MAX) {
                return Err(invalid_parts(
                    "segmented collection exceeds u32 page ids".into(),
                ));
            }
            final_of_local[l] = next as u32;
            alive_locals.push(l as u32);
            next += 1;
        }
        if !alive_locals.is_empty() {
            runs.push(Run {
                seg: st.seg,
                op: st.op,
                first_final: first_final as u32,
                final_of_local,
                alive_locals,
            });
        }
    }
    let n_docs = next as usize;

    // Ordered sum in final document order — the same f64 additions, in
    // the same order, as the rebuild's merge accumulates (point 2 of
    // the module-doc bit-identity argument).
    let mut total_len = 0.0f64;
    match &base_remap {
        None => {
            for i in 0..n_base {
                total_len += base.doc_len_of(i);
            }
        }
        Some(remap) => {
            for (i, &f) in remap.iter().enumerate() {
                if f != u32::MAX {
                    total_len += base.doc_len_of(i);
                }
            }
        }
    }
    for run in &runs {
        let (_, index) = segments[run.seg as usize].ops()[run.op as usize]
            .added()
            .expect("runs only reference add ops");
        for &l in &run.alive_locals {
            total_len += index.doc_len_of(l as usize);
        }
    }
    let avg_len = if n_docs == 0 {
        0.0
    } else {
        total_len / n_docs as f64
    };

    Ok(Plan {
        n_docs,
        n_base_alive,
        removed_docs,
        avg_len,
        base_remap,
        base_orig,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::WebCorpus;

    fn page(url: &str, title: &str, body: &str) -> WebPage {
        WebPage {
            url: url.into(),
            title: title.into(),
            body: body.into(),
        }
    }

    fn base_pages() -> Vec<WebPage> {
        vec![
            page("u0", "Melisse", "melisse restaurant santa monica menu"),
            page("u1", "Records", "melisse jazz label records sessions"),
            page("u2", "Guide", "restaurant dining guide menu city"),
            page("u3", "Noise", "online information website page"),
        ]
    }

    /// The oracle: a sequential rebuild over the logical page list.
    fn rebuilt(seg: &SegmentedCorpus) -> WebCorpus {
        WebCorpus::from_pages(seg.to_pages())
    }

    fn assert_identical(seg: &SegmentedCorpus, queries: &[&str]) {
        let oracle = rebuilt(seg);
        assert_eq!(seg.n_docs(), oracle.len());
        for q in queries {
            for k in [1, 3, 10] {
                let got = seg.search(q, k);
                let want = oracle.index().search(q, k);
                assert_eq!(got.len(), want.len(), "query {q:?} k {k}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.0, w.0, "query {q:?} k {k}");
                    assert_eq!(
                        g.1.to_bits(),
                        w.1.to_bits(),
                        "score bits diverged for {q:?} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn no_segments_is_bit_identical_passthrough() {
        let base = Arc::new(WebCorpus::from_pages(base_pages()));
        let seg = SegmentedCorpus::new(base, vec![]).unwrap();
        assert_identical(&seg, &["melisse", "restaurant menu", "absent"]);
    }

    #[test]
    fn pure_adds_merge_bit_identically() {
        let base = Arc::new(WebCorpus::from_pages(base_pages()));
        let s1 = Arc::new(Segment::new(vec![SegmentOp::add(vec![
            page("a0", "New spot", "melisse bistro menu fresh"),
            page("a1", "Listing", "restaurant listing city melisse"),
        ])]));
        let s2 = Arc::new(Segment::new(vec![SegmentOp::add(vec![page(
            "a2",
            "Late",
            "records sessions melisse",
        )])]));
        let seg = SegmentedCorpus::new(base, vec![s1, s2]).unwrap();
        assert_identical(
            &seg,
            &["melisse", "restaurant", "records menu", "melisse melisse"],
        );
    }

    #[test]
    fn removes_remap_and_stay_bit_identical() {
        let base = Arc::new(WebCorpus::from_pages(base_pages()));
        let s1 = Arc::new(Segment::new(vec![
            SegmentOp::add(vec![
                page("a0", "New", "melisse bistro menu"),
                page("a1", "Gone soon", "restaurant short lived"),
            ]),
            // Kills a base page and a page added earlier in this very
            // segment.
            SegmentOp::remove(vec!["u1".into(), "a1".into(), "ghost".into()]),
        ]));
        let seg = SegmentedCorpus::new(base, vec![s1]).unwrap();
        assert_eq!(seg.removed_docs(), 2);
        assert_identical(&seg, &["melisse", "restaurant menu", "jazz records"]);
        // Page field access resolves through the remap.
        let oracle = rebuilt(&seg);
        for i in 0..seg.n_docs() as u32 {
            assert_eq!(
                seg.page_fields(PageId(i)).url,
                oracle.page(PageId(i)).url.as_str()
            );
        }
    }

    #[test]
    fn readded_url_after_removal_survives() {
        let base = Arc::new(WebCorpus::from_pages(base_pages()));
        let s1 = Arc::new(Segment::new(vec![SegmentOp::remove(vec!["u0".into()])]));
        let s2 = Arc::new(Segment::new(vec![SegmentOp::add(vec![page(
            "u0",
            "Reborn",
            "melisse reopened restaurant",
        )])]));
        let seg = SegmentedCorpus::new(base, vec![s1, s2]).unwrap();
        assert_identical(&seg, &["melisse", "reopened"]);
        let urls: Vec<String> = seg.to_pages().iter().map(|p| p.url.clone()).collect();
        assert_eq!(urls, vec!["u1", "u2", "u3", "u0"]);
    }

    #[test]
    fn push_segment_refreshes_without_touching_base() {
        let base = Arc::new(WebCorpus::from_pages(base_pages()));
        let seg = SegmentedCorpus::new(base.clone(), vec![]).unwrap();
        let seg2 = seg
            .push_segment(Arc::new(Segment::new(vec![SegmentOp::add(vec![page(
                "a0",
                "Push",
                "melisse pushed live",
            )])])))
            .unwrap();
        assert_eq!(seg.n_docs(), 4);
        assert_eq!(seg2.n_docs(), 5);
        assert!(Arc::ptr_eq(seg2.base(), seg.base()));
        assert_identical(&seg2, &["melisse", "pushed"]);
    }

    #[test]
    fn mismatched_prebuilt_partial_is_rejected() {
        let pages = vec![page("a0", "t", "one two three")];
        let wrong = InvertedIndex::build(&[]);
        assert!(SegmentOp::add_prebuilt(pages, wrong).is_err());
    }

    #[test]
    fn everything_removed_yields_empty_results() {
        let base = Arc::new(WebCorpus::from_pages(vec![page("u0", "t", "solo page")]));
        let s = Arc::new(Segment::new(vec![SegmentOp::remove(vec!["u0".into()])]));
        let seg = SegmentedCorpus::new(base, vec![s]).unwrap();
        assert_eq!(seg.n_docs(), 0);
        assert!(seg.search("solo", 10).is_empty());
    }
}
