//! Web pages.

/// Index of a page within a [`crate::corpus::WebCorpus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// A synthetic Web page. `body` is plain text; the search engine derives
/// snippets from its leading words.
#[derive(Debug, Clone, PartialEq)]
pub struct WebPage {
    /// The page URL (unique within a corpus).
    pub url: String,
    /// The page title, shown in search results.
    pub title: String,
    /// The page text.
    pub body: String,
}

/// Maximum snippet length in words; the paper notes "most of them are less
/// than 20 words long" (§5.2).
pub const SNIPPET_WORDS: usize = 20;

impl WebPage {
    /// The search-result snippet: the first [`SNIPPET_WORDS`] words of the
    /// body.
    pub fn snippet(&self) -> String {
        snippet_of(&self.body)
    }
}

/// The snippet of a page body: its first [`SNIPPET_WORDS`] words.
/// Shared by [`WebPage`] and the borrowed page views of
/// [`crate::backend::PageFields`].
pub fn snippet_of(body: &str) -> String {
    let words: Vec<&str> = body.split_whitespace().take(SNIPPET_WORDS).collect();
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snippet_truncates_to_twenty_words() {
        let body: Vec<String> = (0..50).map(|i| format!("w{i}")).collect();
        let p = WebPage {
            url: "u".into(),
            title: "t".into(),
            body: body.join(" "),
        };
        let s = p.snippet();
        assert_eq!(s.split_whitespace().count(), SNIPPET_WORDS);
        assert!(s.starts_with("w0 w1"));
    }

    #[test]
    fn short_body_snippet_is_whole_body() {
        let p = WebPage {
            url: "u".into(),
            title: "t".into(),
            body: "just a few words".into(),
        };
        assert_eq!(p.snippet(), "just a few words");
    }
}
