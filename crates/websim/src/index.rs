//! Inverted index with BM25 ranking.
//!
//! Standard Okapi BM25 (`k1 = 1.2`, `b = 0.75`) over page bodies and
//! titles (title terms counted twice — titles matter in real engines).
//! Tokens are the lowercase word tokens of `teda-text`, unstemmed: entity
//! names must match near-exactly, as they do in a real search engine.

use std::collections::HashMap;

use teda_text::tokenize;

use crate::page::{PageId, WebPage};

const K1: f64 = 1.2;
const B: f64 = 0.75;

/// A posting: page and term frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Posting {
    page: PageId,
    tf: f64,
}

/// The inverted index over a page collection.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<Posting>>,
    doc_len: Vec<f64>,
    avg_len: f64,
    n_docs: usize,
}

impl InvertedIndex {
    /// Builds the index over `pages` (ids are positional).
    pub fn build(pages: &[WebPage]) -> Self {
        let mut postings: HashMap<String, Vec<Posting>> = HashMap::new();
        let mut doc_len = Vec::with_capacity(pages.len());
        let mut total_len = 0.0f64;

        for (i, page) in pages.iter().enumerate() {
            let id = PageId(i as u32);
            let mut counts: HashMap<String, f64> = HashMap::new();
            for tok in tokenize(&page.body) {
                *counts.entry(tok).or_insert(0.0) += 1.0;
            }
            for tok in tokenize(&page.title) {
                *counts.entry(tok).or_insert(0.0) += 2.0;
            }
            let len: f64 = counts.values().sum();
            doc_len.push(len);
            total_len += len;
            for (tok, tf) in counts {
                postings
                    .entry(tok)
                    .or_default()
                    .push(Posting { page: id, tf });
            }
        }
        let n_docs = pages.len();
        InvertedIndex {
            postings,
            doc_len,
            avg_len: if n_docs == 0 {
                0.0
            } else {
                total_len / n_docs as f64
            },
            n_docs,
        }
    }

    /// Number of indexed documents.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Number of distinct terms.
    pub fn n_terms(&self) -> usize {
        self.postings.len()
    }

    /// BM25 IDF with the standard +1 floor against negative values.
    fn idf(&self, term: &str) -> f64 {
        let df = self.postings.get(term).map_or(0, Vec::len) as f64;
        (((self.n_docs as f64 - df + 0.5) / (df + 0.5)) + 1.0).ln()
    }

    /// Scores `query` against the collection, returning up to `k` pages by
    /// descending BM25 score. Ties break by page id (stable, deterministic).
    pub fn search(&self, query: &str, k: usize) -> Vec<(PageId, f64)> {
        let mut scores: HashMap<PageId, f64> = HashMap::new();
        for term in tokenize(query) {
            let Some(posts) = self.postings.get(&term) else {
                continue;
            };
            let idf = self.idf(&term);
            for p in posts {
                let dl = self.doc_len[p.page.0 as usize];
                let norm = K1 * (1.0 - B + B * dl / self.avg_len.max(1e-9));
                let contrib = idf * (p.tf * (K1 + 1.0)) / (p.tf + norm);
                *scores.entry(p.page).or_insert(0.0) += contrib;
            }
        }
        let mut ranked: Vec<(PageId, f64)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("BM25 scores are finite")
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(url: &str, title: &str, body: &str) -> WebPage {
        WebPage {
            url: url.into(),
            title: title.into(),
            body: body.into(),
        }
    }

    fn collection() -> Vec<WebPage> {
        vec![
            page(
                "u0",
                "Melisse - Official Site",
                "melisse restaurant santa monica menu tasting cuisine chef",
            ),
            page(
                "u1",
                "Melisse Records",
                "melisse jazz label records quartet saxophone sessions",
            ),
            page(
                "u2",
                "Best restaurants",
                "restaurant restaurant dining guide menu city top list",
            ),
            page("u3", "Random", "online information website page home free"),
        ]
    }

    #[test]
    fn name_query_retrieves_both_senses() {
        let idx = InvertedIndex::build(&collection());
        let hits = idx.search("Melisse", 10);
        let pages: Vec<u32> = hits.iter().map(|(p, _)| p.0).collect();
        assert!(pages.contains(&0) && pages.contains(&1), "{pages:?}");
        assert!(!pages.contains(&3), "noise page shouldn't match");
    }

    #[test]
    fn type_word_disambiguates() {
        let idx = InvertedIndex::build(&collection());
        let hits = idx.search("Melisse restaurant", 10);
        assert_eq!(hits[0].0 .0, 0, "restaurant page should rank first");
    }

    #[test]
    fn city_disambiguates() {
        let idx = InvertedIndex::build(&collection());
        let hits = idx.search("Melisse Santa Monica", 10);
        assert_eq!(hits[0].0 .0, 0);
    }

    #[test]
    fn bare_type_word_finds_type_pages() {
        let idx = InvertedIndex::build(&collection());
        let hits = idx.search("restaurant", 10);
        assert!(!hits.is_empty());
        // The directory page repeats "restaurant" → highest tf saturation.
        assert_eq!(hits[0].0 .0, 2);
    }

    #[test]
    fn k_truncates() {
        let idx = InvertedIndex::build(&collection());
        assert_eq!(idx.search("melisse restaurant jazz", 1).len(), 1);
    }

    #[test]
    fn unknown_terms_yield_empty() {
        let idx = InvertedIndex::build(&collection());
        assert!(idx.search("zanzibar", 10).is_empty());
        assert!(idx.search("", 10).is_empty());
    }

    #[test]
    fn title_terms_count_double() {
        let a = page("a", "records", "melisse");
        let b = page("b", "nothing", "melisse records");
        let idx = InvertedIndex::build(&[a, b]);
        let hits = idx.search("records", 2);
        assert_eq!(hits[0].0 .0, 0, "title match outranks body match");
    }

    #[test]
    fn empty_collection() {
        let idx = InvertedIndex::build(&[]);
        assert!(idx.search("anything", 5).is_empty());
        assert_eq!(idx.n_docs(), 0);
    }

    #[test]
    fn scores_are_deterministic() {
        let idx = InvertedIndex::build(&collection());
        assert_eq!(idx.search("melisse", 10), idx.search("melisse", 10));
    }
}
