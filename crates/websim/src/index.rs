//! Inverted index with BM25 ranking.
//!
//! Standard Okapi BM25 (`k1 = 1.2`, `b = 0.75`) over page bodies and
//! titles (title terms counted twice — titles matter in real engines).
//! Tokens are the lowercase word tokens of `teda-text`, unstemmed: entity
//! names must match near-exactly, as they do in a real search engine.
//!
//! Layout: terms are interned to dense `u32` ids over a shared vocabulary
//! and every posting lives in one flat arena (`postings`), with a term's
//! slice addressed by an offset table — one allocation for the whole
//! collection instead of one `Vec` per term, and postings of a term are
//! contiguous for the scoring scan. Ranking selects the top k through a
//! bounded binary heap (`O(n log k)`) instead of sorting every scored
//! page; ties break exactly as the historical full sort did — by
//! ascending page id at equal score.
//!
//! Construction comes in two flavours with one output:
//! [`InvertedIndex::build`] walks the collection sequentially (the
//! reference), while [`InvertedIndex::build_sharded`] splits the
//! collection into contiguous document ranges, accumulates per-shard
//! vocabularies and postings in parallel, and merges deterministically —
//! producing a **byte-identical** index (same term ids, same posting
//! arena, same offsets) for any shard count. See `README.md` next to
//! this file for why the merge preserves the sequential interning order.

use std::collections::HashMap;

use rayon::prelude::*;

use teda_text::tokenize;

use crate::page::{PageId, WebPage};
use crate::scoring;

/// A posting: page and term frequency.
///
/// `tf` is a small integer count (+2 per title occurrence), exactly
/// representable in `f32`; scoring widens to `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Posting {
    pub(crate) page: PageId,
    pub(crate) tf: f32,
}

/// The inverted index over a page collection.
///
/// `PartialEq` compares every field — the sharded-build determinism tests
/// rely on it to assert byte-identical construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InvertedIndex {
    /// Token → dense term id, interned at build time.
    term_ids: HashMap<String, u32>,
    /// Term `t` owns `postings[offsets[t] .. offsets[t + 1]]`, pages
    /// ascending within the slice.
    offsets: Vec<u32>,
    postings: Vec<Posting>,
    doc_len: Vec<f64>,
    avg_len: f64,
    n_docs: usize,
}

/// One shard's accumulation: a local vocabulary (interned in
/// first-occurrence order over the shard's contiguous document range)
/// and local posting lists holding *absolute* page ids.
struct ShardAccum {
    /// Local term id → token, in local interning order.
    terms: Vec<String>,
    /// Local id → postings, pages ascending (docs visited in id order).
    acc: Vec<Vec<Posting>>,
    /// Per-document lengths for the shard's range, in document order.
    doc_len: Vec<f64>,
}

/// Tokenizes and counts one shard of documents. `base` is the absolute
/// id of the shard's first document.
fn accumulate_shard(pages: &[WebPage], base: u32) -> ShardAccum {
    let mut term_ids: HashMap<String, u32> = HashMap::new();
    let mut terms: Vec<String> = Vec::new();
    let mut acc: Vec<Vec<Posting>> = Vec::new();
    let mut doc_len = Vec::with_capacity(pages.len());

    let mut counts: HashMap<u32, f32> = HashMap::new();
    for (i, page) in pages.iter().enumerate() {
        let id = PageId(base + i as u32);
        counts.clear();
        for tok in tokenize(&page.body) {
            let tid = intern(&mut term_ids, &mut terms, &mut acc, tok);
            *counts.entry(tid).or_insert(0.0) += 1.0;
        }
        for tok in tokenize(&page.title) {
            let tid = intern(&mut term_ids, &mut terms, &mut acc, tok);
            *counts.entry(tid).or_insert(0.0) += 2.0;
        }
        // teda-lint: allow(nondeterministic_iteration) -- counts are integral f64s; integer-valued f64 addition below 2^53 is exact, so the sum is order-independent
        let len: f64 = counts.values().map(|&c| f64::from(c)).sum();
        doc_len.push(len);
        // teda-lint: allow(nondeterministic_iteration) -- each tid occurs once per page and pages arrive in order, so per-term postings stay in page order
        for (&tid, &tf) in &counts {
            acc[tid as usize].push(Posting { page: id, tf });
        }
    }
    ShardAccum {
        terms,
        acc,
        doc_len,
    }
}

impl InvertedIndex {
    /// Builds the index over `pages` (ids are positional), walking the
    /// collection sequentially. This is the reference construction the
    /// sharded build must reproduce byte for byte.
    pub fn build(pages: &[WebPage]) -> Self {
        let shard = accumulate_shard(pages, 0);
        Self::merge(vec![shard], pages.len())
    }

    /// Builds the index with the collection split into
    /// `rayon::current_num_threads() × 2` shards accumulated in parallel.
    /// Byte-identical to [`build`](Self::build) — safe to use anywhere.
    pub fn build_parallel(pages: &[WebPage]) -> Self {
        Self::build_sharded(pages, rayon::current_num_threads() * 2)
    }

    /// Builds the index over `n_shards` contiguous document ranges
    /// accumulated in parallel and merged deterministically.
    ///
    /// **Determinism guarantee:** the result is byte-identical to the
    /// sequential [`build`](Self::build) for *any* shard count. Shards
    /// are merged in document order, and a shard's local vocabulary is
    /// interned in first-occurrence order, so walking shard vocabularies
    /// in shard-then-local order assigns every term the same global id
    /// the sequential first-occurrence walk would; per-term postings are
    /// concatenated in shard order, which is ascending-page order.
    pub fn build_sharded(pages: &[WebPage], n_shards: usize) -> Self {
        let n = n_shards.clamp(1, pages.len().max(1));
        let chunk = pages.len().div_ceil(n).max(1);
        let ranges: Vec<(usize, usize)> = (0..pages.len())
            .step_by(chunk)
            .map(|lo| (lo, (lo + chunk).min(pages.len())))
            .collect();
        let shards: Vec<ShardAccum> = ranges
            .par_iter()
            .map(|&(lo, hi)| accumulate_shard(&pages[lo..hi], lo as u32))
            .collect();
        Self::merge(shards, pages.len())
    }

    /// Merges shard accumulations (in document order) into the final
    /// index: global interning in shard-then-local order, per-term
    /// posting concatenation, then the flat-arena flatten.
    fn merge(shards: Vec<ShardAccum>, n_docs: usize) -> Self {
        let mut term_ids: HashMap<String, u32> = HashMap::new();
        let mut acc: Vec<Vec<Posting>> = Vec::new();
        let mut doc_len = Vec::with_capacity(n_docs);
        let mut total_len = 0.0f64;

        for shard in shards {
            // Local → global id translation, preserving first-occurrence
            // order across the whole collection.
            let to_global: Vec<u32> = shard
                .terms
                .into_iter()
                .map(|tok| match term_ids.get(&tok) {
                    Some(&gid) => gid,
                    None => {
                        let gid = u32::try_from(acc.len()).expect("term vocabulary fits u32");
                        term_ids.insert(tok, gid);
                        acc.push(Vec::new());
                        gid
                    }
                })
                .collect();
            for (local, posts) in shard.acc.into_iter().enumerate() {
                acc[to_global[local] as usize].extend_from_slice(&posts);
            }
            for len in shard.doc_len {
                doc_len.push(len);
                total_len += len;
            }
        }

        // Flatten the accumulators into one arena, offsets in id order.
        let total_postings: usize = acc.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(acc.len() + 1);
        let mut postings = Vec::with_capacity(total_postings);
        offsets.push(0u32);
        for mut term_postings in acc {
            // Pages arrive ascending per term (docs visited in id order,
            // shards merged in range order), but sort defensively to keep
            // the invariant local.
            term_postings.sort_unstable_by_key(|p| p.page.0);
            postings.extend_from_slice(&term_postings);
            offsets.push(u32::try_from(postings.len()).expect("posting arena fits u32"));
        }

        InvertedIndex {
            term_ids,
            offsets,
            postings,
            doc_len,
            avg_len: if n_docs == 0 {
                0.0
            } else {
                total_len / n_docs as f64
            },
            n_docs,
        }
    }

    /// Number of indexed documents.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Number of distinct terms.
    pub fn n_terms(&self) -> usize {
        self.term_ids.len()
    }

    /// Total postings across all terms.
    pub fn n_postings(&self) -> usize {
        self.postings.len()
    }

    /// The exact average document length this index scores with, as
    /// stored — the cluster partitioner copies it (as bits) into every
    /// shard manifest so shard-local scoring reproduces the global
    /// BM25 length normalization bit for bit.
    pub fn avg_len(&self) -> f64 {
        self.avg_len
    }

    /// The interned terms in dense-id order (`terms()[id]` is term
    /// `id`). Allocates the vector of borrows, not the strings — used
    /// by the cluster partitioner to translate each shard's local
    /// vocabulary into global document frequencies.
    pub fn terms(&self) -> Vec<&str> {
        let mut terms = vec![""; self.term_ids.len()];
        // teda-lint: allow(nondeterministic_iteration) -- scatter into unique dense id slots; write order cannot affect the result
        for (token, &id) in &self.term_ids {
            terms[id as usize] = token;
        }
        terms
    }

    /// The interned id of a token, if indexed.
    pub fn term_id(&self, token: &str) -> Option<u32> {
        self.term_ids.get(token).copied()
    }

    /// The posting slice of a term id. Crate-visible so the segmented
    /// view can merge base postings with segment postings at read time.
    pub(crate) fn postings_of(&self, tid: u32) -> &[Posting] {
        let lo = self.offsets[tid as usize] as usize;
        let hi = self.offsets[tid as usize + 1] as usize;
        &self.postings[lo..hi]
    }

    /// The indexed length of document `i` (sum of term counts, titles
    /// doubled) — the exact BM25 input, as stored.
    pub(crate) fn doc_len_of(&self, i: usize) -> f64 {
        self.doc_len[i]
    }

    /// Scores `query` against the collection, returning up to `k` pages by
    /// descending BM25 score. Ties break by page id (stable, deterministic).
    pub fn search(&self, query: &str, k: usize) -> Vec<(PageId, f64)> {
        if k == 0 || self.n_docs == 0 {
            return Vec::new();
        }
        let (scores, touched) = self.score_query(query);
        scoring::rank_top_k(&scores, &touched, k)
    }

    /// The historical ranking path — score everything, sort everything —
    /// kept as the reference the bounded-heap path must match exactly
    /// (tie order included) and as the baseline for microbenchmarks.
    #[doc(hidden)]
    pub fn search_full_sort(&self, query: &str, k: usize) -> Vec<(PageId, f64)> {
        let (scores, touched) = self.score_query(query);
        scoring::rank_full_sort(&scores, &touched, k)
    }

    /// Accumulates BM25 contributions per page: dense score array plus
    /// the list of touched pages (in first-touch order, which is
    /// deterministic: query-term order, then posting order).
    fn score_query(&self, query: &str) -> (Vec<f64>, Vec<u32>) {
        let mut scores = vec![0.0f64; self.n_docs];
        let mut touched: Vec<u32> = Vec::new();
        for term in tokenize(query) {
            let Some(tid) = self.term_id(&term) else {
                continue;
            };
            let posts = self.postings_of(tid);
            let idf = scoring::idf(self.n_docs, posts.len());
            for p in posts {
                let i = p.page.0 as usize;
                let contrib = scoring::weight(idf, f64::from(p.tf), self.doc_len[i], self.avg_len);
                if scores[i] == 0.0 {
                    touched.push(p.page.0);
                }
                scores[i] += contrib;
            }
        }
        (scores, touched)
    }
}

/// The raw construction of an [`InvertedIndex`], reduced to primitives
/// whose byte encoding is unambiguous — the exchange type `teda-store`
/// serializes into snapshot sections and validates on the way back in.
///
/// Floats travel as IEEE-754 bit patterns (`f32::to_bits` /
/// `f64::to_bits`), never as decimal text, so a load reproduces every
/// BM25 input *bit for bit* and loaded top-k results are identical to
/// the freshly built index, ties and all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexParts {
    /// Interned terms in dense-id order (`terms[id]` is term `id`).
    pub terms: Vec<String>,
    /// The offset table: term `t` owns postings `offsets[t]..offsets[t+1]`.
    pub offsets: Vec<u32>,
    /// The flat posting arena as `(page id, tf bits)` pairs.
    pub postings: Vec<(u32, u32)>,
    /// Per-document lengths as `f64` bit patterns, in document order.
    pub doc_len_bits: Vec<u64>,
    /// The average document length as an `f64` bit pattern.
    pub avg_len_bits: u64,
    /// Number of indexed documents.
    pub n_docs: u64,
}

/// Why a deserialized [`IndexParts`] cannot be turned back into an
/// index. Carried verbatim inside `teda-store`'s corruption error —
/// untrusted snapshot bytes must degrade to a typed error, never a
/// panic in the scoring loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidIndexParts(String);

impl InvalidIndexParts {
    fn new(msg: impl Into<String>) -> Self {
        InvalidIndexParts(msg.into())
    }

    /// The human-readable reason.
    pub fn message(&self) -> &str {
        &self.0
    }
}

/// Crate-internal constructor so sibling modules (the corpus reassembly
/// check) can report their own consistency failures under the same type.
pub(crate) fn invalid_parts(msg: String) -> InvalidIndexParts {
    InvalidIndexParts::new(msg)
}

impl std::fmt::Display for InvalidIndexParts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid index parts: {}", self.0)
    }
}

impl std::error::Error for InvalidIndexParts {}

impl InvertedIndex {
    /// Decomposes the index into its serializable parts. The inverse of
    /// [`from_parts`](Self::from_parts):
    /// `from_parts(idx.to_parts()) == idx` for every built index.
    pub fn to_parts(&self) -> IndexParts {
        // Invert the interning map into dense-id order.
        let mut terms = vec![String::new(); self.term_ids.len()];
        // teda-lint: allow(nondeterministic_iteration) -- scatter into unique dense id slots; write order cannot affect the result
        for (token, &id) in &self.term_ids {
            terms[id as usize] = token.clone();
        }
        IndexParts {
            terms,
            offsets: self.offsets.clone(),
            postings: self
                .postings
                .iter()
                .map(|p| (p.page.0, p.tf.to_bits()))
                .collect(),
            doc_len_bits: self.doc_len.iter().map(|d| d.to_bits()).collect(),
            avg_len_bits: self.avg_len.to_bits(),
            n_docs: self.n_docs as u64,
        }
    }

    /// Reassembles an index from deserialized parts, validating every
    /// structural invariant the scoring loop relies on (offset
    /// monotonicity, posting page bounds, document-count consistency)
    /// so corrupt or adversarial snapshot bytes are rejected with a
    /// typed error instead of panicking inside a later query.
    ///
    /// For parts produced by [`to_parts`](Self::to_parts) the result is
    /// equal to the original index in every field, which makes every
    /// query's top-k bit-identical.
    pub fn from_parts(parts: IndexParts) -> Result<Self, InvalidIndexParts> {
        let n_docs = usize::try_from(parts.n_docs)
            .map_err(|_| InvalidIndexParts::new("document count overflows usize"))?;
        if parts.offsets.len() != parts.terms.len() + 1 {
            return Err(InvalidIndexParts::new(format!(
                "offset table has {} entries for {} terms (want terms + 1)",
                parts.offsets.len(),
                parts.terms.len()
            )));
        }
        if parts.offsets.first() != Some(&0) {
            return Err(InvalidIndexParts::new("offset table must start at 0"));
        }
        if parts.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(InvalidIndexParts::new("offset table must be monotonic"));
        }
        if *parts.offsets.last().expect("checked non-empty") as usize != parts.postings.len() {
            return Err(InvalidIndexParts::new(format!(
                "offset table ends at {} but the arena holds {} postings",
                parts.offsets.last().expect("checked non-empty"),
                parts.postings.len()
            )));
        }
        if parts.doc_len_bits.len() != n_docs {
            return Err(InvalidIndexParts::new(format!(
                "{} document lengths for {} documents",
                parts.doc_len_bits.len(),
                n_docs
            )));
        }
        if let Some(&(page, _)) = parts.postings.iter().find(|&&(p, _)| p as usize >= n_docs) {
            return Err(InvalidIndexParts::new(format!(
                "posting references page {page} of a {n_docs}-document collection"
            )));
        }
        if u32::try_from(parts.terms.len()).is_err() {
            return Err(InvalidIndexParts::new("term vocabulary exceeds u32 ids"));
        }
        let mut term_ids = HashMap::with_capacity(parts.terms.len());
        for (id, token) in parts.terms.into_iter().enumerate() {
            if term_ids.insert(token, id as u32).is_some() {
                return Err(InvalidIndexParts::new("duplicate term in the vocabulary"));
            }
        }
        Ok(InvertedIndex {
            term_ids,
            offsets: parts.offsets,
            postings: parts
                .postings
                .into_iter()
                .map(|(page, tf_bits)| Posting {
                    page: PageId(page),
                    tf: f32::from_bits(tf_bits),
                })
                .collect(),
            doc_len: parts.doc_len_bits.into_iter().map(f64::from_bits).collect(),
            avg_len: f64::from_bits(parts.avg_len_bits),
            n_docs,
        })
    }

    /// Extends this index with per-segment partial indexes (each built
    /// over its own page slice, document ids local and 0-based) —
    /// **without re-tokenizing anything**. This is the O(delta) journal
    /// fold: the base index replays the role of shard 0 and every
    /// partial plays a later shard, so the `build_sharded` merge proof
    /// applies unchanged and the result is byte-identical to a
    /// sequential [`build`](Self::build) over the concatenated page
    /// list (provided each partial really was built over its slice —
    /// which [`from_parts`](Self::from_parts)-level validation cannot
    /// check, but which holds for every partial this workspace writes,
    /// because they are all produced by `build` itself).
    ///
    /// Untrusted parts cannot panic: every partial passes the full
    /// [`from_parts`](Self::from_parts) validation and the combined
    /// document/posting/vocabulary counts are checked against `u32`
    /// before the merge's internal conversions run.
    pub fn extend_with_parts(self, adds: Vec<IndexParts>) -> Result<Self, InvalidIndexParts> {
        let mut docs = self.n_docs as u64;
        let mut posts = self.postings.len() as u64;
        let mut vocab = self.term_ids.len() as u64;
        for p in &adds {
            docs = docs
                .checked_add(p.n_docs)
                .ok_or_else(|| InvalidIndexParts::new("combined document count overflows"))?;
            posts = posts
                .checked_add(p.postings.len() as u64)
                .ok_or_else(|| InvalidIndexParts::new("combined posting count overflows"))?;
            vocab = vocab
                .checked_add(p.terms.len() as u64)
                .ok_or_else(|| InvalidIndexParts::new("combined vocabulary overflows"))?;
        }
        if docs > u64::from(u32::MAX) {
            return Err(InvalidIndexParts::new(
                "combined document count exceeds u32 page ids",
            ));
        }
        if posts > u64::from(u32::MAX) || vocab > u64::from(u32::MAX) {
            return Err(InvalidIndexParts::new(
                "combined posting arena or vocabulary exceeds u32 offsets",
            ));
        }
        let mut offset = self.n_docs as u32;
        let mut shards = Vec::with_capacity(adds.len() + 1);
        shards.push(self.into_shard(0));
        for parts in adds {
            let n = parts.n_docs as u32; // fits: bounded by `docs` above
            shards.push(InvertedIndex::from_parts(parts)?.into_shard(offset));
            offset += n;
        }
        Ok(Self::merge(shards, docs as usize))
    }

    /// Converts a built index back into the shard accumulation the
    /// merge consumes, rebasing page ids by `base`. Exact inverse of
    /// what `merge` did to produce it: terms in dense-id (= global
    /// first-occurrence) order, per-term postings ascending.
    fn into_shard(self, base: u32) -> ShardAccum {
        let mut terms = vec![String::new(); self.term_ids.len()];
        // teda-lint: allow(nondeterministic_iteration) -- scatter into unique dense id slots; write order cannot affect the result
        for (token, id) in self.term_ids {
            terms[id as usize] = token;
        }
        let mut acc = Vec::with_capacity(terms.len());
        for t in 0..terms.len() {
            let lo = self.offsets[t] as usize;
            let hi = self.offsets[t + 1] as usize;
            acc.push(
                self.postings[lo..hi]
                    .iter()
                    .map(|p| Posting {
                        page: PageId(p.page.0 + base),
                        tf: p.tf,
                    })
                    .collect(),
            );
        }
        ShardAccum {
            terms,
            acc,
            doc_len: self.doc_len,
        }
    }
}

/// Interns `token`, growing the accumulator table (and the id → token
/// table the shard merge translates through) for new terms.
fn intern(
    term_ids: &mut HashMap<String, u32>,
    terms: &mut Vec<String>,
    acc: &mut Vec<Vec<Posting>>,
    token: String,
) -> u32 {
    if let Some(&id) = term_ids.get(&token) {
        return id;
    }
    let id = u32::try_from(acc.len()).expect("term vocabulary fits u32");
    terms.push(token.clone());
    term_ids.insert(token, id);
    acc.push(Vec::new());
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(url: &str, title: &str, body: &str) -> WebPage {
        WebPage {
            url: url.into(),
            title: title.into(),
            body: body.into(),
        }
    }

    fn collection() -> Vec<WebPage> {
        vec![
            page(
                "u0",
                "Melisse - Official Site",
                "melisse restaurant santa monica menu tasting cuisine chef",
            ),
            page(
                "u1",
                "Melisse Records",
                "melisse jazz label records quartet saxophone sessions",
            ),
            page(
                "u2",
                "Best restaurants",
                "restaurant restaurant dining guide menu city top list",
            ),
            page("u3", "Random", "online information website page home free"),
        ]
    }

    #[test]
    fn name_query_retrieves_both_senses() {
        let idx = InvertedIndex::build(&collection());
        let hits = idx.search("Melisse", 10);
        let pages: Vec<u32> = hits.iter().map(|(p, _)| p.0).collect();
        assert!(pages.contains(&0) && pages.contains(&1), "{pages:?}");
        assert!(!pages.contains(&3), "noise page shouldn't match");
    }

    #[test]
    fn type_word_disambiguates() {
        let idx = InvertedIndex::build(&collection());
        let hits = idx.search("Melisse restaurant", 10);
        assert_eq!(hits[0].0 .0, 0, "restaurant page should rank first");
    }

    #[test]
    fn city_disambiguates() {
        let idx = InvertedIndex::build(&collection());
        let hits = idx.search("Melisse Santa Monica", 10);
        assert_eq!(hits[0].0 .0, 0);
    }

    #[test]
    fn bare_type_word_finds_type_pages() {
        let idx = InvertedIndex::build(&collection());
        let hits = idx.search("restaurant", 10);
        assert!(!hits.is_empty());
        // The directory page repeats "restaurant" → highest tf saturation.
        assert_eq!(hits[0].0 .0, 2);
    }

    #[test]
    fn k_truncates() {
        let idx = InvertedIndex::build(&collection());
        assert_eq!(idx.search("melisse restaurant jazz", 1).len(), 1);
        assert!(idx.search("melisse", 0).is_empty());
    }

    #[test]
    fn unknown_terms_yield_empty() {
        let idx = InvertedIndex::build(&collection());
        assert!(idx.search("zanzibar", 10).is_empty());
        assert!(idx.search("", 10).is_empty());
    }

    #[test]
    fn title_terms_count_double() {
        let a = page("a", "records", "melisse");
        let b = page("b", "nothing", "melisse records");
        let idx = InvertedIndex::build(&[a, b]);
        let hits = idx.search("records", 2);
        assert_eq!(hits[0].0 .0, 0, "title match outranks body match");
    }

    #[test]
    fn empty_collection() {
        let idx = InvertedIndex::build(&[]);
        assert!(idx.search("anything", 5).is_empty());
        assert_eq!(idx.n_docs(), 0);
    }

    #[test]
    fn scores_are_deterministic() {
        let idx = InvertedIndex::build(&collection());
        assert_eq!(idx.search("melisse", 10), idx.search("melisse", 10));
    }

    #[test]
    fn terms_are_interned_and_postings_flat() {
        let idx = InvertedIndex::build(&collection());
        assert!(idx.term_id("melisse").is_some());
        assert!(idx.term_id("zanzibar").is_none());
        assert_eq!(idx.offsets.len(), idx.n_terms() + 1);
        assert_eq!(idx.n_postings(), *idx.offsets.last().unwrap() as usize);
        // every term id round-trips to a non-empty contiguous slice
        for tid in 0..idx.n_terms() as u32 {
            assert!(!idx.postings_of(tid).is_empty());
        }
    }

    #[test]
    fn heap_topk_matches_full_sort_everywhere() {
        let idx = InvertedIndex::build(&collection());
        for q in [
            "melisse",
            "restaurant",
            "melisse restaurant jazz",
            "menu city records",
        ] {
            for k in [1, 2, 3, 10] {
                assert_eq!(
                    idx.search(q, k),
                    idx.search_full_sort(q, k),
                    "query {q:?} k {k}"
                );
            }
        }
    }

    #[test]
    fn sharded_build_is_byte_identical_to_sequential() {
        let pages = collection();
        let reference = InvertedIndex::build(&pages);
        for n_shards in [1, 2, 3, 4, 7, 16] {
            let sharded = InvertedIndex::build_sharded(&pages, n_shards);
            assert_eq!(
                sharded, reference,
                "sharded build diverged at {n_shards} shards"
            );
        }
        assert_eq!(InvertedIndex::build_parallel(&pages), reference);
    }

    #[test]
    fn sharded_build_handles_degenerate_shapes() {
        // Empty collection, single page, more shards than pages.
        assert_eq!(
            InvertedIndex::build_sharded(&[], 8),
            InvertedIndex::build(&[])
        );
        let one = vec![page("u", "solo", "melisse restaurant")];
        assert_eq!(
            InvertedIndex::build_sharded(&one, 8),
            InvertedIndex::build(&one)
        );
    }

    #[test]
    fn sharded_build_on_a_larger_synthetic_collection() {
        // Vocabulary overlap across shard boundaries: shared terms,
        // shard-local terms, and title terms that double-count.
        let pages: Vec<WebPage> = (0..57)
            .map(|i| {
                page(
                    &format!("u{i}"),
                    &format!("title{} shared", i % 5),
                    &format!("shared term{} word{} melisse common{}", i, i % 7, i % 3),
                )
            })
            .collect();
        let reference = InvertedIndex::build(&pages);
        for n_shards in [2, 5, 8, 57, 100] {
            assert_eq!(
                InvertedIndex::build_sharded(&pages, n_shards),
                reference,
                "{n_shards} shards"
            );
        }
    }

    #[test]
    fn heap_topk_breaks_ties_by_page_id_like_the_full_sort() {
        // Identical pages → identical BM25 scores → ranked by page id.
        let pages: Vec<WebPage> = (0..8)
            .map(|i| page(&format!("u{i}"), "tie", "melisse restaurant"))
            .collect();
        let idx = InvertedIndex::build(&pages);
        let hits = idx.search("melisse", 5);
        assert_eq!(hits.len(), 5);
        let ids: Vec<u32> = hits.iter().map(|(p, _)| p.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4], "ties rank by ascending page id");
        assert!(hits.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(hits, idx.search_full_sort("melisse", 5));
    }

    #[test]
    fn parts_round_trip_is_field_identical() {
        let idx = InvertedIndex::build(&collection());
        let rebuilt = InvertedIndex::from_parts(idx.to_parts()).expect("own parts are valid");
        assert_eq!(rebuilt, idx, "from_parts(to_parts(idx)) must equal idx");
        // And therefore every query's top-k is bit-identical.
        for q in ["melisse", "restaurant", "melisse restaurant jazz", ""] {
            assert_eq!(rebuilt.search(q, 10), idx.search(q, 10));
        }
        let empty = InvertedIndex::build(&[]);
        assert_eq!(
            InvertedIndex::from_parts(empty.to_parts()).expect("empty parts valid"),
            empty
        );
    }

    #[test]
    fn corrupt_parts_are_rejected_not_panics() {
        let idx = InvertedIndex::build(&collection());
        let good = idx.to_parts();

        let mut bad = good.clone();
        bad.offsets.pop();
        assert!(
            InvertedIndex::from_parts(bad).is_err(),
            "short offset table"
        );

        let mut bad = good.clone();
        bad.offsets[0] = 1;
        assert!(
            InvertedIndex::from_parts(bad).is_err(),
            "nonzero first offset"
        );

        let mut bad = good.clone();
        let last = bad.offsets.len() - 1;
        bad.offsets[last] += 7;
        assert!(
            InvertedIndex::from_parts(bad).is_err(),
            "arena length mismatch"
        );

        let mut bad = good.clone();
        if bad.offsets.len() > 2 {
            bad.offsets.swap(1, 2);
            // Only a real inversion must fail; equal neighbours are legal.
            if bad.offsets[1] > bad.offsets[2] {
                assert!(
                    InvertedIndex::from_parts(bad).is_err(),
                    "non-monotonic offsets"
                );
            }
        }

        let mut bad = good.clone();
        bad.postings[0].0 = bad.n_docs as u32 + 10;
        assert!(
            InvertedIndex::from_parts(bad).is_err(),
            "posting page out of range"
        );

        let mut bad = good.clone();
        bad.doc_len_bits.pop();
        assert!(
            InvertedIndex::from_parts(bad).is_err(),
            "doc_len count mismatch"
        );

        let mut bad = good.clone();
        bad.terms[1] = bad.terms[0].clone();
        assert!(
            InvertedIndex::from_parts(bad).is_err(),
            "duplicate vocabulary term"
        );
    }

    #[test]
    fn extend_with_parts_is_byte_identical_to_full_rebuild() {
        let base_pages = collection();
        let added_a: Vec<WebPage> = (0..9)
            .map(|i| {
                page(
                    &format!("a{i}"),
                    &format!("added {}", i % 2),
                    &format!("melisse extra term{} shared word{}", i, i % 3),
                )
            })
            .collect();
        let added_b = vec![page("b0", "late", "restaurant melisse late arrival")];

        let base = InvertedIndex::build(&base_pages);
        let parts_a = InvertedIndex::build(&added_a).to_parts();
        let parts_b = InvertedIndex::build(&added_b).to_parts();
        let merged = base
            .extend_with_parts(vec![parts_a, parts_b])
            .expect("own parts merge");

        let mut all = base_pages;
        all.extend(added_a);
        all.extend(added_b);
        assert_eq!(merged, InvertedIndex::build(&all), "merge != rebuild");
    }

    #[test]
    fn extend_with_corrupt_parts_is_a_typed_error() {
        let base = InvertedIndex::build(&collection());
        let mut bad = InvertedIndex::build(&[page("x", "t", "one two")]).to_parts();
        bad.offsets[0] = 3;
        assert!(base.extend_with_parts(vec![bad]).is_err());
    }
}
