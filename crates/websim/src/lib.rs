//! `teda-websim` — the synthetic Web and search engine (the Bing stand-in).
//!
//! The paper's annotator "submits the content of the cell to a Web search
//! engine" and classifies the returned snippets (§5). Microsoft Bing is
//! replaced here with a deterministic synthetic Web:
//!
//! * [`template`] — page text generators conditioned on entity type
//!   (official sites, review pages, directory listings, news), with the
//!   type-word frequencies calibrated in `teda-kb::types`;
//! * [`corpus`] — builds the whole Web for a [`teda_kb::World`]: several
//!   pages per entity, per-type directory pages (what the bare query
//!   "Museum" retrieves — the Figure 8 failure mode), and pure noise;
//! * [`index`] — an inverted index with BM25 ranking (the [`scoring`]
//!   module holds the shared BM25 kernel and tie rules);
//! * [`segment`] — a segmented view of a corpus: a base index plus
//!   journaled add/remove segments merged at read time, bit-identical
//!   to a full rebuild — the O(delta) ingest path;
//! * [`backend`] — the [`backend::SearchBackend`] seam the engine and
//!   services consume, with [`backend::SwappableBackend`] for live
//!   hot-swap after a segment lands;
//! * [`engine`] — the [`engine::SearchEngine`] trait and [`engine::BingSim`],
//!   which returns `(url, title, snippet)` triples (snippets truncated to
//!   ~20 words, as the paper observes of real snippets) and charges
//!   virtual latency per query.
//!
//! Ambiguity is inherited from the world: "Melisse" the restaurant and
//! "Melisse" the jazz label both have pages, and an unaugmented query
//! retrieves a mix; appending the city (§5.2.2) shifts BM25 toward the
//! right entity because official pages mention their city.

pub mod backend;
pub mod corpus;
pub mod engine;
pub mod index;
pub mod page;
pub mod scoring;
pub mod segment;
pub mod template;

pub use backend::{assemble_results, BaseCorpus, PageFields, SearchBackend, SwappableBackend};
pub use corpus::{WebCorpus, WebCorpusSpec};
pub use engine::{BingSim, SearchEngine, SearchResult};
pub use index::{IndexParts, InvalidIndexParts, InvertedIndex};
pub use page::{PageId, WebPage};
pub use scoring::{merge_topk, rank_order};
pub use segment::{Segment, SegmentOp, SegmentedCorpus};
