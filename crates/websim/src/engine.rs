//! The search-engine facade: the Bing API stand-in.
//!
//! §5.2: "It submits the content of the cell to a Web search engine; it
//! collects the top-k search results, each consisting of a link to a Web
//! page, its title and a short summary of its content, often referred to
//! as a snippet." The engine charges virtual latency per query — "querying
//! a Web search engine is a costly operation" (§5) is the whole reason the
//! paper has a pre-processing step, and the efficiency experiment (§6.4)
//! measures exactly this cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::SeedableRng;

use teda_simkit::{LatencyModel, VirtualClock};

use crate::backend::SearchBackend;

/// One search result, as the annotator consumes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// Link to the page.
    pub url: String,
    /// Page title.
    pub title: String,
    /// Short summary (≤ ~20 words).
    pub snippet: String,
}

/// A Web search engine.
///
/// `search` takes `&self` so one engine instance can serve concurrent
/// annotation workers; implementations that need interior state (latency
/// RNG, counters) synchronize it themselves, as [`BingSim`] does.
pub trait SearchEngine {
    /// Returns the top-`k` results for `query` (possibly fewer).
    fn search(&self, query: &str, k: usize) -> Vec<SearchResult>;
}

impl<E: SearchEngine + ?Sized> SearchEngine for &E {
    fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
        (**self).search(query, k)
    }
}

impl<E: SearchEngine + ?Sized> SearchEngine for Arc<E> {
    fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
        (**self).search(query, k)
    }
}

/// The simulated Bing API over any [`SearchBackend`] — the monolithic
/// [`crate::WebCorpus`], a segmented corpus, or a hot-swappable handle.
///
/// Cheaply shareable across threads: the backend is behind an `Arc`
/// (read-only, or internally synchronized like
/// [`crate::backend::SwappableBackend`]), the query counter is atomic,
/// and the only mutable state — the latency RNG — sits behind a mutex
/// held just long enough to draw one sample. Results are a pure
/// function of `(query, k)` against the backend's current collection;
/// concurrent callers only interleave *which* latency sample each query
/// draws, and the virtual clock accumulates the same total either way.
pub struct BingSim {
    backend: Arc<dyn SearchBackend>,
    clock: VirtualClock,
    latency: LatencyModel,
    rng: Mutex<StdRng>,
    queries: AtomicU64,
}

impl BingSim {
    /// Creates an engine charging `latency` per query into `clock`.
    /// `Arc<WebCorpus>` coerces here, so existing callers are unchanged.
    pub fn new(
        backend: Arc<dyn SearchBackend>,
        clock: VirtualClock,
        latency: LatencyModel,
    ) -> Self {
        BingSim {
            backend,
            clock,
            latency,
            rng: Mutex::new(StdRng::seed_from_u64(0xb19)),
            queries: AtomicU64::new(0),
        }
    }

    /// A zero-latency engine for tests.
    pub fn instant(backend: Arc<dyn SearchBackend>) -> Self {
        BingSim::new(backend, VirtualClock::new(), LatencyModel::zero())
    }

    /// Number of queries served (the paper's daily-allowance concern).
    pub fn query_count(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Number of pages in the backing collection (as of now — a
    /// swappable backend may grow between calls).
    pub fn n_docs(&self) -> usize {
        self.backend.n_docs()
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }
}

impl SearchEngine for BingSim {
    fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
        let d = {
            let mut rng = self.rng.lock().expect("engine rng poisoned");
            self.latency.sample(&mut *rng)
        };
        self.clock.advance(d);
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.backend.search_results(query, k)
    }
}

// Compile-time proof that the engine is shareable across threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BingSim>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use teda_kb::{World, WorldSpec};

    use crate::corpus::{WebCorpus, WebCorpusSpec};

    fn engine() -> (World, BingSim) {
        let w = World::generate(WorldSpec::tiny(), 42);
        let c = WebCorpus::build(&w, WebCorpusSpec::tiny(), 42);
        (w, BingSim::instant(Arc::new(c)))
    }

    #[test]
    fn results_have_url_title_snippet() {
        let (w, engine) = engine();
        let name = &w.entities()[0].name;
        let results = engine.search(name, 5);
        assert!(!results.is_empty());
        for r in &results {
            assert!(r.url.starts_with("http"));
            assert!(!r.title.is_empty());
            assert!(r.snippet.split_whitespace().count() <= 20);
        }
    }

    #[test]
    fn k_is_respected() {
        let (w, engine) = engine();
        let name = &w.entities()[0].name;
        assert!(engine.search(name, 3).len() <= 3);
    }

    #[test]
    fn latency_accumulates_on_the_shared_clock() {
        let w = World::generate(WorldSpec::tiny(), 1);
        let c = WebCorpus::build(&w, WebCorpusSpec::tiny(), 1);
        let clock = VirtualClock::new();
        let engine = BingSim::new(
            Arc::new(c),
            clock.clone(),
            LatencyModel::Fixed(Duration::from_millis(400)),
        );
        engine.search("anything", 10);
        engine.search("anything else", 10);
        assert_eq!(clock.now(), Duration::from_millis(800));
        assert_eq!(engine.query_count(), 2);
    }

    #[test]
    fn unknown_query_returns_empty() {
        let (_, engine) = engine();
        assert!(engine.search("xylophone zanzibar quux", 10).is_empty());
    }
}
