//! The BM25 scoring kernel shared by every index flavour.
//!
//! [`InvertedIndex`](crate::InvertedIndex), the read-time-merged
//! [`SegmentedCorpus`](crate::SegmentedCorpus) and `teda-store`'s lazy
//! snapshot view all rank with these exact functions. Bit-identity of
//! their results is not a coincidence to be tested into existence — it
//! is guaranteed by sharing the arithmetic (same operations in the same
//! order on the same bit patterns) and the tie rules (score descending,
//! page id ascending, compared with `f64::total_cmp`). The property
//! tests then only have to check that each flavour *feeds* the kernel
//! the same `(idf, tf, doc_len, avg_len)` stream.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::page::PageId;

/// BM25 `k1`: term-frequency saturation.
pub const K1: f64 = 1.2;
/// BM25 `b`: document-length normalization strength.
pub const B: f64 = 0.75;

/// BM25 IDF with the standard +1 floor against negative values.
#[inline]
pub fn idf(n_docs: usize, df: usize) -> f64 {
    let df = df as f64;
    (((n_docs as f64 - df + 0.5) / (df + 0.5)) + 1.0).ln()
}

/// One posting's BM25 contribution. The expression tree is fixed here
/// so every caller performs the identical float operations in the
/// identical order — the foundation of cross-flavour bit-identity.
#[inline]
pub fn weight(idf: f64, tf: f64, doc_len: f64, avg_len: f64) -> f64 {
    let norm = K1 * (1.0 - B + B * doc_len / avg_len.max(1e-9));
    idf * (tf * (K1 + 1.0)) / (tf + norm)
}

/// Heap entry ordered so that `a > b` means "a ranks better": higher
/// score first, lower page id on ties — the exact order of a full
/// descending sort with id tie-breaks.
#[derive(Debug, Clone, Copy)]
struct Ranked {
    score: f64,
    page: PageId,
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.page == other.page
    }
}

impl Eq for Ranked {}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> Ordering {
        // total_cmp, not partial_cmp().expect(...): BM25 scores are
        // finite today, but a NaN sneaking in through a future scoring
        // tweak must degrade (NaN sorts as an ordinary value) rather
        // than panic inside every query. For finite scores the order is
        // identical, so top-k ties stay byte-identical.
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.page.cmp(&self.page))
    }
}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Selects the top `k` of the touched pages by descending score, page
/// id ascending on ties, through a bounded binary heap (`O(n log k)`).
/// `touched` lists the pages with non-zero accumulated score (any
/// deterministic order works — the heap result is order-insensitive,
/// but every caller produces first-touch order for its own scan).
pub fn rank_top_k(scores: &[f64], touched: &[u32], k: usize) -> Vec<(PageId, f64)> {
    if k == 0 {
        return Vec::new();
    }
    // Bounded min-heap of the k best (the heap's minimum is the
    // current k-th entry; anything better evicts it).
    let mut heap: BinaryHeap<std::cmp::Reverse<Ranked>> = BinaryHeap::with_capacity(k + 1);
    for &page in touched {
        let entry = Ranked {
            score: scores[page as usize],
            page: PageId(page),
        };
        if heap.len() < k {
            heap.push(std::cmp::Reverse(entry));
        } else if entry > heap.peek().expect("non-empty heap").0 {
            heap.pop();
            heap.push(std::cmp::Reverse(entry));
        }
    }
    heap.into_sorted_vec()
        .into_iter()
        .map(|std::cmp::Reverse(r)| (r.page, r.score))
        .collect()
}

/// The historical ranking path — score everything, sort everything —
/// kept as the reference [`rank_top_k`] must match exactly (tie order
/// included) and as the baseline for microbenchmarks.
pub fn rank_full_sort(scores: &[f64], touched: &[u32], k: usize) -> Vec<(PageId, f64)> {
    let mut ranked: Vec<(PageId, f64)> = touched
        .iter()
        .map(|&p| (PageId(p), scores[p as usize]))
        .collect();
    // Same NaN-tolerant ordering as `Ranked::cmp` — the two paths
    // must tie-break identically or the bounded-heap equivalence
    // tests would diverge on degenerate scores.
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: a NaN score (a degenerate idf/length interaction in
    /// some future scoring tweak) must order deterministically, not
    /// panic inside every query — and both ranking paths must agree.
    #[test]
    fn nan_scores_order_deterministically_instead_of_panicking() {
        let entries = [
            Ranked {
                score: f64::NAN,
                page: PageId(0),
            },
            Ranked {
                score: 1.5,
                page: PageId(1),
            },
            Ranked {
                score: f64::NAN,
                page: PageId(2),
            },
            Ranked {
                score: 0.5,
                page: PageId(3),
            },
        ];
        let mut heap_order = entries;
        heap_order.sort(); // would have panicked via partial_cmp
        let mut full_sort_order: Vec<(PageId, f64)> =
            entries.iter().map(|r| (r.page, r.score)).collect();
        full_sort_order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        // `sort` is ascending "worse first"; the full-sort comparator is
        // descending "best first" — reversed, they must agree exactly.
        heap_order.reverse();
        let from_ranked: Vec<(PageId, f64)> =
            heap_order.iter().map(|r| (r.page, r.score)).collect();
        assert_eq!(
            format!("{from_ranked:?}"),
            format!("{full_sort_order:?}"),
            "Ranked::cmp and the full-sort comparator disagree on NaN"
        );
        // NaN ranks above every finite score under total_cmp; ties on
        // NaN still break by ascending page id.
        assert_eq!(from_ranked[0].0, PageId(0));
        assert_eq!(from_ranked[1].0, PageId(2));
        assert_eq!(from_ranked[2].0, PageId(1));
        assert_eq!(from_ranked[3].0, PageId(3));
    }

    #[test]
    fn rank_paths_agree_on_ties() {
        let scores = vec![2.0, 1.0, 2.0, 0.0, 1.0];
        let touched = vec![0, 1, 2, 4];
        for k in 0..=5 {
            assert_eq!(
                rank_top_k(&scores, &touched, k),
                rank_full_sort(&scores, &touched, k),
                "k = {k}"
            );
        }
        let top = rank_top_k(&scores, &touched, 3);
        assert_eq!(
            top,
            vec![(PageId(0), 2.0), (PageId(2), 2.0), (PageId(1), 1.0)]
        );
    }
}
