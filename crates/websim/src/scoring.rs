//! The BM25 scoring kernel shared by every index flavour.
//!
//! [`InvertedIndex`](crate::InvertedIndex), the read-time-merged
//! [`SegmentedCorpus`](crate::SegmentedCorpus) and `teda-store`'s lazy
//! snapshot view all rank with these exact functions. Bit-identity of
//! their results is not a coincidence to be tested into existence — it
//! is guaranteed by sharing the arithmetic (same operations in the same
//! order on the same bit patterns) and the tie rules (score descending,
//! page id ascending, compared with `f64::total_cmp`). The property
//! tests then only have to check that each flavour *feeds* the kernel
//! the same `(idf, tf, doc_len, avg_len)` stream.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::page::PageId;

/// BM25 `k1`: term-frequency saturation.
pub const K1: f64 = 1.2;
/// BM25 `b`: document-length normalization strength.
pub const B: f64 = 0.75;

/// BM25 IDF with the standard +1 floor against negative values.
#[inline]
pub fn idf(n_docs: usize, df: usize) -> f64 {
    let df = df as f64;
    (((n_docs as f64 - df + 0.5) / (df + 0.5)) + 1.0).ln()
}

/// One posting's BM25 contribution. The expression tree is fixed here
/// so every caller performs the identical float operations in the
/// identical order — the foundation of cross-flavour bit-identity.
#[inline]
pub fn weight(idf: f64, tf: f64, doc_len: f64, avg_len: f64) -> f64 {
    let norm = K1 * (1.0 - B + B * doc_len / avg_len.max(1e-9));
    idf * (tf * (K1 + 1.0)) / (tf + norm)
}

/// The one total order every ranked list in the system uses: higher
/// score first (compared with `total_cmp`, so a NaN degrades to an
/// ordinary value instead of panicking inside every query), ascending
/// page id on ties. `Less` means "`a` ranks better than `b`" — i.e.
/// sorting by this comparator puts the best hit first.
///
/// This is the single definition of the tie rules. The bounded heap
/// ([`rank_top_k`]), the full-sort reference ([`rank_full_sort`]) and
/// the cluster router's k-way merge ([`merge_topk`]) all defer to it,
/// which is why their outputs can be compared bit for bit.
#[inline]
pub fn rank_order(a: &(PageId, f64), b: &(PageId, f64)) -> Ordering {
    b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0))
}

/// Merges already-ranked lists (each sorted best-first by
/// [`rank_order`], e.g. per-shard `search` outputs) into one global
/// top-`k` under the identical order. Page ids must be globally unique
/// across the lists — duplicate ids are kept as-is, never summed.
///
/// Correctness of scatter-gather rides on this: any document in the
/// global top-k beats all but fewer than k documents globally, hence
/// all but fewer than k in its own shard, hence appears in that shard's
/// local top-k — so merging local top-k lists and truncating is exact,
/// ties included.
pub fn merge_topk<I>(lists: I, k: usize) -> Vec<(PageId, f64)>
where
    I: IntoIterator<Item = Vec<(PageId, f64)>>,
{
    let mut merged: Vec<(PageId, f64)> = lists.into_iter().flatten().collect();
    merged.sort_by(rank_order);
    merged.truncate(k);
    merged
}

/// Heap entry ordered so that `a > b` means "a ranks better": higher
/// score first, lower page id on ties — the exact order of a full
/// descending sort with id tie-breaks.
#[derive(Debug, Clone, Copy)]
struct Ranked {
    score: f64,
    page: PageId,
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.page == other.page
    }
}

impl Eq for Ranked {}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> Ordering {
        // `rank_order` puts the better entry first (`Less`); the heap
        // wants "better" to be `Greater`, hence the reverse.
        rank_order(&(self.page, self.score), &(other.page, other.score)).reverse()
    }
}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Selects the top `k` of the touched pages by descending score, page
/// id ascending on ties, through a bounded binary heap (`O(n log k)`).
/// `touched` lists the pages with non-zero accumulated score (any
/// deterministic order works — the heap result is order-insensitive,
/// but every caller produces first-touch order for its own scan).
pub fn rank_top_k(scores: &[f64], touched: &[u32], k: usize) -> Vec<(PageId, f64)> {
    if k == 0 {
        return Vec::new();
    }
    // Bounded min-heap of the k best (the heap's minimum is the
    // current k-th entry; anything better evicts it).
    let mut heap: BinaryHeap<std::cmp::Reverse<Ranked>> = BinaryHeap::with_capacity(k + 1);
    for &page in touched {
        let entry = Ranked {
            score: scores[page as usize],
            page: PageId(page),
        };
        if heap.len() < k {
            heap.push(std::cmp::Reverse(entry));
        } else if entry > heap.peek().expect("non-empty heap").0 {
            heap.pop();
            heap.push(std::cmp::Reverse(entry));
        }
    }
    heap.into_sorted_vec()
        .into_iter()
        .map(|std::cmp::Reverse(r)| (r.page, r.score))
        .collect()
}

/// The historical ranking path — score everything, sort everything —
/// kept as the reference [`rank_top_k`] must match exactly (tie order
/// included) and as the baseline for microbenchmarks.
pub fn rank_full_sort(scores: &[f64], touched: &[u32], k: usize) -> Vec<(PageId, f64)> {
    let mut ranked: Vec<(PageId, f64)> = touched
        .iter()
        .map(|&p| (PageId(p), scores[p as usize]))
        .collect();
    ranked.sort_by(rank_order);
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: a NaN score (a degenerate idf/length interaction in
    /// some future scoring tweak) must order deterministically, not
    /// panic inside every query — and both ranking paths must agree.
    #[test]
    fn nan_scores_order_deterministically_instead_of_panicking() {
        let entries = [
            Ranked {
                score: f64::NAN,
                page: PageId(0),
            },
            Ranked {
                score: 1.5,
                page: PageId(1),
            },
            Ranked {
                score: f64::NAN,
                page: PageId(2),
            },
            Ranked {
                score: 0.5,
                page: PageId(3),
            },
        ];
        let mut heap_order = entries;
        heap_order.sort(); // would have panicked via partial_cmp
        let mut full_sort_order: Vec<(PageId, f64)> =
            entries.iter().map(|r| (r.page, r.score)).collect();
        full_sort_order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        // `sort` is ascending "worse first"; the full-sort comparator is
        // descending "best first" — reversed, they must agree exactly.
        heap_order.reverse();
        let from_ranked: Vec<(PageId, f64)> =
            heap_order.iter().map(|r| (r.page, r.score)).collect();
        assert_eq!(
            format!("{from_ranked:?}"),
            format!("{full_sort_order:?}"),
            "Ranked::cmp and the full-sort comparator disagree on NaN"
        );
        // NaN ranks above every finite score under total_cmp; ties on
        // NaN still break by ascending page id.
        assert_eq!(from_ranked[0].0, PageId(0));
        assert_eq!(from_ranked[1].0, PageId(2));
        assert_eq!(from_ranked[2].0, PageId(1));
        assert_eq!(from_ranked[3].0, PageId(3));
    }

    #[test]
    fn rank_paths_agree_on_ties() {
        let scores = vec![2.0, 1.0, 2.0, 0.0, 1.0];
        let touched = vec![0, 1, 2, 4];
        for k in 0..=5 {
            assert_eq!(
                rank_top_k(&scores, &touched, k),
                rank_full_sort(&scores, &touched, k),
                "k = {k}"
            );
        }
        let top = rank_top_k(&scores, &touched, 3);
        assert_eq!(
            top,
            vec![(PageId(0), 2.0), (PageId(2), 2.0), (PageId(1), 1.0)]
        );
    }

    /// Merging per-shard top-k lists equals ranking the union — the
    /// scatter-gather exactness argument, exercised on ties.
    #[test]
    fn merge_topk_equals_ranking_the_union() {
        // Global scores with cross-shard ties (pages 0/2 tie at 2.0,
        // pages 1/4 tie at 1.0) split over three "shards", one empty.
        let scores = vec![2.0, 1.0, 2.0, 0.5, 1.0, 3.0];
        let all: Vec<u32> = (0..scores.len() as u32).collect();
        let shards: [&[u32]; 3] = [&[0, 3], &[], &[1, 2, 4, 5]];
        for k in 0..=scores.len() + 1 {
            let locals = shards
                .iter()
                .map(|pages| rank_top_k(&scores, pages, k))
                .collect::<Vec<_>>();
            assert_eq!(
                merge_topk(locals, k),
                rank_top_k(&scores, &all, k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn merge_topk_orders_nan_like_the_single_node_paths() {
        let a = vec![(PageId(4), f64::NAN), (PageId(7), 1.0)];
        let b = vec![(PageId(2), f64::NAN), (PageId(9), 2.0)];
        let merged = merge_topk([a, b], 3);
        let ids: Vec<u32> = merged.iter().map(|(p, _)| p.0).collect();
        // NaN ranks above every finite score under total_cmp; NaN ties
        // break by ascending page id.
        assert_eq!(ids, vec![2, 4, 9]);
    }
}
