//! The search-backend seam: how a ranked index is consumed, without
//! saying which index it is.
//!
//! [`BingSim`](crate::BingSim) (and through it `BatchAnnotator` and the
//! annotation service) only ever needs three things from the corpus:
//! rank pages for a query, assemble the ranked pages into results, and
//! know the collection size. [`SearchBackend`] is that contract,
//! implemented by the monolithic [`WebCorpus`], the read-time-merged
//! [`SegmentedCorpus`](crate::SegmentedCorpus), and `teda-store`'s lazy
//! snapshot view — and it is the seam a future scatter-gather cluster
//! tier would slot into. [`SwappableBackend`] adds atomic hot swap so a
//! live service can fold in a freshly journaled segment without
//! restarting (each query runs against one coherent backend, before or
//! after the swap, never a mixture).

use std::sync::{Arc, RwLock};

use crate::corpus::WebCorpus;
use crate::engine::SearchResult;
use crate::page::{snippet_of, PageId};

/// Borrowed views of one page's fields, as a search result consumes
/// them. Borrowing (rather than cloning three `String`s per access) is
/// what lets the zero-copy snapshot view serve page reads straight out
/// of its byte buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFields<'a> {
    /// The page URL.
    pub url: &'a str,
    /// The page title.
    pub title: &'a str,
    /// The page text.
    pub body: &'a str,
}

impl PageFields<'_> {
    /// The search-result snippet: the first
    /// [`SNIPPET_WORDS`](crate::page::SNIPPET_WORDS) words of the body.
    pub fn snippet(&self) -> String {
        snippet_of(self.body)
    }

    /// The `(url, title, snippet)` triple the engine facade returns.
    pub fn to_result(self) -> SearchResult {
        SearchResult {
            url: self.url.to_string(),
            title: self.title.to_string(),
            snippet: self.snippet(),
        }
    }
}

/// A ranked page collection, as the engine facade consumes it.
///
/// Implementations must rank identically for identical logical corpora:
/// BM25 through [`crate::scoring`], ties broken by ascending page id.
/// Both methods take `&self` so one backend can serve concurrent
/// workers. `search_results` exists (rather than a borrowed per-page
/// accessor) so a hot-swappable backend can resolve one coherent
/// backend per query — ranking and field assembly never straddle a
/// swap.
pub trait SearchBackend: Send + Sync {
    /// Up to `k` pages by descending BM25 score, ties by ascending id.
    fn search(&self, query: &str, k: usize) -> Vec<(PageId, f64)>;

    /// The top-`k` results with their fields assembled.
    fn search_results(&self, query: &str, k: usize) -> Vec<SearchResult>;

    /// Number of pages in the collection.
    fn n_docs(&self) -> usize;
}

/// Assembles owned results from ranked hits and a page-field accessor —
/// the one-liner every concrete backend's `search_results` reduces to.
pub fn assemble_results<'a>(
    hits: Vec<(PageId, f64)>,
    fields: impl Fn(PageId) -> PageFields<'a>,
) -> Vec<SearchResult> {
    hits.into_iter()
        .map(|(page, _)| fields(page).to_result())
        .collect()
}

impl SearchBackend for WebCorpus {
    fn search(&self, query: &str, k: usize) -> Vec<(PageId, f64)> {
        self.index().search(query, k)
    }

    fn search_results(&self, query: &str, k: usize) -> Vec<SearchResult> {
        assemble_results(self.index().search(query, k), |id| self.page_fields(id))
    }

    fn n_docs(&self) -> usize {
        self.len()
    }
}

/// The raw index surface a [`SegmentedCorpus`](crate::SegmentedCorpus)
/// merges over — everything the two-pass overlay search needs from its
/// base collection, without saying how that collection is stored.
///
/// [`WebCorpus`] implements it over its heap-resident
/// [`InvertedIndex`](crate::InvertedIndex); `teda-store`'s mmap'd view
/// backend implements it by walking posting bytes in place. Because the
/// overlay search consumes *exactly* these accessors — same values,
/// same visit order — any two implementations that agree on them
/// produce bit-identical merged rankings.
///
/// Contract: `tid` arguments must come from `term_id` on the same
/// instance; `doc` and page ids are `0..n_docs()`. Postings are visited
/// in ascending page order with the `tf` bit patterns the index stores
/// (floats travel as bits precisely so this trait can't introduce
/// drift).
pub trait BaseCorpus: Send + Sync + std::fmt::Debug {
    /// Number of documents in the base collection.
    fn n_docs(&self) -> usize;

    /// The dense id of `term`, if interned.
    fn term_id(&self, term: &str) -> Option<u32>;

    /// Size of the interned vocabulary (term ids are `0..n_terms()`).
    /// The cluster's shard backend validates its manifest's per-term
    /// global-df table against this, so a `term_id` hit can never
    /// index past the table.
    fn n_terms(&self) -> usize;

    /// Posting-list length of term `tid` — its raw document frequency.
    fn postings_len(&self, tid: u32) -> usize;

    /// Visits term `tid`'s postings in stored (ascending page id)
    /// order as `(page id, tf)` pairs.
    fn for_each_posting(&self, tid: u32, visit: &mut dyn FnMut(u32, f32));

    /// Indexed token length of document `doc`, as stored.
    fn doc_len_of(&self, doc: usize) -> f64;

    /// Borrowed field views of page `id`.
    fn page_fields(&self, id: PageId) -> PageFields<'_>;
}

impl BaseCorpus for WebCorpus {
    fn n_docs(&self) -> usize {
        self.len()
    }

    fn term_id(&self, term: &str) -> Option<u32> {
        self.index().term_id(term)
    }

    fn n_terms(&self) -> usize {
        self.index().n_terms()
    }

    fn postings_len(&self, tid: u32) -> usize {
        self.index().postings_of(tid).len()
    }

    fn for_each_posting(&self, tid: u32, visit: &mut dyn FnMut(u32, f32)) {
        for p in self.index().postings_of(tid) {
            visit(p.page.0, p.tf);
        }
    }

    fn doc_len_of(&self, doc: usize) -> f64 {
        self.index().doc_len_of(doc)
    }

    fn page_fields(&self, id: PageId) -> PageFields<'_> {
        WebCorpus::page_fields(self, id)
    }
}

/// An atomically swappable backend: the indirection a live service
/// queries through, so folding in a new segment is one pointer swap.
///
/// The lock is held only long enough to clone or replace the `Arc` —
/// never across a search — so a slow query can't block a refresh and a
/// refresh can't block queries. A query that raced a swap completes
/// against the backend it resolved (its `Arc` keeps that corpus
/// alive), which is exactly the snapshot-isolation semantics a reader
/// wants.
pub struct SwappableBackend {
    inner: RwLock<Arc<dyn SearchBackend>>,
}

impl SwappableBackend {
    /// A swappable wrapper starting at `initial`.
    pub fn new(initial: Arc<dyn SearchBackend>) -> Self {
        SwappableBackend {
            inner: RwLock::new(initial),
        }
    }

    /// The current backend (cheap: one `Arc` clone under a read lock).
    pub fn current(&self) -> Arc<dyn SearchBackend> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Atomically replaces the backend; in-flight queries finish
    /// against the one they resolved.
    pub fn swap(&self, next: Arc<dyn SearchBackend>) {
        *self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = next;
    }
}

impl std::fmt::Debug for SwappableBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwappableBackend")
            .field("n_docs", &self.current().n_docs())
            .finish()
    }
}

impl SearchBackend for SwappableBackend {
    fn search(&self, query: &str, k: usize) -> Vec<(PageId, f64)> {
        self.current().search(query, k)
    }

    fn search_results(&self, query: &str, k: usize) -> Vec<SearchResult> {
        // One resolve per query: ranking and field assembly both run
        // against the same backend even if a swap lands mid-call.
        self.current().search_results(query, k)
    }

    fn n_docs(&self) -> usize {
        self.current().n_docs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::WebPage;

    fn corpus() -> WebCorpus {
        WebCorpus::from_pages(vec![
            WebPage {
                url: "u0".into(),
                title: "Melisse".into(),
                body: "melisse restaurant santa monica".into(),
            },
            WebPage {
                url: "u1".into(),
                title: "Noise".into(),
                body: "unrelated words entirely".into(),
            },
        ])
    }

    #[test]
    fn corpus_backend_matches_direct_index_search() {
        let c = corpus();
        let via_backend = SearchBackend::search(&c, "melisse", 5);
        let direct = c.index().search("melisse", 5);
        assert_eq!(via_backend, direct);
        let results = c.search_results("melisse", 5);
        assert_eq!(results[0].url, "u0");
        assert_eq!(results[0].snippet, "melisse restaurant santa monica");
    }

    #[test]
    fn swap_changes_results_atomically() {
        let a = Arc::new(corpus());
        let b = Arc::new(WebCorpus::from_pages(Vec::new()));
        let sw = SwappableBackend::new(a.clone());
        assert_eq!(sw.n_docs(), 2);
        assert!(!sw.search("melisse", 5).is_empty());
        // A reader holding the pre-swap backend keeps its view.
        let held = sw.current();
        sw.swap(b);
        assert_eq!(sw.n_docs(), 0);
        assert!(sw.search("melisse", 5).is_empty());
        assert_eq!(held.n_docs(), 2);
    }
}
