//! Page-text generation: type-conditioned language models.
//!
//! Pages are bags of short phrases drawn from four pools, mixed per page
//! flavour:
//!
//! * the entity's **name** (always, early in the body — so the snippet
//!   carries it and BM25 retrieves the page for name queries);
//! * the literal **type word**, with the per-type probability calibrated
//!   in [`EntityType::snippet_type_word_prob`] (drives the TIS baseline);
//! * **core terms** distinctive of the type (what the classifier learns);
//! * **domain terms** shared across the broad category, plus generic Web
//!   noise (what makes the problem non-trivial).
//!
//! Official pages also name the entity's **city** prominently — that is
//! what makes spatial query augmentation (§5.2.2) effective.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use teda_kb::{Entity, EntityType, World};

use crate::page::WebPage;

/// The flavour of a generated page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFlavour {
    /// The entity's own site: name + city + core vocabulary.
    Official,
    /// A third-party review: name + review vocabulary + core vocabulary.
    Review,
    /// A listing that mentions the entity among others of its type.
    Listing,
    /// A news item: name + generic vocabulary, weak type signal.
    News,
}

/// Generic Web words mixed into every page.
pub const GENERIC_WEB: [&str; 24] = [
    "online",
    "information",
    "website",
    "contact",
    "page",
    "home",
    "official",
    "find",
    "best",
    "top",
    "new",
    "world",
    "free",
    "read",
    "share",
    "more",
    "list",
    "guide",
    "today",
    "welcome",
    "discover",
    "latest",
    "featured",
    "search",
];

const REVIEW_WORDS: [&str; 12] = [
    "review",
    "rated",
    "stars",
    "experience",
    "recommend",
    "visited",
    "amazing",
    "great",
    "disappointing",
    "overall",
    "definitely",
    "worth",
];

const NEWS_WORDS: [&str; 10] = [
    "announced",
    "reported",
    "yesterday",
    "officials",
    "according",
    "sources",
    "community",
    "plans",
    "reopened",
    "story",
];

fn push_words<'a>(out: &mut Vec<&'a str>, rng: &mut StdRng, pool: &[&'a str], n: usize) {
    for _ in 0..n {
        out.push(pool[rng.gen_range(0..pool.len())]);
    }
}

/// Generates one page about `entity`.
pub fn entity_page(
    rng: &mut StdRng,
    world: &World,
    entity: &Entity,
    flavour: PageFlavour,
    serial: u32,
) -> WebPage {
    let etype = entity.etype;
    let mut words: Vec<&str> = Vec::with_capacity(48);

    // Name leads the body so it survives snippet truncation.
    words.extend(entity.name.split_whitespace());

    let city_name = entity.city_name(world.gazetteer());
    let type_word = etype.type_word();
    let include_type_word = rng.gen_bool(etype.snippet_type_word_prob());

    match flavour {
        PageFlavour::Official => {
            if include_type_word {
                words.push(type_word);
            }
            if let Some(city) = city_name {
                words.extend(city.split_whitespace());
            }
            {
                let n = rng.gen_range(4..8);
                push_words(&mut words, rng, etype.core_terms(), n);
            }
            {
                let n = rng.gen_range(2..4);
                push_words(&mut words, rng, etype.domain_terms(), n);
            }
            {
                let n = rng.gen_range(2..5);
                push_words(&mut words, rng, &GENERIC_WEB, n);
            }
            if let Some(city) = city_name {
                // mentioned again deeper in the body
                words.extend(city.split_whitespace());
            }
        }
        PageFlavour::Review => {
            {
                let n = rng.gen_range(3..6);
                push_words(&mut words, rng, &REVIEW_WORDS, n);
            }
            if include_type_word {
                words.push(type_word);
            }
            {
                let n = rng.gen_range(3..6);
                push_words(&mut words, rng, etype.core_terms(), n);
            }
            if let Some(city) = city_name {
                if rng.gen_bool(0.6) {
                    words.extend(city.split_whitespace());
                }
            }
            {
                let n = rng.gen_range(1..3);
                push_words(&mut words, rng, etype.domain_terms(), n);
            }
            {
                let n = rng.gen_range(2..4);
                push_words(&mut words, rng, &GENERIC_WEB, n);
            }
        }
        PageFlavour::Listing => {
            {
                let n = rng.gen_range(2..4);
                push_words(&mut words, rng, &GENERIC_WEB, n);
            }
            if include_type_word {
                words.push(type_word);
            }
            {
                let n = rng.gen_range(2..4);
                push_words(&mut words, rng, etype.core_terms(), n);
            }
            {
                let n = rng.gen_range(2..4);
                push_words(&mut words, rng, etype.domain_terms(), n);
            }
            // Listings name a couple of sibling entities of the same type.
            let siblings = world.entities_of(etype);
            for _ in 0..rng.gen_range(1..3usize) {
                if let Some(&sid) = siblings.choose(rng) {
                    words.extend(world.entity(sid).name.split_whitespace());
                }
            }
        }
        PageFlavour::News => {
            {
                let n = rng.gen_range(3..6);
                push_words(&mut words, rng, &NEWS_WORDS, n);
            }
            if rng.gen_bool(0.3) && include_type_word {
                words.push(type_word);
            }
            {
                let n = rng.gen_range(0..3);
                push_words(&mut words, rng, etype.core_terms(), n);
            }
            {
                let n = rng.gen_range(3..6);
                push_words(&mut words, rng, &GENERIC_WEB, n);
            }
            if let Some(city) = city_name {
                if rng.gen_bool(0.5) {
                    words.extend(city.split_whitespace());
                }
            }
        }
    }

    let suffix = match flavour {
        PageFlavour::Official => "Official Site",
        PageFlavour::Review => "Reviews",
        PageFlavour::Listing => "Directory",
        PageFlavour::News => "News",
    };
    WebPage {
        url: format!(
            "http://web.example/{}/{}-{}",
            slug(&entity.name),
            suffix.to_lowercase().replace(' ', "-"),
            serial
        ),
        title: format!("{} - {}", entity.name, suffix),
        body: words.join(" "),
    }
}

/// A type-level directory page: heavy type vocabulary, several entity
/// names. These are what a bare query like "Museum" retrieves — the
/// Figure 8 spurious-annotation hazard.
pub fn type_directory_page(
    rng: &mut StdRng,
    world: &World,
    etype: EntityType,
    serial: u32,
) -> WebPage {
    let mut words: Vec<&str> = Vec::with_capacity(48);
    push_words(&mut words, rng, &GENERIC_WEB, 2);
    // The type word appears repeatedly — a page "about museums".
    for _ in 0..rng.gen_range(2..5) {
        words.push(etype.type_word());
    }
    {
        let n = rng.gen_range(5..9);
        push_words(&mut words, rng, etype.core_terms(), n);
    }
    {
        let n = rng.gen_range(2..4);
        push_words(&mut words, rng, etype.domain_terms(), n);
    }
    let members = world.entities_of(etype);
    for _ in 0..rng.gen_range(2..5usize) {
        if let Some(&id) = members.choose(rng) {
            words.extend(world.entity(id).name.split_whitespace());
        }
    }
    WebPage {
        url: format!(
            "http://web.example/directory/{}-{}",
            etype.type_word(),
            serial
        ),
        title: format!("Top {} Directory", etype.display()),
        body: words.join(" "),
    }
}

/// A pure-noise page with no type signal at all.
pub fn noise_page(rng: &mut StdRng, serial: u32) -> WebPage {
    let mut words: Vec<&str> = Vec::with_capacity(32);
    {
        let n = rng.gen_range(12..24);
        push_words(&mut words, rng, &GENERIC_WEB, n);
    }
    {
        let n = rng.gen_range(2..6);
        push_words(&mut words, rng, &NEWS_WORDS, n);
    }
    WebPage {
        url: format!("http://web.example/misc/{serial}"),
        title: format!("Page {serial}"),
        body: words.join(" "),
    }
}

fn slug(name: &str) -> String {
    let s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    s.trim_matches('-').to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use teda_kb::WorldSpec;

    fn fixture() -> (World, StdRng) {
        (
            World::generate(WorldSpec::tiny(), 42),
            StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn entity_pages_carry_the_name_early() {
        let (w, mut rng) = fixture();
        for &id in w.entities_of(EntityType::Museum).iter().take(5) {
            let e = w.entity(id);
            let p = entity_page(&mut rng, &w, e, PageFlavour::Official, 0);
            let first_word = e.name.split_whitespace().next().unwrap().to_lowercase();
            assert!(
                p.snippet().to_lowercase().contains(&first_word),
                "snippet loses the entity name: {}",
                p.snippet()
            );
        }
    }

    #[test]
    fn official_pages_mention_the_city() {
        let (w, mut rng) = fixture();
        let id = w.entities_of(EntityType::Restaurant)[0];
        let e = w.entity(id);
        let city = e.city_name(w.gazetteer()).unwrap().to_lowercase();
        let p = entity_page(&mut rng, &w, e, PageFlavour::Official, 0);
        assert!(
            p.body.to_lowercase().contains(&city),
            "official page must mention {city}: {}",
            p.body
        );
    }

    #[test]
    fn type_word_frequency_is_calibrated() {
        let (w, mut rng) = fixture();
        // Schools: p = 0.68 → in 200 official pages, expect the word in
        // roughly 110–160.
        let id = w.entities_of(EntityType::School)[0];
        let e = w.entity(id);
        let mut with_word = 0;
        for i in 0..200 {
            let p = entity_page(&mut rng, &w, e, PageFlavour::Official, i);
            if p.body
                .split_whitespace()
                .any(|t| t.eq_ignore_ascii_case("school"))
            {
                with_word += 1;
            }
        }
        // name may also contain "School", inflating the count — accept a
        // broad band around the calibration target
        assert!(
            (90..=200).contains(&with_word),
            "school type-word rate: {with_word}/200"
        );

        // Singers: p = 0.08 → rare.
        let id = w.entities_of(EntityType::Singer)[0];
        let e = w.entity(id);
        let mut with_word = 0;
        for i in 0..200 {
            let p = entity_page(&mut rng, &w, e, PageFlavour::Official, i);
            if p.body
                .split_whitespace()
                .any(|t| t.eq_ignore_ascii_case("singer"))
            {
                with_word += 1;
            }
        }
        assert!(with_word < 40, "singer type-word rate: {with_word}/200");
    }

    #[test]
    fn directory_pages_repeat_the_type_word() {
        let (w, mut rng) = fixture();
        let p = type_directory_page(&mut rng, &w, EntityType::Museum, 0);
        let n = p
            .body
            .split_whitespace()
            .filter(|t| t.eq_ignore_ascii_case("museum"))
            .count();
        assert!(n >= 2, "directory page mentions museum {n} times");
    }

    #[test]
    fn noise_pages_have_no_core_terms() {
        let (_, mut rng) = fixture();
        let p = noise_page(&mut rng, 0);
        for t in EntityType::TARGETS {
            for core in t.core_terms().iter().take(3) {
                // noise vocabulary is disjoint from distinctive core terms
                assert!(
                    !p.body.split_whitespace().any(|w| w == *core),
                    "noise page contains core term {core}"
                );
            }
        }
    }

    #[test]
    fn urls_are_distinct_per_serial() {
        let (w, mut rng) = fixture();
        let id = w.entities_of(EntityType::Hotel)[0];
        let e = w.entity(id);
        let a = entity_page(&mut rng, &w, e, PageFlavour::Review, 0);
        let b = entity_page(&mut rng, &w, e, PageFlavour::Review, 1);
        assert_ne!(a.url, b.url);
    }

    #[test]
    fn slugging() {
        assert_eq!(slug("Musée du Louvre"), "mus-e-du-louvre");
        assert_eq!(slug("Joe's Kitchen"), "joe-s-kitchen");
    }
}
