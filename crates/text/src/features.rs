//! Sparse feature vectors with the paper's normalized-TF weighting.
//!
//! §5.2.1: "Each token is associated with its normalized frequency in the
//! snippet, that is obtained by dividing the number of its occurrences by
//! the length of the snippet. The set of tokens, along with their relative
//! frequencies, form the features used by the text classifier."
//!
//! "Length of the snippet" is taken as the number of content tokens after
//! stop-word removal (so weights of a snippet always sum to 1 when at
//! least one token survives) — the convention LingPipe-era pipelines used.

use std::cell::RefCell;
use std::collections::HashMap;

use crate::porter::Stemmer;
use crate::stopwords::is_stopword;
use crate::tokenize::tokenize;
use crate::vocab::Vocabulary;

/// A sparse feature vector: `(feature id, weight)` pairs sorted by id,
/// each id unique.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVector {
    entries: Vec<(u32, f64)>,
}

impl SparseVector {
    /// Builds a vector from unsorted, possibly duplicated pairs; duplicate
    /// ids are summed.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            match entries.last_mut() {
                Some((last_id, last_w)) if *last_id == id => *last_w += w,
                _ => entries.push((id, w)),
            }
        }
        SparseVector { entries }
    }

    /// The entries, sorted by feature id.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Number of non-zero features.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no features (e.g. the snippet was all stopwords).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The weight of feature `id`, 0.0 when absent.
    pub fn get(&self, id: u32) -> f64 {
        self.entries
            .binary_search_by_key(&id, |&(i, _)| i)
            .map(|idx| self.entries[idx].1)
            .unwrap_or(0.0)
    }

    /// Sum of weights (≈ 1.0 for normalized-TF vectors).
    pub fn sum(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Dot product with another sparse vector (merge join).
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.entries, &other.entries);
        let mut acc = 0.0;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Dot product with a dense weight slice; out-of-range ids contribute 0.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        self.entries
            .iter()
            .map(|&(id, w)| dense.get(id as usize).copied().unwrap_or(0.0) * w)
            .sum()
    }

    /// Adds `scale * self` into a dense accumulator (grows implicitly via
    /// the caller sizing `dense` to the vocabulary).
    pub fn add_scaled_into(&self, dense: &mut [f64], scale: f64) {
        for &(id, w) in &self.entries {
            if let Some(slot) = dense.get_mut(id as usize) {
                *slot += scale * w;
            }
        }
    }

    /// Squared Euclidean distance to another sparse vector.
    pub fn distance_sq(&self, other: &SparseVector) -> f64 {
        // |a|² + |b|² − 2·a·b
        let na = self.entries.iter().map(|&(_, w)| w * w).sum::<f64>();
        let nb = other.entries.iter().map(|&(_, w)| w * w).sum::<f64>();
        (na + nb - 2.0 * self.dot(other)).max(0.0)
    }
}

/// Turns raw text into [`SparseVector`]s via the §5.2.1 recipe:
/// lowercase → tokenize → stop-filter → Porter stem → normalized TF.
///
/// During training, call [`fit_transform`](FeatureExtractor::fit_transform)
/// so new tokens extend the vocabulary; at prediction time call
/// [`transform`](FeatureExtractor::transform), which skips unseen tokens.
///
/// `transform` is the extractor's *frozen* mode: it takes `&self`, never
/// touches the vocabulary, and keeps its stemming scratch in thread-local
/// storage — so one extractor can featurize snippets from many threads
/// concurrently (the batch annotation engine classifies cells in
/// parallel against a single shared extractor).
#[derive(Debug, Clone, Default)]
pub struct FeatureExtractor {
    vocab: Vocabulary,
    stemmer: Stemmer,
}

thread_local! {
    /// Per-thread stemming scratch for the frozen (`&self`) path; the
    /// stemmer's reusable buffer is an allocation optimisation, not
    /// state, so a per-thread instance preserves pure-function semantics.
    static FROZEN_STEMMER: RefCell<Stemmer> = RefCell::new(Stemmer::new());
}

impl FeatureExtractor {
    /// Creates an extractor with an empty vocabulary.
    pub fn new() -> Self {
        FeatureExtractor::default()
    }

    /// The current vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Vocabulary size; classifiers size their weight vectors from this.
    pub fn dim(&self) -> usize {
        self.vocab.len()
    }

    /// Extracts features, interning unseen tokens (training mode).
    pub fn fit_transform(&mut self, text: &str) -> SparseVector {
        let mut counts: HashMap<u32, u32> = HashMap::new();
        let mut total = 0u32;
        for tok in tokenize(text) {
            if is_stopword(&tok) {
                continue;
            }
            let stem = self.stemmer.stem(&tok);
            let id = self.vocab.intern(stem);
            *counts.entry(id).or_insert(0) += 1;
            total += 1;
        }
        Self::normalize(counts, total)
    }

    /// Extracts features against the frozen vocabulary (prediction mode);
    /// unseen tokens are skipped but still count toward the snippet length,
    /// as they would for a classifier that has never seen the word.
    ///
    /// Takes `&self`: the vocabulary is read-only here and the stemmer
    /// scratch is thread-local, so concurrent inference needs no locking.
    pub fn transform(&self, text: &str) -> SparseVector {
        FROZEN_STEMMER.with(|scratch| {
            let stemmer = &mut *scratch.borrow_mut();
            let mut counts: HashMap<u32, u32> = HashMap::new();
            let mut total = 0u32;
            for tok in tokenize(text) {
                if is_stopword(&tok) {
                    continue;
                }
                let stem = stemmer.stem(&tok);
                total += 1;
                if let Some(id) = self.vocab.get(stem) {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
            Self::normalize(counts, total)
        })
    }

    fn normalize(counts: HashMap<u32, u32>, total: u32) -> SparseVector {
        if total == 0 {
            return SparseVector::default();
        }
        let denom = f64::from(total);
        SparseVector::from_pairs(
            counts
                .into_iter()
                .map(|(id, c)| (id, f64::from(c) / denom))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = SparseVector::from_pairs(vec![(3, 1.0), (1, 0.5), (3, 2.0)]);
        assert_eq!(v.entries(), &[(1, 0.5), (3, 3.0)]);
        assert_eq!(v.get(3), 3.0);
        assert_eq!(v.get(2), 0.0);
    }

    #[test]
    fn dot_products() {
        let a = SparseVector::from_pairs(vec![(0, 1.0), (2, 2.0)]);
        let b = SparseVector::from_pairs(vec![(1, 5.0), (2, 3.0)]);
        assert_eq!(a.dot(&b), 6.0);
        assert_eq!(a.dot_dense(&[1.0, 1.0, 1.0]), 3.0);
        assert_eq!(a.dot_dense(&[1.0]), 1.0); // id 2 out of range → 0
    }

    #[test]
    fn norms_and_distance() {
        let a = SparseVector::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        assert_eq!(a.norm(), 5.0);
        let b = SparseVector::from_pairs(vec![(0, 0.0), (1, 0.0)]);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
        assert_eq!(a.distance_sq(&a), 0.0);
    }

    #[test]
    fn add_scaled_accumulates() {
        let a = SparseVector::from_pairs(vec![(0, 1.0), (2, 2.0)]);
        let mut dense = vec![0.0; 3];
        a.add_scaled_into(&mut dense, 2.0);
        assert_eq!(dense, vec![2.0, 0.0, 4.0]);
    }

    #[test]
    fn fit_transform_normalizes_to_one() {
        let mut fx = FeatureExtractor::new();
        let v = fx.fit_transform("The Louvre museum is a museum in Paris");
        // content tokens: louvre museum museum paris → weights sum to 1
        assert!((v.sum() - 1.0).abs() < 1e-12);
        let museum_id = fx.vocab().get("museum").unwrap();
        assert!((v.get(museum_id) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transform_skips_unseen_but_counts_length() {
        let mut fx = FeatureExtractor::new();
        fx.fit_transform("museum paris");
        let v = fx.transform("museum zanzibar"); // zanzibar unseen
        let museum_id = fx.vocab().get("museum").unwrap();
        // length 2, museum count 1 → weight 0.5
        assert!((v.get(museum_id) - 0.5).abs() < 1e-12);
        assert_eq!(v.nnz(), 1);
        assert_eq!(fx.dim(), 2, "transform must not grow the vocabulary");
    }

    #[test]
    fn all_stopword_text_yields_empty_vector() {
        let mut fx = FeatureExtractor::new();
        let v = fx.fit_transform("the of and");
        assert!(v.is_empty());
        assert_eq!(v.sum(), 0.0);
    }

    #[test]
    fn stemming_merges_inflections() {
        let mut fx = FeatureExtractor::new();
        let v = fx.fit_transform("museums museum");
        assert_eq!(v.nnz(), 1, "museums and museum share a stem");
        assert!((v.sum() - 1.0).abs() < 1e-12);
    }
}
