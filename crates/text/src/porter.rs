//! The Porter stemming algorithm (M.F. Porter, 1980), implemented in full.
//!
//! The paper stems snippet tokens "with the Porter algorithm \[21\]" before
//! feature extraction (§5.2.1). This is a faithful implementation of the
//! original algorithm — steps 1a, 1b (with its AT/BL/IZ cleanup), 1c, 2, 3,
//! 4, 5a and 5b — operating on ASCII buffers. Tokens containing non-ASCII
//! letters (e.g. "musée") are returned unchanged: the original algorithm is
//! defined over the English alphabet only.
//!
//! The implementation mirrors Porter's reference structure: a working
//! buffer `b[0..k]`, the consonant predicate, the measure `m()` counting
//! VC sequences, and the condition predicates `*v*`, `*d`, `*o`.

// The step functions keep the exact branch layout of Porter's reference
// implementation so each rule can be audited against the paper. Clippy's
// suggestions to merge branches are unsound here: `ends()` mutates `j` as
// a side effect, so two branches with identical bodies still differ.
#![allow(clippy::collapsible_match, clippy::if_same_then_else)]

/// A reusable Porter stemmer. Holds a scratch buffer so repeated calls do
/// not allocate (the snippet pipeline stems millions of tokens).
#[derive(Debug, Default, Clone)]
pub struct Stemmer {
    b: Vec<u8>,
    /// Index of the last valid byte in `b` (inclusive), i.e. Porter's `k`.
    k: usize,
    /// Porter's `j`: the end of the stem when a suffix has been matched.
    j: usize,
    /// Scratch for returning non-ASCII tokens unchanged.
    passthrough: String,
}

impl Stemmer {
    /// Creates a stemmer.
    pub fn new() -> Self {
        Stemmer::default()
    }

    /// Stems `word`, returning the stem as a borrowed `&str` valid until
    /// the next call. The input is expected lowercase (the tokenizer
    /// guarantees it); uppercase input is lowercased defensively.
    ///
    /// Words shorter than 3 characters are returned unchanged, as in the
    /// reference implementation.
    pub fn stem(&mut self, word: &str) -> &str {
        if !word.is_ascii() {
            self.passthrough.clear();
            self.passthrough.push_str(word);
            return &self.passthrough;
        }
        self.b.clear();
        self.b.extend(word.bytes().map(|c| c.to_ascii_lowercase()));
        if self.b.len() <= 2 {
            self.passthrough.clear();
            self.passthrough
                .push_str(std::str::from_utf8(&self.b).expect("ascii"));
            return &self.passthrough;
        }
        self.k = self.b.len() - 1;
        self.step1ab();
        self.step1c();
        self.step2();
        self.step3();
        self.step4();
        self.step5();
        std::str::from_utf8(&self.b[..=self.k]).expect("ascii buffer")
    }

    /// `true` when `b[i]` is a consonant (Porter's `cons(i)`): not a vowel,
    /// and `y` is a consonant only when following a vowel-position.
    fn cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.cons(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Porter's `m()`: the number of VC sequences in `b[0..=j]`.
    fn m(&self) -> usize {
        let mut n = 0;
        let mut i = 0;
        let j = self.j;
        loop {
            if i > j {
                return n;
            }
            if !self.cons(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            loop {
                if i > j {
                    return n;
                }
                if self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            loop {
                if i > j {
                    return n;
                }
                if !self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// `*v*`: the stem `b[0..=j]` contains a vowel.
    fn vowel_in_stem(&self) -> bool {
        (0..=self.j).any(|i| !self.cons(i))
    }

    /// `*d`: `b[i-1..=i]` is a double consonant.
    fn double_c(&self, i: usize) -> bool {
        i >= 1 && self.b[i] == self.b[i - 1] && self.cons(i)
    }

    /// `*o`: `b[i-2..=i]` is consonant-vowel-consonant where the final
    /// consonant is not `w`, `x` or `y` (e.g. `hop`, `cav`; not `snow`).
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.cons(i) || self.cons(i - 1) || !self.cons(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    /// Whether `b[..=k]` ends with `s`; sets `j` to the stem end on match.
    ///
    /// Requires at least one stem character before the suffix (the reference
    /// implementation allows an empty stem via `j = -1`; with unsigned
    /// indices we reject it, which only affects degenerate suffix-only
    /// tokens like "sses" — measure zero either way, so no rule fires).
    fn ends(&mut self, s: &[u8]) -> bool {
        let len = s.len();
        if len > self.k {
            return false;
        }
        if &self.b[self.k + 1 - len..=self.k] != s {
            return false;
        }
        self.j = self.k - len;
        true
    }

    /// Replaces the suffix (everything after `j`) with `s`, updating `k`.
    fn set_to(&mut self, s: &[u8]) {
        self.b.truncate(self.j + 1);
        self.b.extend_from_slice(s);
        self.k = self.b.len() - 1;
    }

    /// `set_to(s)` guarded by `m() > 0`.
    fn r(&mut self, s: &[u8]) {
        if self.m() > 0 {
            self.set_to(s);
        }
    }

    /// Step 1a (plurals) and 1b (-ed, -ing) with the 1b cleanup rules.
    fn step1ab(&mut self) {
        if self.b[self.k] == b's' {
            if self.ends(b"sses") {
                self.k -= 2;
                self.b.truncate(self.k + 1);
            } else if self.ends(b"ies") {
                self.set_to(b"i");
            } else if self.b[self.k - 1] != b's' {
                self.k -= 1;
                self.b.truncate(self.k + 1);
            }
        }
        if self.ends(b"eed") {
            if self.m() > 0 {
                self.k -= 1;
                self.b.truncate(self.k + 1);
            }
        } else if (self.ends(b"ed") || self.ends(b"ing")) && self.vowel_in_stem() {
            self.k = self.j;
            self.b.truncate(self.k + 1);
            if self.ends(b"at") {
                self.set_to(b"ate");
            } else if self.ends(b"bl") {
                self.set_to(b"ble");
            } else if self.ends(b"iz") {
                self.set_to(b"ize");
            } else if self.double_c(self.k) {
                if !matches!(self.b[self.k], b'l' | b's' | b'z') {
                    self.k -= 1;
                    self.b.truncate(self.k + 1);
                }
            } else {
                self.j = self.k;
                if self.m() == 1 && self.cvc(self.k) {
                    self.set_to_e();
                }
            }
        }
    }

    fn set_to_e(&mut self) {
        self.b.truncate(self.k + 1);
        self.b.push(b'e');
        self.k = self.b.len() - 1;
    }

    /// Step 1c: terminal `y` → `i` when the stem contains a vowel.
    fn step1c(&mut self) {
        if self.ends(b"y") && self.vowel_in_stem() {
            self.b[self.k] = b'i';
        }
    }

    /// Step 2: double/triple suffixes mapped to single ones, keyed on the
    /// penultimate letter as in the reference implementation.
    fn step2(&mut self) {
        if self.k == 0 {
            return;
        }
        match self.b[self.k - 1] {
            b'a' => {
                if self.ends(b"ational") {
                    self.r(b"ate");
                } else if self.ends(b"tional") {
                    self.r(b"tion");
                }
            }
            b'c' => {
                if self.ends(b"enci") {
                    self.r(b"ence");
                } else if self.ends(b"anci") {
                    self.r(b"ance");
                }
            }
            b'e' => {
                if self.ends(b"izer") {
                    self.r(b"ize");
                }
            }
            b'l' => {
                if self.ends(b"bli") {
                    // Porter's later revision of "abli" → "able"
                    self.r(b"ble");
                } else if self.ends(b"alli") {
                    self.r(b"al");
                } else if self.ends(b"entli") {
                    self.r(b"ent");
                } else if self.ends(b"eli") {
                    self.r(b"e");
                } else if self.ends(b"ousli") {
                    self.r(b"ous");
                }
            }
            b'o' => {
                if self.ends(b"ization") {
                    self.r(b"ize");
                } else if self.ends(b"ation") {
                    self.r(b"ate");
                } else if self.ends(b"ator") {
                    self.r(b"ate");
                }
            }
            b's' => {
                if self.ends(b"alism") {
                    self.r(b"al");
                } else if self.ends(b"iveness") {
                    self.r(b"ive");
                } else if self.ends(b"fulness") {
                    self.r(b"ful");
                } else if self.ends(b"ousness") {
                    self.r(b"ous");
                }
            }
            b't' => {
                if self.ends(b"aliti") {
                    self.r(b"al");
                } else if self.ends(b"iviti") {
                    self.r(b"ive");
                } else if self.ends(b"biliti") {
                    self.r(b"ble");
                }
            }
            b'g' => {
                if self.ends(b"logi") {
                    self.r(b"log");
                }
            }
            _ => {}
        }
    }

    /// Step 3: -ic-, -full, -ness etc.
    fn step3(&mut self) {
        match self.b[self.k] {
            b'e' => {
                if self.ends(b"icate") {
                    self.r(b"ic");
                } else if self.ends(b"ative") {
                    self.r(b"");
                } else if self.ends(b"alize") {
                    self.r(b"al");
                }
            }
            b'i' => {
                if self.ends(b"iciti") {
                    self.r(b"ic");
                }
            }
            b'l' => {
                if self.ends(b"ical") {
                    self.r(b"ic");
                } else if self.ends(b"ful") {
                    self.r(b"");
                }
            }
            b's' => {
                if self.ends(b"ness") {
                    self.r(b"");
                }
            }
            _ => {}
        }
    }

    /// Step 4: strip residual suffixes when `m() > 1`.
    fn step4(&mut self) {
        if self.k == 0 {
            return;
        }
        let matched = match self.b[self.k - 1] {
            b'a' => self.ends(b"al"),
            b'c' => self.ends(b"ance") || self.ends(b"ence"),
            b'e' => self.ends(b"er"),
            b'i' => self.ends(b"ic"),
            b'l' => self.ends(b"able") || self.ends(b"ible"),
            b'n' => {
                self.ends(b"ant") || self.ends(b"ement") || self.ends(b"ment") || self.ends(b"ent")
            }
            b'o' => {
                (self.ends(b"ion") && self.j > 0 && matches!(self.b[self.j], b's' | b't'))
                    || self.ends(b"ou")
            }
            b's' => self.ends(b"ism"),
            b't' => self.ends(b"ate") || self.ends(b"iti"),
            b'u' => self.ends(b"ous"),
            b'v' => self.ends(b"ive"),
            b'z' => self.ends(b"ize"),
            _ => false,
        };
        if matched && self.m() > 1 {
            self.k = self.j;
            self.b.truncate(self.k + 1);
        }
    }

    /// Step 5a (terminal -e) and 5b (terminal double l).
    fn step5(&mut self) {
        self.j = self.k;
        if self.b[self.k] == b'e' {
            let a = self.m();
            if a > 1
                || (a == 1 && {
                    // need cvc(k-1) on the stem without the final e
                    self.j = self.k - 1;
                    let c = self.cvc(self.k - 1);
                    self.j = self.k;
                    !c
                })
            {
                self.k -= 1;
                self.b.truncate(self.k + 1);
            }
        }
        self.j = self.k;
        if self.b[self.k] == b'l' && self.double_c(self.k) && self.m() > 1 {
            self.k -= 1;
            self.b.truncate(self.k + 1);
        }
    }
}

/// One-shot convenience wrapper around [`Stemmer::stem`].
///
/// ```
/// use teda_text::porter::stem;
///
/// assert_eq!(stem("museums"), "museum");
/// assert_eq!(stem("universities"), "univers");
/// assert_eq!(stem("relational"), "relat");
/// ```
pub fn stem(word: &str) -> String {
    Stemmer::new().stem(word).to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(pairs: &[(&str, &str)]) {
        let mut s = Stemmer::new();
        for (w, expected) in pairs {
            assert_eq!(&s.stem(w), expected, "stem({w})");
        }
    }

    #[test]
    fn step1a_plurals() {
        check(&[
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
        ]);
    }

    #[test]
    fn step1b_ed_ing() {
        check(&[
            ("feed", "feed"),
            ("agreed", "agre"), // agree → step5a drops final e (m=2 after ee? actual Porter: agreed→agre)
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
        ]);
    }

    #[test]
    fn step1b_cleanup() {
        check(&[
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
        ]);
    }

    #[test]
    fn step1c_y_to_i() {
        check(&[("happy", "happi"), ("sky", "sky")]);
    }

    #[test]
    fn step2_suffix_mapping() {
        check(&[
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
        ]);
    }

    #[test]
    fn step3_suffixes() {
        check(&[
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
        ]);
    }

    #[test]
    fn step4_residues() {
        check(&[
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
        ]);
    }

    #[test]
    fn step5_final_e_and_ll() {
        check(&[
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ]);
    }

    #[test]
    fn domain_words_from_the_paper() {
        check(&[
            ("museums", "museum"),
            ("restaurants", "restaur"),
            ("theatres", "theatr"),
            ("universities", "univers"),
            ("annotations", "annot"),
            ("episodes", "episod"),
        ]);
    }

    #[test]
    fn short_words_untouched() {
        check(&[("is", "is"), ("by", "by"), ("to", "to")]);
    }

    #[test]
    fn non_ascii_passthrough() {
        let mut s = Stemmer::new();
        assert_eq!(s.stem("musée"), "musée");
    }

    #[test]
    fn uppercase_is_lowercased() {
        let mut s = Stemmer::new();
        assert_eq!(s.stem("MUSEUMS"), "museum");
    }

    #[test]
    fn stemming_is_idempotent_on_typical_words() {
        // Not a theorem for Porter in general, but holds for our domain
        // vocabulary; the feature extractor relies on stable ids for
        // already-stemmed lexicon terms.
        let mut s = Stemmer::new();
        for w in [
            "museum",
            "restaur",
            "theatr",
            "hotel",
            "school",
            "mine",
            "actor",
            "singer",
            "scientist",
            "film",
            "episod",
        ] {
            let once = s.stem(w).to_owned();
            let twice = s.stem(&once).to_owned();
            assert_eq!(once, twice, "{w}");
        }
    }

    #[test]
    fn reusable_buffer_no_cross_talk() {
        let mut s = Stemmer::new();
        let a = s.stem("caresses").to_owned();
        let b = s.stem("ponies").to_owned();
        assert_eq!(a, "caress");
        assert_eq!(b, "poni");
    }
}
