//! String interning: maps tokens to dense `u32` feature ids.
//!
//! Classifiers index weight vectors by feature id; the vocabulary is built
//! during training and *frozen* at prediction time — unseen tokens map to
//! `None` and are skipped, which is exactly how a trained §5.2.1 classifier
//! treats out-of-vocabulary words in a fresh snippet.

use std::collections::HashMap;

/// A bidirectional token ↔ id mapping.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    ids: HashMap<String, u32>,
    words: Vec<String>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Returns the id of `token`, interning it if new.
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = u32::try_from(self.words.len()).expect("vocabulary exceeds u32::MAX entries");
        self.ids.insert(token.to_owned(), id);
        self.words.push(token.to_owned());
        id
    }

    /// Looks up `token` without interning.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.ids.get(token).copied()
    }

    /// The token for `id`, if in range.
    pub fn word(&self, id: u32) -> Option<&str> {
        self.words.get(id as usize).map(String::as_str)
    }

    /// Number of interned tokens.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterates `(id, token)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (i as u32, w.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut v = Vocabulary::new();
        let a = v.intern("museum");
        let b = v.intern("restaurant");
        let a2 = v.intern("museum");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a0"), 0);
        assert_eq!(v.intern("a1"), 1);
        assert_eq!(v.intern("a2"), 2);
    }

    #[test]
    fn lookup_without_interning() {
        let mut v = Vocabulary::new();
        v.intern("museum");
        assert_eq!(v.get("museum"), Some(0));
        assert_eq!(v.get("unseen"), None);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn reverse_lookup() {
        let mut v = Vocabulary::new();
        let id = v.intern("hotel");
        assert_eq!(v.word(id), Some("hotel"));
        assert_eq!(v.word(999), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let all: Vec<(u32, &str)> = v.iter().collect();
        assert_eq!(all, vec![(0, "x"), (1, "y")]);
    }

    #[test]
    fn empty_checks() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }
}
