//! Lowercasing word tokenizer.
//!
//! Tokens are maximal runs of alphabetic characters, lowercased. Digits and
//! punctuation are separators; purely numeric runs are dropped, matching
//! the paper's "each token corresponding to a word in the English
//! dictionary". Single-character tokens are dropped as well (they are
//! artifacts of possessives and initials, not dictionary words).

/// Tokenizes `text` into lowercase word tokens.
///
/// Returns an iterator to avoid allocating a vector when the caller only
/// counts or filters. Each token is an owned `String` because lowercasing
/// may change byte length (e.g. `É` → `é` is same length, but `İ` is not).
pub fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    TokenIter {
        chars: text.char_indices().peekable(),
        text,
    }
}

/// Tokenizes into a vector; convenience for tests and one-shot callers.
///
/// ```
/// use teda_text::tokenize::tokenize_vec;
///
/// assert_eq!(
///     tokenize_vec("Melisse, Santa Monica (2013)"),
///     vec!["melisse", "santa", "monica"]
/// );
/// ```
pub fn tokenize_vec(text: &str) -> Vec<String> {
    tokenize(text).collect()
}

struct TokenIter<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl<'a> Iterator for TokenIter<'a> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        loop {
            // skip non-alphabetic
            let start = loop {
                match self.chars.peek() {
                    Some(&(i, c)) if c.is_alphabetic() => break i,
                    Some(_) => {
                        self.chars.next();
                    }
                    None => return None,
                }
            };
            // consume the alphabetic run
            let mut end = start;
            while let Some(&(i, c)) = self.chars.peek() {
                if c.is_alphabetic() {
                    end = i + c.len_utf8();
                    self.chars.next();
                } else {
                    break;
                }
            }
            let raw = &self.text[start..end];
            // single-character tokens are dropped (possessive 's', initials)
            if raw.chars().count() >= 2 {
                return Some(raw.to_lowercase());
            }
            // else continue scanning for the next token
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        assert_eq!(
            tokenize_vec("Melisse is a restaurant in Santa Monica"),
            vec!["melisse", "is", "restaurant", "in", "santa", "monica"]
        );
    }

    #[test]
    fn punctuation_and_digits_split() {
        assert_eq!(
            tokenize_vec("Top-10 museums, 2013 edition!"),
            vec!["top", "museums", "edition"]
        );
    }

    #[test]
    fn possessives_drop_single_letters() {
        assert_eq!(
            tokenize_vec("Simpson's episodes"),
            vec!["simpson", "episodes"]
        );
    }

    #[test]
    fn unicode_letters_kept() {
        assert_eq!(
            tokenize_vec("Musée du Louvre"),
            vec!["musée", "du", "louvre"]
        );
    }

    #[test]
    fn empty_and_nonword_input() {
        assert!(tokenize_vec("").is_empty());
        assert!(tokenize_vec("12345 --- !!!").is_empty());
        assert!(tokenize_vec("a b c").is_empty()); // all single letters
    }

    #[test]
    fn lowercasing_applied() {
        assert_eq!(tokenize_vec("LOUVRE Museum"), vec!["louvre", "museum"]);
    }

    #[test]
    fn urls_shatter_into_words() {
        // Tokenizer is intentionally naive about URLs: pre-processing
        // filters URL cells before tokenization ever sees them.
        assert_eq!(tokenize_vec("www.louvre.fr"), vec!["www", "louvre", "fr"]);
    }
}
