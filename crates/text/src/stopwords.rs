//! Embedded English stopword list.
//!
//! A standard ~150-word function-word list (articles, prepositions,
//! pronouns, auxiliaries, common adverbs), matching what LingPipe and
//! LibSVM-era text pipelines shipped. §5.2.1: "tokens that correspond to
//! English stopwords are removed".

/// The stopword list, lowercase, sorted (binary-searchable).
pub const STOPWORDS: &[&str] = &[
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "couldn",
    "did",
    "didn",
    "do",
    "does",
    "doesn",
    "doing",
    "don",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "hadn",
    "has",
    "hasn",
    "have",
    "haven",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "if",
    "in",
    "into",
    "is",
    "isn",
    "it",
    "its",
    "itself",
    "just",
    "ll",
    "me",
    "more",
    "most",
    "mustn",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "re",
    "same",
    "shan",
    "she",
    "should",
    "shouldn",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "ve",
    "very",
    "was",
    "wasn",
    "we",
    "were",
    "weren",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "won",
    "would",
    "wouldn",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Whether `token` (already lowercased) is an English stopword.
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.binary_search(&token).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduped() {
        // binary_search correctness depends on this invariant.
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn common_stopwords_hit() {
        for w in ["the", "and", "of", "is", "in", "to", "a"] {
            if w.len() >= 2 {
                assert!(is_stopword(w), "{w} should be a stopword");
            }
        }
    }

    #[test]
    fn content_words_miss() {
        for w in ["museum", "restaurant", "louvre", "actor", "mine"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn lookup_is_case_sensitive_by_contract() {
        // Callers must lowercase first (the tokenizer does).
        assert!(!is_stopword("The"));
    }
}
