//! String and set similarity measures.
//!
//! Used by the catalogue-based comparator (the Limaye-like annotator of
//! §6.3): catalogue lookup matches cell content against known entity names
//! exactly and, failing that, by normalized edit distance / token overlap.

use std::collections::HashSet;

use crate::features::SparseVector;

/// Cosine similarity between two sparse vectors; 0.0 when either is empty.
pub fn cosine(a: &SparseVector, b: &SparseVector) -> f64 {
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (a.dot(b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Jaccard similarity of two token sets; 1.0 when both are empty.
pub fn jaccard<'a>(a: impl IntoIterator<Item = &'a str>, b: impl IntoIterator<Item = &'a str>) -> f64 {
    let sa: HashSet<&str> = a.into_iter().collect();
    let sb: HashSet<&str> = b.into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Levenshtein edit distance (insert/delete/substitute, unit costs),
/// computed over `char`s with a rolling single-row DP.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    if a_chars.is_empty() {
        return b_chars.len();
    }
    if b_chars.is_empty() {
        return a_chars.len();
    }
    let mut row: Vec<usize> = (0..=b_chars.len()).collect();
    for (i, &ca) in a_chars.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b_chars.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let val = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = val;
        }
    }
    row[b_chars.len()]
}

/// Normalized edit similarity in `[0, 1]`: `1 − dist / max_len`.
/// 1.0 for two empty strings.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Case- and whitespace-insensitive name equality used for exact catalogue
/// hits: collapses runs of whitespace and compares lowercase.
pub fn names_equal(a: &str, b: &str) -> bool {
    normalize_name(a) == normalize_name(b)
}

/// Normalizes an entity name for comparison: lowercase, collapsed
/// whitespace, stripped leading/trailing punctuation.
pub fn normalize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_was_space = true;
    for c in name
        .trim_matches(|c: char| c.is_ascii_punctuation() || c.is_whitespace())
        .chars()
    {
        if c.is_whitespace() {
            if !last_was_space {
                out.push(' ');
                last_was_space = true;
            }
        } else {
            out.extend(c.to_lowercase());
            last_was_space = false;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basics() {
        let a = SparseVector::from_pairs(vec![(0, 1.0)]);
        let b = SparseVector::from_pairs(vec![(0, 2.0)]);
        let c = SparseVector::from_pairs(vec![(1, 1.0)]);
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&a, &c), 0.0);
        assert_eq!(cosine(&a, &SparseVector::default()), 0.0);
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(["a", "b"], ["b", "c"]), 1.0 / 3.0);
        assert_eq!(jaccard(["a"], ["a"]), 1.0);
        assert_eq!(jaccard([], []), 1.0);
        assert_eq!(jaccard(["a"], []), 0.0);
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("melisse", "melise"), 1);
    }

    #[test]
    fn levenshtein_unicode() {
        assert_eq!(levenshtein("musée", "musee"), 1);
    }

    #[test]
    fn edit_similarity_range() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
        let s = edit_similarity("Melisse", "Mélisse");
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn name_normalization() {
        assert!(names_equal("  Musée du   Louvre ", "musée du louvre"));
        assert!(names_equal("Melisse.", "melisse"));
        assert!(!names_equal("Melisse", "Melissa"));
        assert_eq!(normalize_name("THE  LOUVRE"), "the louvre");
    }
}
