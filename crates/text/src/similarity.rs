//! String and set similarity measures.
//!
//! Used by the catalogue-based comparator (the Limaye-like annotator of
//! §6.3): catalogue lookup matches cell content against known entity names
//! exactly and, failing that, by normalized edit distance / token overlap.

use std::borrow::Cow;
use std::collections::HashSet;

use crate::features::SparseVector;

/// Cosine similarity between two sparse vectors; 0.0 when either is empty.
pub fn cosine(a: &SparseVector, b: &SparseVector) -> f64 {
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (a.dot(b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Jaccard similarity of two token sets; 1.0 when both are empty.
pub fn jaccard<'a>(
    a: impl IntoIterator<Item = &'a str>,
    b: impl IntoIterator<Item = &'a str>,
) -> f64 {
    let sa: HashSet<&str> = a.into_iter().collect();
    let sb: HashSet<&str> = b.into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
///
/// Hot-path friendly: a shared prefix/suffix never contributes edits, so
/// it is trimmed before the DP (catalogue lookups compare near-identical
/// names constantly — "Melisse" vs "Melise" runs the DP over 2×1 cells
/// instead of 7×6). ASCII inputs run over the raw byte slices with zero
/// allocation; anything else falls back to a `char` vector so multi-byte
/// characters still count as single edits.
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    if a.is_ascii() && b.is_ascii() {
        return levenshtein_units(a.as_bytes(), b.as_bytes());
    }
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    levenshtein_units(&a_chars, &b_chars)
}

/// The trimmed single-row DP over any comparable unit slice.
fn levenshtein_units<T: PartialEq + Copy>(mut a: &[T], mut b: &[T]) -> usize {
    // Trim the common prefix and suffix: edits can always be aligned to
    // leave equal flanks untouched.
    while let (Some(x), Some(y)) = (a.first(), b.first()) {
        if x != y {
            break;
        }
        a = &a[1..];
        b = &b[1..];
    }
    while let (Some(x), Some(y)) = (a.last(), b.last()) {
        if x != y {
            break;
        }
        a = &a[..a.len() - 1];
        b = &b[..b.len() - 1];
    }
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let val = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = val;
        }
    }
    row[b.len()]
}

/// Normalized edit similarity in `[0, 1]`: `1 − dist / max_len`.
/// 1.0 for two empty strings.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Case- and whitespace-insensitive name equality used for exact catalogue
/// hits: collapses runs of whitespace and compares lowercase.
pub fn names_equal(a: &str, b: &str) -> bool {
    normalize_name(a) == normalize_name(b)
}

/// The ASCII bytes [`normalize_name`]'s `char::is_whitespace` treats as
/// whitespace: space plus the 0x09–0x0D control range (tab, LF, VT, FF,
/// CR). Must match `char::is_whitespace` over ASCII exactly, or the
/// fast path diverges from the allocating normalizer.
fn is_normalizable_ws(b: u8) -> bool {
    b == b' ' || (0x09..=0x0d).contains(&b)
}

/// Whether `name` is already in normalized form, so
/// [`normalize_name_cow`] can skip the allocation. Conservative: only
/// ASCII inputs qualify for the fast answer.
fn is_normalized_name(name: &str) -> bool {
    if !name.is_ascii() {
        return false;
    }
    let bytes = name.as_bytes();
    if let (Some(&first), Some(&last)) = (bytes.first(), bytes.last()) {
        if first.is_ascii_punctuation()
            || is_normalizable_ws(first)
            || last.is_ascii_punctuation()
            || is_normalizable_ws(last)
        {
            return false;
        }
    }
    let mut prev_space = false;
    for &b in bytes {
        if b.is_ascii_uppercase() {
            return false;
        }
        if is_normalizable_ws(b) {
            if b != b' ' || prev_space {
                return false;
            }
            prev_space = true;
        } else {
            prev_space = false;
        }
    }
    true
}

/// [`normalize_name`] without the allocation when `name` is already
/// normalized — the common case on lookup paths that receive catalogue
/// keys or pre-cleaned cell content.
pub fn normalize_name_cow(name: &str) -> Cow<'_, str> {
    if is_normalized_name(name) {
        Cow::Borrowed(name)
    } else {
        Cow::Owned(normalize_name(name))
    }
}

/// Normalizes an entity name for comparison: lowercase, collapsed
/// whitespace, stripped leading/trailing punctuation.
pub fn normalize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_was_space = true;
    for c in name
        .trim_matches(|c: char| c.is_ascii_punctuation() || c.is_whitespace())
        .chars()
    {
        if c.is_whitespace() {
            if !last_was_space {
                out.push(' ');
                last_was_space = true;
            }
        } else {
            out.extend(c.to_lowercase());
            last_was_space = false;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basics() {
        let a = SparseVector::from_pairs(vec![(0, 1.0)]);
        let b = SparseVector::from_pairs(vec![(0, 2.0)]);
        let c = SparseVector::from_pairs(vec![(1, 1.0)]);
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&a, &c), 0.0);
        assert_eq!(cosine(&a, &SparseVector::default()), 0.0);
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(["a", "b"], ["b", "c"]), 1.0 / 3.0);
        assert_eq!(jaccard(["a"], ["a"]), 1.0);
        assert_eq!(jaccard([], []), 1.0);
        assert_eq!(jaccard(["a"], []), 0.0);
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("melisse", "melise"), 1);
    }

    #[test]
    fn levenshtein_unicode() {
        assert_eq!(levenshtein("musée", "musee"), 1);
    }

    #[test]
    fn edit_similarity_range() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
        let s = edit_similarity("Melisse", "Mélisse");
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn name_normalization() {
        assert!(names_equal("  Musée du   Louvre ", "musée du louvre"));
        assert!(names_equal("Melisse.", "melisse"));
        assert!(!names_equal("Melisse", "Melissa"));
        assert_eq!(normalize_name("THE  LOUVRE"), "the louvre");
    }

    #[test]
    fn normalize_cow_borrows_when_already_normal() {
        assert!(matches!(normalize_name_cow("melisse"), Cow::Borrowed(_)));
        assert!(matches!(normalize_name_cow("the louvre"), Cow::Borrowed(_)));
        assert!(matches!(normalize_name_cow(""), Cow::Borrowed(_)));
        // \x0b (vertical tab) is char-whitespace but not ascii-whitespace:
        // the fast path must reject it like the full normalizer collapses it.
        for raw in [
            "Melisse", " melisse", "melisse ", "a  b", "a\tb", "a\x0bb", "\x0ba", "musée", "m.",
        ] {
            let cow = normalize_name_cow(raw);
            assert!(matches!(cow, Cow::Owned(_)), "{raw:?} should re-normalize");
            assert_eq!(cow.as_ref(), normalize_name(raw), "{raw:?}");
        }
        // fast path agrees with the full normalizer on already-normal input
        for ok in ["melisse", "the louvre", "a b c", "x"] {
            assert_eq!(normalize_name_cow(ok).as_ref(), normalize_name(ok));
        }
    }

    #[test]
    fn levenshtein_trimmed_paths_agree_with_dp() {
        // prefix/suffix trims and ASCII byte path must not change results
        let cases = [
            ("prefix_kitten_suffix", "prefix_sitting_suffix", 3),
            ("aaaa", "aaaa", 0),
            ("aaaab", "aaaac", 1),
            ("baaaa", "caaaa", 1),
            ("abcdef", "abXdef", 1),
            ("", "", 0),
            ("x", "", 1),
        ];
        for (a, b, want) in cases {
            assert_eq!(levenshtein(a, b), want, "{a} vs {b}");
            assert_eq!(levenshtein(b, a), want, "symmetry {a} vs {b}");
        }
        // unicode path still counts chars, not bytes, after trimming
        assert_eq!(levenshtein("musée du louvre", "musee du louvre"), 1);
        assert_eq!(levenshtein("ééé", "éxé"), 1);
    }
}
