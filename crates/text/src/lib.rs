//! `teda-text` — the NLP substrate.
//!
//! §5.2.1 of the paper fixes the snippet-processing recipe used by both
//! classifiers:
//!
//! > "the text of the snippet is converted to lower case and tokenized,
//! > each token corresponding to a word in the English dictionary; tokens
//! > that correspond to English stopwords are removed and the remaining are
//! > stemmed with the Porter algorithm. Each token is associated with its
//! > normalized frequency in the snippet, that is obtained by dividing the
//! > number of its occurrences by the length of the snippet."
//!
//! This crate implements that recipe from scratch:
//!
//! * [`mod@tokenize`] — lowercasing word tokenizer;
//! * [`stopwords`] — embedded English stopword list;
//! * [`porter`] — the full Porter (1980) stemmer, steps 1a–5b;
//! * [`vocab`] — string interning to dense feature ids;
//! * [`features`] — sparse normalized-TF feature vectors and the
//!   [`features::FeatureExtractor`] train/predict pipeline;
//! * [`similarity`] — cosine/Jaccard/Levenshtein, used by the catalogue
//!   annotator's fuzzy name matching.

pub mod features;
pub mod porter;
pub mod similarity;
pub mod stopwords;
pub mod tokenize;
pub mod vocab;

pub use features::{FeatureExtractor, SparseVector};
pub use porter::Stemmer;
pub use tokenize::tokenize;
pub use vocab::Vocabulary;

/// Tokenize, stop-filter and stem `text` in one call: the §5.2.1 recipe up
/// to (but excluding) feature weighting. Allocates a fresh stemmer; hot
/// paths should hold a [`Stemmer`] and call [`preprocess_with`].
pub fn preprocess(text: &str) -> Vec<String> {
    let mut stemmer = Stemmer::new();
    preprocess_with(&mut stemmer, text)
}

/// [`preprocess`] with a caller-provided (reusable) stemmer.
pub fn preprocess_with(stemmer: &mut Stemmer, text: &str) -> Vec<String> {
    tokenize(text)
        .filter(|t| !stopwords::is_stopword(t))
        .map(|t| stemmer.stem(&t).to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preprocess_applies_full_recipe() {
        // "the" is a stopword; "museums" stems to "museum";
        // "Visiting" lowercases and stems to "visit".
        let toks = preprocess("Visiting the museums");
        assert_eq!(toks, vec!["visit", "museum"]);
    }

    #[test]
    fn preprocess_empty() {
        assert!(preprocess("").is_empty());
        assert!(preprocess("the and of").is_empty());
    }
}
