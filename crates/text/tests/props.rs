//! Property tests for the text substrate.

use proptest::prelude::*;

use teda_text::porter::stem;
use teda_text::similarity::{edit_similarity, levenshtein};
use teda_text::tokenize::tokenize_vec;

proptest! {
    /// Tokens are lowercase alphabetic runs of length ≥ 2.
    #[test]
    fn tokens_are_lowercase_words(s in "\\PC{0,200}") {
        for tok in tokenize_vec(&s) {
            prop_assert!(tok.chars().count() >= 2, "{tok}");
            prop_assert!(tok.chars().all(char::is_alphabetic), "{tok}");
            prop_assert_eq!(&tok.to_lowercase(), &tok);
        }
    }

    /// Stemming an ASCII word never yields the empty string and never
    /// grows the word.
    #[test]
    fn stem_shrinks_ascii_words(w in "[a-z]{1,24}") {
        let out = stem(&w);
        prop_assert!(!out.is_empty());
        prop_assert!(out.len() <= w.len(), "{w} -> {out}");
        prop_assert!(out.is_ascii());
    }

    /// Stemming is stable across calls (a pure function).
    #[test]
    fn stem_is_pure(w in "[a-z]{1,24}") {
        prop_assert_eq!(stem(&w), stem(&w));
    }

    /// Levenshtein is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_is_a_metric(
        a in "[a-z]{0,12}",
        b in "[a-z]{0,12}",
        c in "[a-z]{0,12}"
    ) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(
            levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c)
        );
    }

    /// Edit similarity stays in [0, 1].
    #[test]
    fn edit_similarity_bounded(a in "\\PC{0,20}", b in "\\PC{0,20}") {
        let s = edit_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s), "{s}");
    }
}
