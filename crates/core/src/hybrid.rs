//! The hybrid annotator: catalogue first, Web for the rest.
//!
//! §6.4: "we may use Limaye to annotate entities that belong to a
//! pre-compiled catalogue, and resort to the search engine only to
//! annotate previously unseen entities. Since in general we expect a table
//! to have a combination of known and unknown entities, this should bring
//! down the running time of the annotation." The paper leaves this as
//! future work; it is implemented here and measured by the efficiency
//! experiment.

use std::borrow::Cow;

use teda_kb::Catalogue;
use teda_tabular::{infer::infer_column_types, ColumnType, Table};

use crate::annotate::annotate_cells;
use crate::catalogue_annotator::catalogue_annotate;
use crate::pipeline::{Annotator, TableAnnotations};
use crate::postprocess::eliminate_spurious;
use crate::preprocess::preprocess;

/// Cost accounting for a hybrid run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// Cells answered by catalogue lookup (no search query spent).
    pub catalogue_hits: usize,
    /// Cells that still went to the search engine.
    pub web_cells: usize,
}

/// Annotates `table` with the catalogue-first strategy, using the
/// annotator's engine only for cells the catalogue cannot resolve.
pub fn annotate_hybrid(
    annotator: &Annotator,
    table: &Table,
    catalogue: &Catalogue,
) -> (TableAnnotations, HybridStats) {
    let table: Cow<'_, Table> = if table.column_types().contains(&ColumnType::Unknown) {
        let mut owned = table.clone();
        infer_column_types(&mut owned);
        Cow::Owned(owned)
    } else {
        Cow::Borrowed(table)
    };
    let table = table.as_ref();
    let config = annotator.config.clone();

    let pre = preprocess(table, &config);

    // Catalogue pass: free annotations for known entities.
    let known = catalogue_annotate(table, &pre.candidates, catalogue, &config.targets);
    let known_cells: std::collections::HashSet<_> = known.iter().map(|a| a.cell).collect();

    // Web pass only for the remainder.
    let remaining: Vec<_> = pre
        .candidates
        .iter()
        .copied()
        .filter(|c| !known_cells.contains(c))
        .collect();
    let spatial =
        crate::pipeline::spatial_context_for(table, annotator.geocoder.as_deref(), None, &config);
    let mut annotations = annotate_cells(
        table,
        &remaining,
        annotator.engine.as_ref(),
        &annotator.classifier,
        spatial.as_ref(),
        &config,
    );

    let stats = HybridStats {
        catalogue_hits: known.len(),
        web_cells: remaining.len(),
    };

    annotations.extend(known);
    let cells = if config.use_postprocessing {
        eliminate_spurious(table, annotations)
    } else {
        annotations
    };

    (
        TableAnnotations {
            cells,
            skipped_cells: pre.skipped.len(),
            queried_cells: stats.web_cells,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use teda_kb::{EntityId, EntityType};
    use teda_websim::{SearchEngine, SearchResult};

    use crate::config::AnnotatorConfig;
    use crate::model::{AnyModel, SnippetClassifier, TypeLabels};
    use teda_classifier::naive_bayes::NaiveBayesConfig;
    use teda_classifier::{Dataset, NaiveBayes};
    use teda_text::FeatureExtractor;

    /// Counts queries; answers everything restaurant-flavoured.
    struct Counting(std::sync::atomic::AtomicUsize);

    impl SearchEngine for Counting {
        fn search(&self, _q: &str, k: usize) -> Vec<SearchResult> {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            (0..k)
                .map(|i| SearchResult {
                    url: format!("u{i}"),
                    title: "t".into(),
                    snippet: "menu cuisine dining chef".into(),
                })
                .collect()
        }
    }

    fn classifier() -> SnippetClassifier {
        let mut fx = FeatureExtractor::new();
        let rest = fx.fit_transform("menu cuisine dining chef");
        let other = fx.fit_transform("random generic words");
        let mut data = Dataset::new(2, fx.dim());
        for _ in 0..5 {
            data.push(rest.clone(), 0);
            data.push(other.clone(), 1);
        }
        SnippetClassifier::new(
            fx,
            AnyModel::Bayes(NaiveBayes::train(&data, NaiveBayesConfig::default())),
            TypeLabels::with_other(vec![EntityType::Restaurant]),
        )
    }

    #[test]
    fn catalogue_hits_skip_the_engine() {
        let engine = Arc::new(Counting(std::sync::atomic::AtomicUsize::new(0)));
        let annotator = Annotator::new(
            engine.clone(),
            classifier(),
            AnnotatorConfig {
                targets: vec![EntityType::Restaurant],
                ..AnnotatorConfig::default()
            },
        );
        let mut catalogue = Catalogue::default();
        catalogue.insert("Melisse", EntityId(0), EntityType::Restaurant);

        let table = Table::builder(1)
            .row(vec!["Melisse"]) // known → catalogue
            .unwrap()
            .row(vec!["Chez Nouveau"]) // unknown → web
            .unwrap()
            .build()
            .unwrap();

        let (result, stats) = annotate_hybrid(&annotator, &table, &catalogue);
        assert_eq!(stats.catalogue_hits, 1);
        assert_eq!(stats.web_cells, 1);
        assert_eq!(
            engine.0.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "exactly one web query"
        );
        // both cells end up annotated
        assert_eq!(result.cells.len(), 2);
        assert!(result
            .cells
            .iter()
            .all(|a| a.etype == EntityType::Restaurant));
    }

    #[test]
    fn empty_catalogue_degenerates_to_pure_web() {
        let engine = Arc::new(Counting(std::sync::atomic::AtomicUsize::new(0)));
        let annotator = Annotator::new(
            engine.clone(),
            classifier(),
            AnnotatorConfig {
                targets: vec![EntityType::Restaurant],
                ..AnnotatorConfig::default()
            },
        );
        let table = Table::builder(1)
            .row(vec!["Melisse"])
            .unwrap()
            .build()
            .unwrap();
        let (_, stats) = annotate_hybrid(&annotator, &table, &Catalogue::default());
        assert_eq!(stats.catalogue_hits, 0);
        assert_eq!(stats.web_cells, 1);
    }
}
