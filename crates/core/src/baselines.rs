//! The TIN and TIS baselines (§6.2).
//!
//! * **TIN (TypeInName)** "annotates a cell T(i,j) with type t, and sets
//!   the score S_ij to 1.0 only if T(i,j) contains the name of type t
//!   (e.g. 'restaurant')".
//! * **TIS (TypeInSnippet)** "annotates a cell T(i,j) with type t if the
//!   majority of the snippets retrieved by querying Bing contains the name
//!   of type t. The score S_ij is set as in Equation 1."
//!
//! Both run over the same pre-processed candidate cells as the main
//! algorithm, so the comparison isolates the annotation policy.

use teda_kb::names::name_contains_word;
use teda_kb::EntityType;
use teda_tabular::{CellId, Table};
use teda_websim::SearchEngine;

use crate::annotate::CellAnnotation;
use crate::config::AnnotatorConfig;

/// The TIN baseline.
pub fn tin_annotate(
    table: &Table,
    candidates: &[CellId],
    targets: &[EntityType],
) -> Vec<CellAnnotation> {
    let mut out = Vec::new();
    for &cell in candidates {
        let content = table.cell_at(cell);
        // first matching target wins (targets are disjoint words)
        if let Some(&etype) = targets
            .iter()
            .find(|t| name_contains_word(content, t.type_word()))
        {
            out.push(CellAnnotation {
                cell,
                etype,
                score: 1.0,
                votes: 0,
            });
        }
    }
    out
}

/// The TIS baseline.
pub fn tis_annotate<E: SearchEngine + ?Sized>(
    table: &Table,
    candidates: &[CellId],
    engine: &E,
    targets: &[EntityType],
    config: &AnnotatorConfig,
) -> Vec<CellAnnotation> {
    let mut out = Vec::new();
    for &cell in candidates {
        let content = table.cell_at(cell);
        if content.trim().is_empty() {
            continue;
        }
        let results = engine.search(content, config.top_k);
        if results.is_empty() {
            continue;
        }
        // votes per type: snippets containing the literal type word
        let mut best: Option<(EntityType, usize)> = None;
        for &etype in targets {
            let votes = results
                .iter()
                .filter(|r| name_contains_word(&r.snippet, etype.type_word()))
                .count();
            if best.is_none_or(|(_, b)| votes > b) {
                best = Some((etype, votes));
            }
        }
        if let Some((etype, votes)) = best {
            if votes > config.majority_threshold() {
                out.push(CellAnnotation {
                    cell,
                    etype,
                    score: votes as f64 / config.top_k as f64,
                    votes,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use teda_websim::SearchResult;

    struct Fixed(Vec<&'static str>);

    impl SearchEngine for Fixed {
        fn search(&self, _query: &str, k: usize) -> Vec<SearchResult> {
            self.0
                .iter()
                .take(k)
                .map(|s| SearchResult {
                    url: "u".into(),
                    title: "t".into(),
                    snippet: (*s).to_owned(),
                })
                .collect()
        }
    }

    fn table() -> Table {
        Table::builder(1)
            .row(vec!["Louvre Museum"])
            .unwrap()
            .row(vec!["Melisse"])
            .unwrap()
            .row(vec!["Riverside High School"])
            .unwrap()
            .build()
            .unwrap()
    }

    fn config() -> AnnotatorConfig {
        AnnotatorConfig::default()
    }

    #[test]
    fn tin_annotates_only_type_word_names() {
        let t = table();
        let candidates: Vec<CellId> = t.cell_ids().collect();
        let anns = tin_annotate(
            &t,
            &candidates,
            &[
                EntityType::Museum,
                EntityType::School,
                EntityType::Restaurant,
            ],
        );
        assert_eq!(anns.len(), 2);
        assert_eq!(anns[0].etype, EntityType::Museum);
        assert_eq!(anns[0].score, 1.0);
        assert_eq!(anns[1].etype, EntityType::School);
        // "Melisse" has no type word → not annotated
        assert!(!anns.iter().any(|a| a.cell == CellId::new(1, 0)));
    }

    #[test]
    fn tin_is_token_level_not_substring() {
        let t = Table::builder(1)
            .row(vec!["Museumgoers Society"])
            .unwrap()
            .build()
            .unwrap();
        let anns = tin_annotate(&t, &[CellId::new(0, 0)], &[EntityType::Museum]);
        assert!(anns.is_empty());
    }

    #[test]
    fn tis_needs_a_majority() {
        let t = table();
        // 6 of 10 snippets contain "museum" → annotate with 0.6
        let engine = Fixed(vec![
            "a museum in town",
            "the museum opens",
            "museum hours",
            "visit the museum",
            "museum tickets",
            "great museum",
            "nothing here",
            "random words",
            "more words",
            "unrelated",
        ]);
        let anns = tis_annotate(
            &t,
            &[CellId::new(0, 0)],
            &engine,
            &[EntityType::Museum],
            &config(),
        );
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].votes, 6);
        assert!((anns[0].score - 0.6).abs() < 1e-12);
    }

    #[test]
    fn tis_below_majority_abstains() {
        let t = table();
        let engine = Fixed(vec![
            "a museum in town",
            "the museum opens",
            "museum hours",
            "visit the museum",
            "museum tickets",
            "nothing",
            "random",
            "words",
            "more",
            "unrelated",
        ]);
        let anns = tis_annotate(
            &t,
            &[CellId::new(0, 0)],
            &engine,
            &[EntityType::Museum],
            &config(),
        );
        assert!(anns.is_empty(), "5/10 is not a majority");
    }

    #[test]
    fn tis_empty_results_abstain() {
        let t = table();
        let engine = Fixed(vec![]);
        let anns = tis_annotate(
            &t,
            &[CellId::new(0, 0)],
            &engine,
            &[EntityType::Museum],
            &config(),
        );
        assert!(anns.is_empty());
    }
}
