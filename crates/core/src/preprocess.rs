//! Pre-processing (§5.1): rule out cells that cannot contain entity names.
//!
//! "The content of some cells may feature syntactic regularities that can
//! be used to determine that they do not contain names of entities without
//! querying the search engine":
//!
//! * pattern-shaped values — phone numbers, URLs, email addresses, numeric
//!   values, geographic coordinates (and dates/addresses, which GFT types
//!   usually catch anyway);
//! * long values — verbose descriptions;
//! * cells in columns typed `Location`, `Date` or `Number` by GFT.
//!
//! Conversely, "if the algorithm is looking for phone numbers or URLs, it
//! can quickly find them without resorting to a web search engine" —
//! [`find_pattern_cells`] provides that direct path.

use teda_tabular::detect::{detect, word_count, ValueKind};
use teda_tabular::{CellId, ColumnType, Table};

use crate::config::AnnotatorConfig;

/// Why a cell was ruled out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The cell sits in a GFT `Location`/`Date`/`Number` column.
    ColumnType(ColumnType),
    /// The cell value matches a syntactic pattern.
    Pattern(ValueKind),
    /// The cell value is a verbose description.
    TooLong {
        /// Observed word count.
        words: usize,
    },
    /// The cell is empty.
    Empty,
}

/// The outcome of pre-processing one table.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Cells that survive to the annotation step, row-major order.
    pub candidates: Vec<CellId>,
    /// Ruled-out cells with reasons (for reports and tests).
    pub skipped: Vec<(CellId, SkipReason)>,
}

impl Preprocessed {
    /// Fraction of cells ruled out — the pre-processing saving the paper
    /// motivates ("querying a Web search engine is a costly operation").
    pub fn skip_fraction(&self) -> f64 {
        let total = self.candidates.len() + self.skipped.len();
        if total == 0 {
            0.0
        } else {
            self.skipped.len() as f64 / total as f64
        }
    }
}

/// Runs §5.1 over `table`.
pub fn preprocess(table: &Table, config: &AnnotatorConfig) -> Preprocessed {
    let mut candidates = Vec::new();
    let mut skipped = Vec::new();

    for id in table.cell_ids() {
        let ctype = table.column_type(id.col);
        if ctype.excludes_entity_names() {
            skipped.push((id, SkipReason::ColumnType(ctype)));
            continue;
        }
        let value = table.cell_at(id);
        match detect(value) {
            ValueKind::Empty => skipped.push((id, SkipReason::Empty)),
            ValueKind::Text => {
                let words = word_count(value);
                if words > config.long_value_words {
                    skipped.push((id, SkipReason::TooLong { words }));
                } else {
                    candidates.push(id);
                }
            }
            kind => skipped.push((id, SkipReason::Pattern(kind))),
        }
    }
    Preprocessed {
        candidates,
        skipped,
    }
}

/// The direct path of §5.1: cells whose value matches `kind`, found
/// without any search-engine query (used when the target "type" is itself
/// a syntactic pattern, e.g. phone numbers or URLs).
pub fn find_pattern_cells(table: &Table, kind: ValueKind) -> Vec<CellId> {
    table
        .cell_ids()
        .filter(|&id| detect(table.cell_at(id)) == kind)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use teda_tabular::Table;

    fn config() -> AnnotatorConfig {
        AnnotatorConfig::default()
    }

    fn poi_table() -> Table {
        Table::builder(5)
            .headers(vec!["Name", "Address", "Phone", "Site", "Rating"])
            .unwrap()
            .column_types(vec![
                ColumnType::Text,
                ColumnType::Location,
                ColumnType::Text,
                ColumnType::Text,
                ColumnType::Number,
            ])
            .unwrap()
            .row(vec![
                "Melisse",
                "1104 Wilshire Blvd",
                "+1 (310) 395-0881",
                "www.melisse.example.com",
                "4.7",
            ])
            .unwrap()
            .row(vec![
                "The Silent Lantern",
                "12 Main St",
                "310-555-0123",
                "www.lantern.example.com",
                "4.1",
            ])
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn only_name_cells_survive() {
        let t = poi_table();
        let p = preprocess(&t, &config());
        assert_eq!(
            p.candidates,
            vec![CellId::new(0, 0), CellId::new(1, 0)],
            "{:?}",
            p.candidates
        );
    }

    #[test]
    fn skip_reasons_are_recorded() {
        let t = poi_table();
        let p = preprocess(&t, &config());
        let reason_of = |cell: CellId| {
            p.skipped
                .iter()
                .find(|(c, _)| *c == cell)
                .map(|(_, r)| *r)
                .unwrap()
        };
        assert_eq!(
            reason_of(CellId::new(0, 1)),
            SkipReason::ColumnType(ColumnType::Location)
        );
        assert_eq!(
            reason_of(CellId::new(0, 2)),
            SkipReason::Pattern(ValueKind::Phone)
        );
        assert_eq!(
            reason_of(CellId::new(0, 3)),
            SkipReason::Pattern(ValueKind::Url)
        );
        assert_eq!(
            reason_of(CellId::new(0, 4)),
            SkipReason::ColumnType(ColumnType::Number)
        );
    }

    #[test]
    fn long_values_are_ruled_out() {
        let t = Table::builder(1)
            .row(vec![
                "a verbose description with clearly more than ten different words in this cell",
            ])
            .unwrap()
            .row(vec!["Short Name"])
            .unwrap()
            .build()
            .unwrap();
        let p = preprocess(&t, &config());
        assert_eq!(p.candidates, vec![CellId::new(1, 0)]);
        assert!(matches!(p.skipped[0].1, SkipReason::TooLong { words } if words > 10));
    }

    #[test]
    fn empty_cells_are_ruled_out() {
        let t = Table::builder(1)
            .row(vec![""])
            .unwrap()
            .row(vec!["  "])
            .unwrap()
            .build()
            .unwrap();
        let p = preprocess(&t, &config());
        assert!(p.candidates.is_empty());
        assert_eq!(p.skipped.len(), 2);
        assert!((p.skip_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn untyped_columns_are_not_excluded_wholesale() {
        // Unknown columns (Web tables) must rely on cell-level patterns.
        let t = Table::builder(2)
            .column_types(vec![ColumnType::Unknown, ColumnType::Unknown])
            .unwrap()
            .row(vec!["Louvre Museum", "48.8606, 2.3376"])
            .unwrap()
            .build()
            .unwrap();
        let p = preprocess(&t, &config());
        assert_eq!(p.candidates, vec![CellId::new(0, 0)]);
        assert_eq!(p.skipped[0].1, SkipReason::Pattern(ValueKind::Coordinates));
    }

    #[test]
    fn direct_pattern_lookup() {
        let t = poi_table();
        let phones = find_pattern_cells(&t, ValueKind::Phone);
        assert_eq!(phones, vec![CellId::new(0, 2), CellId::new(1, 2)]);
        let urls = find_pattern_cells(&t, ValueKind::Url);
        assert_eq!(urls.len(), 2);
    }

    #[test]
    fn preprocessing_saves_queries() {
        let t = poi_table();
        let p = preprocess(&t, &config());
        assert!(
            p.skip_fraction() >= 0.7,
            "a 5-column POI table should skip most cells: {}",
            p.skip_fraction()
        );
    }
}
