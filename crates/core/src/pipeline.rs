//! The end-to-end annotator (Figure 5): pre-processing → annotation →
//! post-processing — and the batch engine that runs it at corpus scale.
//!
//! Two drivers share the same pipeline steps:
//!
//! * [`Annotator`] — one table at a time, querying the engine directly;
//!   the faithful single-table reproduction of the paper.
//! * [`BatchAnnotator`] — a corpus at a time: fans tables (or the cells
//!   of one table) out across threads, and memoizes `(query, k)` through
//!   a sharded [`QueryCache`] so duplicate cell contents — pervasive in
//!   real table corpora — are searched and classified once.
//!
//! The corpus-scale entry point is the streaming driver
//! [`BatchAnnotator::annotate_stream`]: a [`TableSource`] is pulled
//! through a bounded in-flight window into an [`AnnotationSink`], so
//! memory is O(window) whatever the corpus size, and sources backed by
//! parsers or live feeds are throttled to the annotation rate
//! (backpressure). The classic `Vec<Table>`-era methods
//! ([`annotate_corpus`](BatchAnnotator::annotate_corpus),
//! [`annotate_corpus_par`](BatchAnnotator::annotate_corpus_par)) are
//! thin shims over it.
//!
//! Determinism is a hard invariant: for the same inputs the parallel
//! and streaming paths produce bit-identical annotations to the
//! sequential ones, at every window size. Cells are independent,
//! inference is `&self` over a frozen vocabulary, the cache is
//! single-flight, and every parallel collect — including the streaming
//! window's reorder buffer — preserves input order (the argument is
//! written out in `crates/core/src/README.md`).
//!
//! Perf knobs: worker count (`RAYON_NUM_THREADS`), in-flight window
//! (`annotate_stream`'s `max_in_flight`), cache shard count
//! ([`BatchAnnotator::with_cache_shards`]), snippets per query
//! (`AnnotatorConfig::top_k`).

use std::borrow::{Borrow, Cow};
use std::sync::Arc;

use rayon::prelude::*;

use teda_geo::{GeocodeCache, GeocodeStats, SimGeocoder};
use teda_kb::EntityType;
use teda_tabular::{infer::infer_column_types, CellId, ColumnType, Table};
use teda_websim::SearchEngine;

use crate::annotate::{annotate_cells, annotate_from_results, build_cell_query, CellAnnotation};
use crate::cache::{CacheConfig, CacheStats, QueryCache};
use crate::config::AnnotatorConfig;
use crate::model::SnippetClassifier;
use crate::postprocess::eliminate_spurious;
use crate::preprocess::preprocess;
use crate::query::{build_spatial_context_cached, SpatialContext};
use crate::stream::{
    default_max_in_flight, AnnotatedTable, AnnotationSink, Collect, SliceSource, StreamSummary,
    TableSource,
};

/// One annotated row: the paper's final output shape ("identifies the rows
/// that contain information on entities of a specific type … and
/// determines the cells that contain the names of those entities").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowAnnotation {
    /// 0-based row index.
    pub row: usize,
    /// The entity type found in the row.
    pub etype: EntityType,
    /// The cell holding the entity name.
    pub name_cell: CellId,
    /// The Eq. 1 score of the winning cell.
    pub score: f64,
}

/// The full annotation result for one table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableAnnotations {
    /// Per-cell annotations (after post-processing, when enabled).
    pub cells: Vec<CellAnnotation>,
    /// Number of cells ruled out by pre-processing.
    pub skipped_cells: usize,
    /// Number of cells submitted to the search engine.
    pub queried_cells: usize,
}

impl TableAnnotations {
    /// The row-level view of the annotations.
    pub fn rows(&self) -> Vec<RowAnnotation> {
        self.cells
            .iter()
            .map(|a| RowAnnotation {
                row: a.cell.row,
                etype: a.etype,
                name_cell: a.cell,
                score: a.score,
            })
            .collect()
    }

    /// The annotations of one type.
    pub fn of_type(&self, etype: EntityType) -> impl Iterator<Item = &CellAnnotation> {
        self.cells.iter().filter(move |a| a.etype == etype)
    }
}

/// The annotator: owns the classifier, borrows the Web through a shared
/// engine handle, and optionally a geocoder for spatial disambiguation.
pub struct Annotator {
    pub(crate) engine: Arc<dyn SearchEngine + Send + Sync>,
    pub(crate) classifier: SnippetClassifier,
    pub(crate) geocoder: Option<Arc<SimGeocoder>>,
    pub(crate) config: AnnotatorConfig,
}

impl Annotator {
    /// Creates an annotator.
    pub fn new(
        engine: Arc<dyn SearchEngine + Send + Sync>,
        classifier: SnippetClassifier,
        config: AnnotatorConfig,
    ) -> Self {
        Annotator {
            engine,
            classifier,
            geocoder: None,
            config,
        }
    }

    /// Attaches a geocoder, enabling `use_disambiguation`.
    pub fn with_geocoder(mut self, geocoder: Arc<SimGeocoder>) -> Self {
        self.geocoder = Some(geocoder);
        self
    }

    /// The current configuration.
    pub fn config(&self) -> &AnnotatorConfig {
        &self.config
    }

    /// Mutable configuration access (benches toggle post-processing and
    /// disambiguation between runs).
    pub fn config_mut(&mut self) -> &mut AnnotatorConfig {
        &mut self.config
    }

    /// Annotates one table end-to-end.
    ///
    /// `&self`: inference is read-only, so one annotator can serve
    /// several tables concurrently (though [`BatchAnnotator`] is the
    /// purpose-built driver for that).
    pub fn annotate_table(&self, table: &Table) -> TableAnnotations {
        let table = prepared_table(table);
        let table = table.as_ref();

        let pre = preprocess(table, &self.config);
        let spatial = spatial_context_for(table, self.geocoder.as_deref(), None, &self.config);

        let annotations = annotate_cells(
            table,
            &pre.candidates,
            self.engine.as_ref(),
            &self.classifier,
            spatial.as_ref(),
            &self.config,
        );

        finish_table(table, annotations, &pre, &self.config)
    }

    /// Splits the annotator back into its parts (used by the hybrid
    /// annotator and benches that retarget the classifier).
    pub fn into_parts(
        self,
    ) -> (
        Arc<dyn SearchEngine + Send + Sync>,
        SnippetClassifier,
        AnnotatorConfig,
    ) {
        (self.engine, self.classifier, self.config)
    }

    /// Upgrades this annotator into a [`BatchAnnotator`] with a fresh
    /// query cache, preserving engine, classifier, geocoder and config.
    pub fn into_batch(self) -> BatchAnnotator {
        let mut batch = BatchAnnotator::new(self.engine, self.classifier, self.config);
        batch.geocoder = self.geocoder;
        batch
    }
}

/// Column inference for untyped Web tables (§6.3 set), shared by every
/// pipeline driver.
fn prepared_table(table: &Table) -> Cow<'_, Table> {
    if table.column_types().contains(&ColumnType::Unknown) {
        let mut owned = table.clone();
        infer_column_types(&mut owned);
        Cow::Owned(owned)
    } else {
        Cow::Borrowed(table)
    }
}

/// Spatial-context construction (§5.2.2), shared by every pipeline
/// driver: only built when disambiguation is on and a geocoder is
/// attached. `geo_memo` (the batch path) deduplicates geocoder calls
/// across the corpus without changing any candidate set.
pub(crate) fn spatial_context_for(
    table: &Table,
    geocoder: Option<&SimGeocoder>,
    geo_memo: Option<&GeocodeCache>,
    config: &AnnotatorConfig,
) -> Option<SpatialContext> {
    if config.use_disambiguation {
        geocoder.map(|g| build_spatial_context_cached(table, g, geo_memo, config))
    } else {
        None
    }
}

/// The pipeline tail shared by every driver: §5.3 post-processing (when
/// enabled) and the result accounting.
fn finish_table(
    table: &Table,
    annotations: Vec<CellAnnotation>,
    pre: &crate::preprocess::Preprocessed,
    config: &AnnotatorConfig,
) -> TableAnnotations {
    let cells = if config.use_postprocessing {
        eliminate_spurious(table, annotations)
    } else {
        annotations
    };
    TableAnnotations {
        cells,
        skipped_cells: pre.skipped.len(),
        queried_cells: pre.candidates.len(),
    }
}

/// The corpus-scale annotation engine: parallel fan-out plus query
/// memoization.
///
/// Shape of the fan-out:
///
/// * [`annotate_corpus_par`](Self::annotate_corpus_par) — one task per
///   table (cells within a table stay sequential); the right choice for
///   many-table workloads, and what the throughput experiment measures.
/// * [`annotate_table_par`](Self::annotate_table_par) — one task per
///   cell; the right choice for a single very wide/long table.
///
/// Nesting the two is deliberately avoided: the thread pool is sized to
/// the machine, and tables are already coarse enough to saturate it.
///
/// All paths — sequential or parallel, cached hit or miss — produce
/// bit-identical [`CellAnnotation`]s for the same inputs and seed.
pub struct BatchAnnotator {
    engine: Arc<dyn SearchEngine + Send + Sync>,
    classifier: SnippetClassifier,
    geocoder: Option<Arc<SimGeocoder>>,
    config: AnnotatorConfig,
    cache: QueryCache,
    /// Distinct-address geocoding memo: across the whole corpus, each
    /// address string hits the geocoder once (§6.4 round-trip cost).
    geo_memo: GeocodeCache,
}

impl BatchAnnotator {
    /// Creates a batch annotator with the default cache sharding.
    pub fn new(
        engine: Arc<dyn SearchEngine + Send + Sync>,
        classifier: SnippetClassifier,
        config: AnnotatorConfig,
    ) -> Self {
        BatchAnnotator {
            engine,
            classifier,
            geocoder: None,
            config,
            cache: QueryCache::default(),
            geo_memo: GeocodeCache::default(),
        }
    }

    /// Attaches a geocoder, enabling `use_disambiguation`.
    pub fn with_geocoder(mut self, geocoder: Arc<SimGeocoder>) -> Self {
        self.geocoder = Some(geocoder);
        self
    }

    /// Replaces the cache with one of `shards` shards (perf knob: more
    /// shards, less lock contention between workers).
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache = QueryCache::new(shards);
        self
    }

    /// Replaces the cache with one built from the full knob set —
    /// capacity bound, TTL, shard count. The service layer uses this to
    /// keep long-running processes memory-bounded; results are identical
    /// to the unbounded cache (evictions only cost an extra search).
    pub fn with_cache_config(mut self, config: CacheConfig) -> Self {
        self.cache = QueryCache::with_config(config);
        self
    }

    /// Bounds the distinct-address geocoding memo to ~`capacity`
    /// addresses (the service-layer companion to
    /// [`with_cache_config`](Self::with_cache_config); the default memo
    /// is unbounded, sized for one corpus run). Flushes only cost extra
    /// geocoder calls — candidates never change.
    pub fn with_geo_memo_capacity(mut self, capacity: usize) -> Self {
        self.geo_memo = GeocodeCache::bounded(16, capacity);
        self
    }

    /// The current configuration.
    pub fn config(&self) -> &AnnotatorConfig {
        &self.config
    }

    /// Mutable configuration access.
    pub fn config_mut(&mut self) -> &mut AnnotatorConfig {
        &mut self.config
    }

    /// The query cache (hit/miss accounting, clearing between runs).
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Cache accounting so far — `hits` is the number of search queries
    /// the memo saved.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The distinct-address geocoding memo (accounting, clearing).
    pub fn geo_memo(&self) -> &GeocodeCache {
        &self.geo_memo
    }

    /// Geocoding-memo accounting so far — `hits` is the number of
    /// geocoder round-trips the memo saved across the corpus.
    pub fn geo_stats(&self) -> GeocodeStats {
        self.geo_memo.stats()
    }

    /// Annotates one cell through the cache.
    fn annotate_cell_cached(
        &self,
        table: &Table,
        cell: CellId,
        spatial: Option<&SpatialContext>,
    ) -> Option<CellAnnotation> {
        let query = build_cell_query(table, cell, spatial);
        if query.trim().is_empty() {
            return None;
        }
        let results = self
            .cache
            .get_or_search(self.engine.as_ref(), &query, self.config.top_k);
        annotate_from_results(&results, cell, &self.classifier, &self.config)
    }

    /// The shared per-table pipeline; `parallel_cells` picks the cell
    /// fan-out.
    fn annotate_table_inner(&self, table: &Table, parallel_cells: bool) -> TableAnnotations {
        let table = prepared_table(table);
        let table = table.as_ref();

        let pre = preprocess(table, &self.config);
        let spatial = spatial_context_for(
            table,
            self.geocoder.as_deref(),
            Some(&self.geo_memo),
            &self.config,
        );

        let annotations: Vec<CellAnnotation> = if parallel_cells {
            let per_cell: Vec<Option<CellAnnotation>> = pre
                .candidates
                .par_iter()
                .map(|&cell| self.annotate_cell_cached(table, cell, spatial.as_ref()))
                .collect();
            per_cell.into_iter().flatten().collect()
        } else {
            pre.candidates
                .iter()
                .filter_map(|&cell| self.annotate_cell_cached(table, cell, spatial.as_ref()))
                .collect()
        };

        finish_table(table, annotations, &pre, &self.config)
    }

    /// Annotates one table, cells sequential, queries memoized.
    pub fn annotate_table(&self, table: &Table) -> TableAnnotations {
        self.annotate_table_inner(table, false)
    }

    /// Annotates one table with the cells fanned out across threads.
    pub fn annotate_table_par(&self, table: &Table) -> TableAnnotations {
        self.annotate_table_inner(table, true)
    }

    /// Streams tables from `source` through the annotator into `sink`
    /// with at most `max_in_flight` tables live at once — the corpus
    /// driver for inputs that should not (or cannot) be materialized as
    /// a `Vec<Table>`.
    ///
    /// Semantics:
    ///
    /// * **Bounded memory.** The driver holds at most `max_in_flight`
    ///   tables' worth of annotation state (queued for a worker, being
    ///   annotated, or parked awaiting an earlier straggler); memory is
    ///   O(window), not O(corpus). The observed high-water mark is
    ///   returned in [`StreamSummary::peak_in_flight`].
    /// * **Order-preserving.** The sink receives results in exactly the
    ///   order the source yielded them, whatever the worker
    ///   interleaving (see `crates/core/src/README.md`).
    /// * **Bit-identical.** Each table's annotations equal a direct
    ///   [`annotate_table`](Self::annotate_table) call — the window size
    ///   and worker count change throughput and footprint, never a
    ///   result.
    /// * **Error isolation.** A source error occupies one stream
    ///   position and reaches the sink as
    ///   [`on_error`](AnnotationSink::on_error); the stream continues.
    ///
    /// `max_in_flight == 1` degrades to a strictly sequential pull →
    /// annotate → deliver loop ([`annotate_corpus`](Self::annotate_corpus)
    /// is exactly that); [`crate::stream::default_max_in_flight`] is the
    /// throughput-oriented default of the parallel shims.
    pub fn annotate_stream<S, K>(
        &self,
        mut source: S,
        sink: &mut K,
        max_in_flight: usize,
    ) -> StreamSummary
    where
        S: TableSource,
        K: AnnotationSink<S::Item>,
    {
        use std::cell::Cell;

        // produce and consume both run on the driver thread, so plain
        // Cell counters observe the true pulled-minus-emitted gap.
        let issued = Cell::new(0usize);
        let emitted = Cell::new(0usize);
        let peak = Cell::new(0usize);
        let annotated = Cell::new(0usize);
        let errors = Cell::new(0usize);

        rayon::par_map_windowed(
            max_in_flight.max(1),
            || {
                let next = source.next_table();
                if next.is_some() {
                    issued.set(issued.get() + 1);
                    peak.set(peak.get().max(issued.get() - emitted.get()));
                }
                next
            },
            |item: &Result<S::Item, crate::stream::SourceError>| {
                item.as_ref()
                    .ok()
                    .map(|table| self.annotate_table(table.borrow()))
            },
            |index, item, result| {
                emitted.set(emitted.get() + 1);
                match (item, result) {
                    (Ok(table), Some(annotations)) => {
                        annotated.set(annotated.get() + 1);
                        sink.on_annotated(AnnotatedTable {
                            index,
                            table,
                            annotations,
                        });
                    }
                    (Err(error), _) => {
                        errors.set(errors.get() + 1);
                        sink.on_error(index, error);
                    }
                    (Ok(_), None) => unreachable!("ok items are always annotated"),
                }
            },
        );

        StreamSummary {
            annotated: annotated.get(),
            errors: errors.get(),
            peak_in_flight: peak.get(),
        }
    }

    /// Annotates a corpus sequentially (the memo still deduplicates
    /// queries across tables). Results are in table order.
    ///
    /// **Migration note.** This is the pre-streaming (`Vec<Table>`-era)
    /// entry point, kept as a thin shim over
    /// [`annotate_stream`](Self::annotate_stream) with a window of 1 —
    /// zero behavior change, bit-identical results. New code that reads
    /// tables incrementally (files, sockets, generators) should call
    /// `annotate_stream` with a [`TableSource`] directly and keep memory
    /// O(window) instead of materializing the corpus.
    pub fn annotate_corpus(&self, tables: &[Table]) -> Vec<TableAnnotations> {
        self.drain_slice(tables, 1)
    }

    /// Annotates a corpus with one worker task per table. Results are in
    /// table order and bit-identical to [`annotate_corpus`](Self::annotate_corpus).
    ///
    /// **Migration note.** Pre-streaming shim over
    /// [`annotate_stream`](Self::annotate_stream) at the default
    /// in-flight window ([`crate::stream::default_max_in_flight`]);
    /// results are unchanged. Prefer `annotate_stream` with a
    /// [`TableSource`] when the corpus does not already live in memory.
    pub fn annotate_corpus_par(&self, tables: &[Table]) -> Vec<TableAnnotations> {
        self.drain_slice(tables, default_max_in_flight())
    }

    /// The shared shim body: stream a slice, collect, unwrap (slice
    /// sources are infallible).
    fn drain_slice(&self, tables: &[Table], max_in_flight: usize) -> Vec<TableAnnotations> {
        let mut sink = Collect::new();
        let summary = self.annotate_stream(SliceSource::new(tables), &mut sink, max_in_flight);
        debug_assert!(summary.peak_in_flight <= max_in_flight.max(1));
        sink.into_annotations()
            .expect("slice sources never yield errors")
    }
}

// Compile-time proof the batch engine is shareable across worker threads.
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<BatchAnnotator>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use teda_classifier::naive_bayes::NaiveBayesConfig;
    use teda_classifier::{Dataset, NaiveBayes};
    use teda_text::FeatureExtractor;
    use teda_websim::SearchResult;

    use crate::model::{AnyModel, TypeLabels};

    /// Engine: restaurant-sounding snippets for queries containing a known
    /// restaurant name, museum vocabulary for the literal word "museum".
    struct Scripted;

    impl SearchEngine for Scripted {
        fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
            let q = query.to_lowercase();
            let snippet: &str = if q.contains("melisse") || q.contains("bayona") {
                "menu cuisine dining chef tasting"
            } else if q.contains("museum") {
                "exhibition gallery collection paintings curated"
            } else {
                return Vec::new();
            };
            (0..k)
                .map(|i| SearchResult {
                    url: format!("http://scripted/{i}"),
                    title: "t".into(),
                    snippet: snippet.to_owned(),
                })
                .collect()
        }
    }

    fn classifier() -> SnippetClassifier {
        let mut fx = FeatureExtractor::new();
        let rest = fx.fit_transform("menu cuisine dining chef tasting");
        let musm = fx.fit_transform("exhibition gallery collection paintings curated");
        let other = fx.fit_transform("random generic website words");
        let mut data = Dataset::new(3, fx.dim());
        for _ in 0..8 {
            data.push(rest.clone(), 0);
            data.push(musm.clone(), 1);
            data.push(other.clone(), 2);
        }
        let nb = NaiveBayes::train(&data, NaiveBayesConfig::default());
        SnippetClassifier::new(
            fx,
            AnyModel::Bayes(nb),
            TypeLabels::with_other(vec![EntityType::Restaurant, EntityType::Museum]),
        )
    }

    fn annotator(postproc: bool) -> Annotator {
        Annotator::new(
            Arc::new(Scripted),
            classifier(),
            AnnotatorConfig {
                targets: vec![EntityType::Restaurant, EntityType::Museum],
                use_postprocessing: postproc,
                ..AnnotatorConfig::default()
            },
        )
    }

    #[test]
    fn end_to_end_restaurant_table() {
        let t = Table::builder(2)
            .column_type(1, ColumnType::Location)
            .row(vec!["Melisse", "1104 Wilshire Blvd"])
            .unwrap()
            .row(vec!["Bayona", "430 Dauphine St"])
            .unwrap()
            .build()
            .unwrap();
        let a = annotator(true);
        let result = a.annotate_table(&t);
        assert_eq!(result.cells.len(), 2);
        assert!(result
            .cells
            .iter()
            .all(|c| c.etype == EntityType::Restaurant));
        let rows = result.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name_cell, CellId::new(0, 0));
        // address column never queried
        assert_eq!(result.queried_cells, 2);
        assert_eq!(result.skipped_cells, 2);
    }

    #[test]
    fn figure8_scenario_fixed_by_postprocessing() {
        // Column 1 repeats "Museum"; its cells classify as museums, but
        // Eq. 2 kills the column. (Names here are *not* searchable in the
        // scripted engine, so column 0 yields nothing and column 1 wins
        // only without post-processing.)
        let t = Table::builder(2)
            .row(vec!["Melisse", "Museum"])
            .unwrap()
            .row(vec!["Bayona", "Museum"])
            .unwrap()
            .build()
            .unwrap();
        let raw = annotator(false);
        let without = raw.annotate_table(&t);
        let museum_hits = without.of_type(EntityType::Museum).count();
        assert_eq!(museum_hits, 2, "repeated Museum cells get misannotated");

        let post = annotator(true);
        let with = post.annotate_table(&t);
        // Restaurant annotations in column 0 survive; the Museum-typed
        // annotations survive too (their own column argmax), but the point
        // is the restaurant column is not suppressed by them.
        assert_eq!(with.of_type(EntityType::Restaurant).count(), 2);
    }

    #[test]
    fn untyped_tables_get_inferred() {
        let t = Table::builder(2)
            .column_types(vec![ColumnType::Unknown, ColumnType::Unknown])
            .unwrap()
            .row(vec!["Melisse", "4.5"])
            .unwrap()
            .row(vec!["Bayona", "4.2"])
            .unwrap()
            .build()
            .unwrap();
        let a = annotator(true);
        let result = a.annotate_table(&t);
        // numeric column inferred → skipped; names annotated
        assert_eq!(result.queried_cells, 2);
        assert_eq!(result.cells.len(), 2);
    }

    #[test]
    fn empty_table_yields_empty_result() {
        let t = Table::builder(2).build().unwrap();
        let a = annotator(true);
        let r = a.annotate_table(&t);
        assert!(r.cells.is_empty());
        assert_eq!(r.queried_cells, 0);
    }

    fn small_corpus() -> Vec<Table> {
        (0..6)
            .map(|i| {
                Table::builder(2)
                    .name(format!("stream_{i}"))
                    .column_type(1, ColumnType::Location)
                    .row(vec!["Melisse", "1104 Wilshire Blvd"])
                    .unwrap()
                    .row(vec![if i % 2 == 0 { "Bayona" } else { "Museum" }, "x"])
                    .unwrap()
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn streaming_matches_the_batch_path_at_every_window() {
        let tables = small_corpus();
        let reference = annotator(true).into_batch().annotate_corpus(&tables);
        for window in [1, 2, 3, 64] {
            let batch = annotator(true).into_batch();
            let mut sink = crate::stream::Collect::new();
            let summary =
                batch.annotate_stream(crate::stream::SliceSource::new(&tables), &mut sink, window);
            assert_eq!(summary.annotated, tables.len());
            assert_eq!(summary.errors, 0);
            assert!(
                summary.peak_in_flight <= window,
                "window {window} held {} tables",
                summary.peak_in_flight
            );
            assert_eq!(
                sink.into_annotations().unwrap(),
                reference,
                "window {window} diverged from the batch path"
            );
        }
    }

    #[test]
    fn mid_stream_errors_occupy_their_position_and_do_not_sink_the_stream() {
        use crate::stream::{IterSource, SourceError};
        let tables = small_corpus();
        let batch = annotator(true).into_batch();
        let reference = batch.annotate_corpus(&tables);

        let items: Vec<Result<Table, SourceError>> = {
            let mut v: Vec<Result<Table, SourceError>> = tables.iter().cloned().map(Ok).collect();
            v.insert(2, Err(SourceError::msg("ragged csv")));
            v
        };
        let mut sink = crate::stream::Collect::new();
        let summary = batch.annotate_stream(IterSource::new(items.into_iter()), &mut sink, 3);
        assert_eq!(summary.annotated, tables.len());
        assert_eq!(summary.errors, 1);
        let results = sink.into_results();
        assert_eq!(results.len(), tables.len() + 1);
        assert_eq!(results[2].as_ref().unwrap_err().message(), "ragged csv");
        for (i, want) in reference.iter().enumerate() {
            let slot = if i < 2 { i } else { i + 1 };
            assert_eq!(results[slot].as_ref().unwrap(), want, "slot {slot}");
        }
    }

    #[test]
    fn corpus_shims_are_bit_identical_to_each_other() {
        let tables = small_corpus();
        let seq = annotator(true).into_batch().annotate_corpus(&tables);
        let par = annotator(true).into_batch().annotate_corpus_par(&tables);
        assert_eq!(seq, par, "shims over the streaming driver diverged");
        assert_eq!(seq.len(), tables.len());
    }
}
