//! The end-to-end annotator (Figure 5): pre-processing → annotation →
//! post-processing.

use std::borrow::Cow;
use std::sync::Arc;

use teda_geo::SimGeocoder;
use teda_kb::EntityType;
use teda_tabular::{infer::infer_column_types, CellId, ColumnType, Table};
use teda_websim::SearchEngine;

use crate::annotate::{annotate_cells, CellAnnotation};
use crate::config::AnnotatorConfig;
use crate::model::SnippetClassifier;
use crate::postprocess::eliminate_spurious;
use crate::preprocess::preprocess;
use crate::query::build_spatial_context;

/// One annotated row: the paper's final output shape ("identifies the rows
/// that contain information on entities of a specific type … and
/// determines the cells that contain the names of those entities").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowAnnotation {
    /// 0-based row index.
    pub row: usize,
    /// The entity type found in the row.
    pub etype: EntityType,
    /// The cell holding the entity name.
    pub name_cell: CellId,
    /// The Eq. 1 score of the winning cell.
    pub score: f64,
}

/// The full annotation result for one table.
#[derive(Debug, Clone, Default)]
pub struct TableAnnotations {
    /// Per-cell annotations (after post-processing, when enabled).
    pub cells: Vec<CellAnnotation>,
    /// Number of cells ruled out by pre-processing.
    pub skipped_cells: usize,
    /// Number of cells submitted to the search engine.
    pub queried_cells: usize,
}

impl TableAnnotations {
    /// The row-level view of the annotations.
    pub fn rows(&self) -> Vec<RowAnnotation> {
        self.cells
            .iter()
            .map(|a| RowAnnotation {
                row: a.cell.row,
                etype: a.etype,
                name_cell: a.cell,
                score: a.score,
            })
            .collect()
    }

    /// The annotations of one type.
    pub fn of_type(&self, etype: EntityType) -> impl Iterator<Item = &CellAnnotation> {
        self.cells.iter().filter(move |a| a.etype == etype)
    }
}

/// The annotator: owns the classifier, borrows the Web through a shared
/// engine handle, and optionally a geocoder for spatial disambiguation.
pub struct Annotator {
    pub(crate) engine: Arc<dyn SearchEngine + Send + Sync>,
    pub(crate) classifier: SnippetClassifier,
    pub(crate) geocoder: Option<Arc<SimGeocoder>>,
    pub(crate) config: AnnotatorConfig,
}

impl Annotator {
    /// Creates an annotator.
    pub fn new(
        engine: Arc<dyn SearchEngine + Send + Sync>,
        classifier: SnippetClassifier,
        config: AnnotatorConfig,
    ) -> Self {
        Annotator {
            engine,
            classifier,
            geocoder: None,
            config,
        }
    }

    /// Attaches a geocoder, enabling `use_disambiguation`.
    pub fn with_geocoder(mut self, geocoder: Arc<SimGeocoder>) -> Self {
        self.geocoder = Some(geocoder);
        self
    }

    /// The current configuration.
    pub fn config(&self) -> &AnnotatorConfig {
        &self.config
    }

    /// Mutable configuration access (benches toggle post-processing and
    /// disambiguation between runs).
    pub fn config_mut(&mut self) -> &mut AnnotatorConfig {
        &mut self.config
    }

    /// Annotates one table end-to-end.
    pub fn annotate_table(&mut self, table: &Table) -> TableAnnotations {
        // Untyped Web tables get their columns inferred first (§6.3 set).
        let table: Cow<'_, Table> = if table
            .column_types().contains(&ColumnType::Unknown)
        {
            let mut owned = table.clone();
            infer_column_types(&mut owned);
            Cow::Owned(owned)
        } else {
            Cow::Borrowed(table)
        };
        let table = table.as_ref();

        let pre = preprocess(table, &self.config);

        let spatial = if self.config.use_disambiguation {
            self.geocoder
                .as_ref()
                .map(|g| build_spatial_context(table, g, &self.config))
        } else {
            None
        };

        let annotations = annotate_cells(
            table,
            &pre.candidates,
            self.engine.as_ref(),
            &mut self.classifier,
            spatial.as_ref(),
            &self.config,
        );

        let cells = if self.config.use_postprocessing {
            eliminate_spurious(table, annotations)
        } else {
            annotations
        };

        TableAnnotations {
            cells,
            skipped_cells: pre.skipped.len(),
            queried_cells: pre.candidates.len(),
        }
    }

    /// Splits the annotator back into its parts (used by the hybrid
    /// annotator and benches that retarget the classifier).
    pub fn into_parts(
        self,
    ) -> (
        Arc<dyn SearchEngine + Send + Sync>,
        SnippetClassifier,
        AnnotatorConfig,
    ) {
        (self.engine, self.classifier, self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teda_classifier::naive_bayes::NaiveBayesConfig;
    use teda_classifier::{Dataset, NaiveBayes};
    use teda_text::FeatureExtractor;
    use teda_websim::SearchResult;

    use crate::model::{AnyModel, TypeLabels};

    /// Engine: restaurant-sounding snippets for queries containing a known
    /// restaurant name, museum vocabulary for the literal word "museum".
    struct Scripted;

    impl SearchEngine for Scripted {
        fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
            let q = query.to_lowercase();
            let snippet: &str = if q.contains("melisse") || q.contains("bayona") {
                "menu cuisine dining chef tasting"
            } else if q.contains("museum") {
                "exhibition gallery collection paintings curated"
            } else {
                return Vec::new();
            };
            (0..k)
                .map(|i| SearchResult {
                    url: format!("http://scripted/{i}"),
                    title: "t".into(),
                    snippet: snippet.to_owned(),
                })
                .collect()
        }
    }

    fn classifier() -> SnippetClassifier {
        let mut fx = FeatureExtractor::new();
        let rest = fx.fit_transform("menu cuisine dining chef tasting");
        let musm = fx.fit_transform("exhibition gallery collection paintings curated");
        let other = fx.fit_transform("random generic website words");
        let mut data = Dataset::new(3, fx.dim());
        for _ in 0..8 {
            data.push(rest.clone(), 0);
            data.push(musm.clone(), 1);
            data.push(other.clone(), 2);
        }
        let nb = NaiveBayes::train(&data, NaiveBayesConfig::default());
        SnippetClassifier::new(
            fx,
            AnyModel::Bayes(nb),
            TypeLabels::with_other(vec![EntityType::Restaurant, EntityType::Museum]),
        )
    }

    fn annotator(postproc: bool) -> Annotator {
        Annotator::new(
            Arc::new(Scripted),
            classifier(),
            AnnotatorConfig {
                targets: vec![EntityType::Restaurant, EntityType::Museum],
                use_postprocessing: postproc,
                ..AnnotatorConfig::default()
            },
        )
    }

    #[test]
    fn end_to_end_restaurant_table() {
        let t = Table::builder(2)
            .column_type(1, ColumnType::Location)
            .row(vec!["Melisse", "1104 Wilshire Blvd"])
            .unwrap()
            .row(vec!["Bayona", "430 Dauphine St"])
            .unwrap()
            .build()
            .unwrap();
        let mut a = annotator(true);
        let result = a.annotate_table(&t);
        assert_eq!(result.cells.len(), 2);
        assert!(result
            .cells
            .iter()
            .all(|c| c.etype == EntityType::Restaurant));
        let rows = result.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name_cell, CellId::new(0, 0));
        // address column never queried
        assert_eq!(result.queried_cells, 2);
        assert_eq!(result.skipped_cells, 2);
    }

    #[test]
    fn figure8_scenario_fixed_by_postprocessing() {
        // Column 1 repeats "Museum"; its cells classify as museums, but
        // Eq. 2 kills the column. (Names here are *not* searchable in the
        // scripted engine, so column 0 yields nothing and column 1 wins
        // only without post-processing.)
        let t = Table::builder(2)
            .row(vec!["Melisse", "Museum"])
            .unwrap()
            .row(vec!["Bayona", "Museum"])
            .unwrap()
            .build()
            .unwrap();
        let mut raw = annotator(false);
        let without = raw.annotate_table(&t);
        let museum_hits = without.of_type(EntityType::Museum).count();
        assert_eq!(museum_hits, 2, "repeated Museum cells get misannotated");

        let mut post = annotator(true);
        let with = post.annotate_table(&t);
        // Restaurant annotations in column 0 survive; the Museum-typed
        // annotations survive too (their own column argmax), but the point
        // is the restaurant column is not suppressed by them.
        assert_eq!(with.of_type(EntityType::Restaurant).count(), 2);
    }

    #[test]
    fn untyped_tables_get_inferred() {
        let t = Table::builder(2)
            .column_types(vec![ColumnType::Unknown, ColumnType::Unknown])
            .unwrap()
            .row(vec!["Melisse", "4.5"])
            .unwrap()
            .row(vec!["Bayona", "4.2"])
            .unwrap()
            .build()
            .unwrap();
        let mut a = annotator(true);
        let result = a.annotate_table(&t);
        // numeric column inferred → skipped; names annotated
        assert_eq!(result.queried_cells, 2);
        assert_eq!(result.cells.len(), 2);
    }

    #[test]
    fn empty_table_yields_empty_result() {
        let t = Table::builder(2).build().unwrap();
        let mut a = annotator(true);
        let r = a.annotate_table(&t);
        assert!(r.cells.is_empty());
        assert_eq!(r.queried_cells, 0);
    }
}
