//! Gold-standard evaluation with the paper's definitions (§6.2):
//!
//! * `C_t` — entities the algorithm correctly annotates with type `t`;
//! * `A_t` — entities for which the algorithm determines an annotation of
//!   type `t`;
//! * `T_t` — all entities of type `t`;
//! * `P = C_t / A_t`, `R = C_t / T_t`, `F = 2PR / (P + R)`.
//!
//! Evaluation is cell-based: a predicted annotation is correct when the
//! gold standard marks the same cell with the same type.

use teda_classifier::Prf;
use teda_kb::EntityType;
use teda_tabular::CellId;

use crate::annotate::CellAnnotation;

/// Raw counts for one type over one or more tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TypeCounts {
    /// Correct annotations (`C_t`).
    pub tp: usize,
    /// Wrong annotations of the type (`A_t − C_t`).
    pub fp: usize,
    /// Gold mentions the algorithm missed (`T_t − C_t`).
    pub fn_: usize,
}

impl TypeCounts {
    /// Accumulates another table's counts.
    pub fn add(&mut self, other: TypeCounts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// The paper's P/R/F.
    pub fn prf(&self) -> Prf {
        Prf::from_counts(self.tp, self.fp, self.fn_)
    }
}

/// Counts one table's outcomes for `etype`. `gold` lists every gold
/// (cell, type) pair of the table; `predicted` is the annotator output.
pub fn count_type(
    gold: &[(CellId, EntityType)],
    predicted: &[CellAnnotation],
    etype: EntityType,
) -> TypeCounts {
    let gold_cells: std::collections::HashSet<CellId> = gold
        .iter()
        .filter(|&&(_, t)| t == etype)
        .map(|&(c, _)| c)
        .collect();
    let predicted_cells: std::collections::HashSet<CellId> = predicted
        .iter()
        .filter(|a| a.etype == etype)
        .map(|a| a.cell)
        .collect();

    let tp = predicted_cells.intersection(&gold_cells).count();
    TypeCounts {
        tp,
        fp: predicted_cells.len() - tp,
        fn_: gold_cells.len() - tp,
    }
}

/// One table's evaluation inputs: its gold `(cell, type)` pairs and the
/// annotator's predictions.
pub type TableResult = (Vec<(CellId, EntityType)>, Vec<CellAnnotation>);

/// Aggregates counts over many `(gold, predicted)` table pairs and
/// returns the PRF for `etype`.
pub fn evaluate_type(results: &[TableResult], etype: EntityType) -> Prf {
    let mut totals = TypeCounts::default();
    for (gold, predicted) in results {
        totals.add(count_type(gold, predicted, etype));
    }
    totals.prf()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(row: usize, col: usize, etype: EntityType) -> CellAnnotation {
        CellAnnotation {
            cell: CellId::new(row, col),
            etype,
            score: 1.0,
            votes: 10,
        }
    }

    #[test]
    fn perfect_annotation() {
        let gold = vec![
            (CellId::new(0, 0), EntityType::Museum),
            (CellId::new(1, 0), EntityType::Museum),
        ];
        let pred = vec![ann(0, 0, EntityType::Museum), ann(1, 0, EntityType::Museum)];
        let c = count_type(&gold, &pred, EntityType::Museum);
        assert_eq!(
            c,
            TypeCounts {
                tp: 2,
                fp: 0,
                fn_: 0
            }
        );
        let prf = c.prf();
        assert_eq!(prf.precision, 1.0);
        assert_eq!(prf.recall, 1.0);
    }

    #[test]
    fn wrong_type_is_both_fp_and_fn() {
        // Gold says museum; we predicted restaurant on the same cell:
        // restaurant gains a false positive, museum a false negative.
        let gold = vec![(CellId::new(0, 0), EntityType::Museum)];
        let pred = vec![ann(0, 0, EntityType::Restaurant)];
        let m = count_type(&gold, &pred, EntityType::Museum);
        assert_eq!(
            m,
            TypeCounts {
                tp: 0,
                fp: 0,
                fn_: 1
            }
        );
        let r = count_type(&gold, &pred, EntityType::Restaurant);
        assert_eq!(
            r,
            TypeCounts {
                tp: 0,
                fp: 1,
                fn_: 0
            }
        );
    }

    #[test]
    fn spurious_annotations_hurt_precision_only() {
        let gold = vec![(CellId::new(0, 0), EntityType::Museum)];
        let pred = vec![
            ann(0, 0, EntityType::Museum),
            ann(5, 1, EntityType::Museum), // spurious
        ];
        let c = count_type(&gold, &pred, EntityType::Museum);
        assert_eq!(
            c,
            TypeCounts {
                tp: 1,
                fp: 1,
                fn_: 0
            }
        );
        let prf = c.prf();
        assert!((prf.precision - 0.5).abs() < 1e-12);
        assert_eq!(prf.recall, 1.0);
    }

    #[test]
    fn aggregation_over_tables() {
        let t1 = (
            vec![(CellId::new(0, 0), EntityType::Hotel)],
            vec![ann(0, 0, EntityType::Hotel)],
        );
        let t2 = (
            vec![(CellId::new(0, 0), EntityType::Hotel)],
            vec![], // missed
        );
        let prf = evaluate_type(&[t1, t2], EntityType::Hotel);
        assert_eq!(prf.precision, 1.0);
        assert!((prf.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_everything_is_zero() {
        let prf = evaluate_type(&[], EntityType::Mine);
        assert_eq!(prf, Prf::default());
    }
}
