//! Human-readable and machine-readable views of annotation results.
//!
//! The paper's application (§1) feeds annotations into an RDF repository
//! behind a faceted browser; downstream users of this library need the
//! same kind of exports: a summary for logs, a per-row listing, and a CSV
//! with the annotations joined back onto the table.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use teda_kb::EntityType;
use teda_tabular::Table;

use crate::pipeline::TableAnnotations;

/// A plain-text summary of one table's annotation run.
pub fn summary(table: &Table, result: &TableAnnotations) -> String {
    let mut by_type: BTreeMap<EntityType, usize> = BTreeMap::new();
    for a in &result.cells {
        *by_type.entry(a.etype).or_insert(0) += 1;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "table {:?}: {} rows x {} cols; {} cells pre-filtered, {} queried, {} annotated",
        table.name(),
        table.n_rows(),
        table.n_cols(),
        result.skipped_cells,
        result.queried_cells,
        result.cells.len(),
    );
    for (etype, n) in &by_type {
        let _ = writeln!(out, "  {etype}: {n}");
    }
    out
}

/// A per-row listing: `row <i>: <type> "<name>" (score)`.
pub fn row_listing(table: &Table, result: &TableAnnotations) -> String {
    let mut out = String::new();
    for row in result.rows() {
        let _ = writeln!(
            out,
            "row {:>4}: {:<20} {:?} (score {:.2})",
            row.row,
            row.etype.to_string(),
            table.cell_at(row.name_cell),
            row.score,
        );
    }
    out
}

/// The annotated table as CSV: the original columns plus two trailing
/// columns, `entity_type` and `annotation_score`, filled on annotated
/// rows. Rows with several annotations repeat the strongest one.
pub fn to_csv(table: &Table, result: &TableAnnotations) -> String {
    // strongest annotation per row
    let mut best: BTreeMap<usize, (&EntityType, f64)> = BTreeMap::new();
    for a in &result.cells {
        let entry = best.entry(a.cell.row).or_insert((&a.etype, a.score));
        if a.score > entry.1 {
            *entry = (&a.etype, a.score);
        }
    }

    let mut augmented = Table::builder(table.n_cols() + 2);
    if let Some(headers) = table.headers() {
        let mut h: Vec<String> = headers.to_vec();
        h.push("entity_type".into());
        h.push("annotation_score".into());
        augmented = augmented.headers(h).expect("width matches");
    }
    for i in 0..table.n_rows() {
        let mut row: Vec<String> = table.row(i).map(str::to_owned).collect();
        match best.get(&i) {
            Some((etype, score)) => {
                row.push(etype.type_word().to_owned());
                row.push(format!("{score:.2}"));
            }
            None => {
                row.push(String::new());
                row.push(String::new());
            }
        }
        augmented.push_row(row).expect("width matches");
    }
    teda_tabular::csv::write_table(&augmented.build().expect("non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::CellAnnotation;
    use teda_tabular::CellId;

    fn fixture() -> (Table, TableAnnotations) {
        let table = Table::builder(2)
            .name("t")
            .headers(vec!["Name", "City"])
            .unwrap()
            .row(vec!["Melisse", "Santa Monica"])
            .unwrap()
            .row(vec!["Nothing", "Nowhere"])
            .unwrap()
            .build()
            .unwrap();
        let result = TableAnnotations {
            cells: vec![CellAnnotation {
                cell: CellId::new(0, 0),
                etype: EntityType::Restaurant,
                score: 0.8,
                votes: 8,
            }],
            skipped_cells: 2,
            queried_cells: 2,
        };
        (table, result)
    }

    #[test]
    fn summary_counts_types() {
        let (t, r) = fixture();
        let s = summary(&t, &r);
        assert!(s.contains("2 rows x 2 cols"));
        assert!(s.contains("Restaurants: 1"));
    }

    #[test]
    fn row_listing_names_the_cell() {
        let (t, r) = fixture();
        let s = row_listing(&t, &r);
        assert!(s.contains("Melisse"));
        assert!(s.contains("0.80"));
    }

    #[test]
    fn csv_round_trips_with_annotation_columns() {
        let (t, r) = fixture();
        let csv = to_csv(&t, &r);
        let back = teda_tabular::csv::parse_table(&csv, "t", true).unwrap();
        assert_eq!(back.n_cols(), 4);
        assert_eq!(back.headers().unwrap()[2], "entity_type");
        assert_eq!(back.cell(0, 2), "restaurant");
        assert_eq!(back.cell(0, 3), "0.80");
        assert_eq!(back.cell(1, 2), "", "unannotated rows stay blank");
    }

    #[test]
    fn strongest_annotation_wins_the_row() {
        let (t, mut r) = fixture();
        r.cells.push(CellAnnotation {
            cell: CellId::new(0, 1),
            etype: EntityType::Museum,
            score: 0.9,
            votes: 9,
        });
        let csv = to_csv(&t, &r);
        let back = teda_tabular::csv::parse_table(&csv, "t", true).unwrap();
        assert_eq!(back.cell(0, 2), "museum");
    }
}
