//! Query memoization for the batch annotation engine.
//!
//! "Querying a Web search engine is a costly operation" (§5) — the
//! paper's pre-processing step exists to cut query volume, and real
//! tables amplify the concern: duplicate cell contents (repeated category
//! words, shared names across tables of a corpus) would re-issue the same
//! query over and over. [`QueryCache`] memoizes `(query, k) → results`
//! behind a sharded lock so concurrent annotation workers share one
//! result set per distinct query.
//!
//! Misses are *single-flight per key*: the first worker to miss a
//! `(query, k)` installs an in-flight marker, releases the shard lock,
//! and searches; workers racing on the *same* key block on that flight
//! (not on the shard), while workers on *different* keys of the same
//! shard proceed immediately. One search per distinct key, identical
//! results for every caller, and the engine's query counter (the
//! paper's daily-allowance concern) stays deterministic — without
//! serializing unrelated queries behind a slow engine call. Shard count
//! remains a perf knob for the map-access critical sections, which are
//! now all short.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use teda_websim::{SearchEngine, SearchResult};

/// Hit/miss accounting of a [`QueryCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache (searches saved).
    pub hits: u64,
    /// Queries that went to the engine.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One memo slot: a finished result, or a search currently in flight.
#[derive(Debug, Clone)]
enum Slot {
    Ready(Arc<[SearchResult]>),
    Pending(Arc<Flight>),
}

/// Rendezvous for workers waiting on another worker's in-flight search.
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

#[derive(Debug, Clone)]
enum FlightState {
    Searching,
    Done(Arc<[SearchResult]>),
    /// The searching worker unwound (engine panic); waiters retry.
    Abandoned,
}

impl Flight {
    fn new() -> Arc<Self> {
        Arc::new(Flight {
            state: Mutex::new(FlightState::Searching),
            done: Condvar::new(),
        })
    }

    fn finish(&self, state: FlightState) {
        *self.state.lock().expect("flight state poisoned") = state;
        self.done.notify_all();
    }

    /// Blocks until the flight resolves; `None` means abandoned (retry).
    fn wait(&self) -> Option<Arc<[SearchResult]>> {
        let mut state = self.state.lock().expect("flight state poisoned");
        loop {
            match &*state {
                FlightState::Searching => {
                    state = self.done.wait(state).expect("flight state poisoned");
                }
                FlightState::Done(results) => return Some(Arc::clone(results)),
                FlightState::Abandoned => return None,
            }
        }
    }
}

/// One shard: query text → per-k slots.
///
/// Keyed by the query string alone so a hit needs no key allocation;
/// `k` rarely takes more than one value per run, so the inner list is a
/// linear scan over one or two entries.
type Shard = HashMap<String, Vec<(usize, Slot)>>;

/// A sharded, thread-safe memo of search-engine responses.
#[derive(Debug)]
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for QueryCache {
    fn default() -> Self {
        QueryCache::new(64)
    }
}

impl QueryCache {
    /// Creates a cache with `shards` lock shards (rounded up to 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        QueryCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Stable FNV-1a shard selection (independent of the process's hash
    /// seed, so shard assignment — and therefore lock interleaving — is
    /// reproducible across runs).
    fn shard_of(&self, query: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in query.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Returns the memoized results for `(query, k)`, consulting `engine`
    /// exactly once per distinct key across all threads: racing callers
    /// of the same key wait for the first caller's flight; distinct keys
    /// never wait on each other's engine calls.
    pub fn get_or_search<E: SearchEngine + ?Sized>(
        &self,
        engine: &E,
        query: &str,
        k: usize,
    ) -> Arc<[SearchResult]> {
        loop {
            let flight = {
                let shard = &self.shards[self.shard_of(query)];
                let mut map = shard.lock().expect("query cache shard poisoned");
                match map
                    .get(query)
                    .and_then(|entries| entries.iter().find(|(ek, _)| *ek == k))
                {
                    Some((_, Slot::Ready(results))) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Arc::clone(results);
                    }
                    Some((_, Slot::Pending(flight))) => Arc::clone(flight),
                    None => {
                        // First caller: install the flight, then search
                        // outside the shard lock.
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        let flight = Flight::new();
                        map.entry(query.to_owned())
                            .or_default()
                            .push((k, Slot::Pending(Arc::clone(&flight))));
                        drop(map);
                        return self.search_as_leader(engine, query, k, &flight);
                    }
                }
            };
            // Follower: wait for the leader's result (a hit — the memo
            // saved this engine call). `None` means the leader unwound;
            // loop and race to become the new leader.
            if let Some(results) = flight.wait() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return results;
            }
        }
    }

    /// Runs the engine call for an installed flight and publishes the
    /// outcome; if the engine panics, the flight is abandoned and its
    /// slot removed so followers can retry instead of hanging.
    fn search_as_leader<E: SearchEngine + ?Sized>(
        &self,
        engine: &E,
        query: &str,
        k: usize,
        flight: &Arc<Flight>,
    ) -> Arc<[SearchResult]> {
        struct Abort<'a> {
            cache: &'a QueryCache,
            flight: &'a Arc<Flight>,
            query: &'a str,
            k: usize,
            armed: bool,
        }
        impl Drop for Abort<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.cache
                        .resolve_slot(self.query, self.k, self.flight, None);
                }
            }
        }
        let mut guard = Abort {
            cache: self,
            flight,
            query,
            k,
            armed: true,
        };
        let results: Arc<[SearchResult]> = engine.search(query, k).into();
        guard.armed = false;
        self.resolve_slot(query, k, flight, Some(Arc::clone(&results)));
        results
    }

    /// Publishes a flight's outcome: `Some` marks the slot ready,
    /// `None` (abandon) removes it. Only touches the slot if it still
    /// holds this very flight (a concurrent `clear` may have dropped it).
    fn resolve_slot(
        &self,
        query: &str,
        k: usize,
        flight: &Arc<Flight>,
        results: Option<Arc<[SearchResult]>>,
    ) {
        let shard = &self.shards[self.shard_of(query)];
        let mut map = shard.lock().expect("query cache shard poisoned");
        if let Some(entries) = map.get_mut(query) {
            if let Some(pos) = entries.iter().position(|(ek, slot)| {
                *ek == k && matches!(slot, Slot::Pending(f) if Arc::ptr_eq(f, flight))
            }) {
                match &results {
                    Some(r) => entries[pos].1 = Slot::Ready(Arc::clone(r)),
                    None => {
                        entries.remove(pos);
                        if entries.is_empty() {
                            map.remove(query);
                        }
                    }
                }
            }
        }
        drop(map);
        flight.finish(match results {
            Some(r) => FlightState::Done(r),
            None => FlightState::Abandoned,
        });
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized `(query, k)` entries (in-flight searches not
    /// yet counted).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("query cache shard poisoned")
                    .values()
                    .flatten()
                    .filter(|(_, slot)| matches!(slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Whether nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and zeroes the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("query cache shard poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// A [`SearchEngine`] that answers through a [`QueryCache`] — drop-in
/// memoization for code that talks to the trait (the single-table
/// [`Annotator`](crate::pipeline::Annotator) path, baselines, hybrid).
///
/// The batch engine bypasses this adapter and calls
/// [`QueryCache::get_or_search`] directly to avoid cloning result lists;
/// this wrapper clones on every call to satisfy the trait's owned return.
pub struct CachedEngine {
    inner: Arc<dyn SearchEngine + Send + Sync>,
    cache: Arc<QueryCache>,
}

impl CachedEngine {
    /// Wraps `inner` with `cache`.
    pub fn new(inner: Arc<dyn SearchEngine + Send + Sync>, cache: Arc<QueryCache>) -> Self {
        CachedEngine { inner, cache }
    }

    /// The shared cache.
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }
}

impl SearchEngine for CachedEngine {
    fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
        self.cache
            .get_or_search(self.inner.as_ref(), query, k)
            .to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Engine that counts calls and answers `k` canned results.
    struct Counting(AtomicUsize);

    impl SearchEngine for Counting {
        fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
            self.0.fetch_add(1, Ordering::Relaxed);
            (0..k)
                .map(|i| SearchResult {
                    url: format!("http://c/{query}/{i}"),
                    title: format!("t{i}"),
                    snippet: format!("{query} snippet {i}"),
                })
                .collect()
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = QueryCache::new(8);
        let engine = Counting(AtomicUsize::new(0));
        let a = cache.get_or_search(&engine, "melisse", 10);
        let b = cache.get_or_search(&engine, "melisse", 10);
        let c = cache.get_or_search(&engine, "louvre", 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(engine.0.load(Ordering::Relaxed), 2, "one search per key");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 2 });
        assert!((cache.stats().hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_k_is_a_distinct_key() {
        let cache = QueryCache::default();
        let engine = Counting(AtomicUsize::new(0));
        let ten = cache.get_or_search(&engine, "melisse", 10);
        let three = cache.get_or_search(&engine, "melisse", 3);
        assert_eq!(ten.len(), 10);
        assert_eq!(three.len(), 3);
        assert_eq!(cache.stats().misses, 2);
        // both stay independently cached
        assert_eq!(cache.get_or_search(&engine, "melisse", 10).len(), 10);
        assert_eq!(cache.get_or_search(&engine, "melisse", 3).len(), 3);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = QueryCache::new(4);
        let engine = Counting(AtomicUsize::new(0));
        cache.get_or_search(&engine, "a", 5);
        cache.get_or_search(&engine, "a", 5);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
        cache.get_or_search(&engine, "a", 5);
        assert_eq!(
            engine.0.load(Ordering::Relaxed),
            2,
            "re-searched after clear"
        );
    }

    #[test]
    fn concurrent_duplicate_queries_search_once() {
        let cache = Arc::new(QueryCache::new(16));
        let engine = Arc::new(Counting(AtomicUsize::new(0)));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let engine = Arc::clone(&engine);
                s.spawn(move || {
                    for q in ["melisse", "louvre", "bayona"] {
                        let r = cache.get_or_search(engine.as_ref(), q, 10);
                        assert_eq!(r.len(), 10);
                    }
                });
            }
        });
        assert_eq!(
            engine.0.load(Ordering::Relaxed),
            3,
            "single flight per distinct query"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 21);
    }

    #[test]
    fn distinct_keys_do_not_serialize_behind_a_slow_search() {
        use std::time::{Duration, Instant};

        /// Engine whose every search takes a fixed wall-clock time.
        struct Slow;
        impl SearchEngine for Slow {
            fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
                std::thread::sleep(Duration::from_millis(120));
                (0..k)
                    .map(|i| SearchResult {
                        url: format!("http://s/{query}/{i}"),
                        title: "t".into(),
                        snippet: "s".into(),
                    })
                    .collect()
            }
        }

        // One shard: both keys *must* share it. Misses still overlap
        // because the engine call runs outside the shard lock.
        let cache = Arc::new(QueryCache::new(1));
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for q in ["alpha", "beta"] {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    assert_eq!(cache.get_or_search(&Slow, q, 2).len(), 2);
                });
            }
        });
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(220),
            "two distinct slow searches serialized: {elapsed:?}"
        );
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn abandoned_flight_lets_the_next_caller_retry() {
        /// Engine that panics on its first call only.
        struct PanicsOnce(AtomicUsize);
        impl SearchEngine for PanicsOnce {
            fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
                if self.0.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("engine exploded");
                }
                (0..k)
                    .map(|i| SearchResult {
                        url: format!("http://p/{query}/{i}"),
                        title: "t".into(),
                        snippet: "s".into(),
                    })
                    .collect()
            }
        }

        let cache = QueryCache::new(4);
        let engine = PanicsOnce(AtomicUsize::new(0));
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_search(&engine, "boom", 3)
        }));
        assert!(unwound.is_err(), "first call must propagate the panic");
        // The abandoned flight's slot was removed — the retry searches
        // again instead of hanging on a dead Pending marker.
        assert_eq!(cache.get_or_search(&engine, "boom", 3).len(), 3);
        assert_eq!(cache.stats().misses, 2, "both attempts were misses");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_engine_is_a_drop_in_search_engine() {
        let cache = Arc::new(QueryCache::default());
        let engine = CachedEngine::new(Arc::new(Counting(AtomicUsize::new(0))), Arc::clone(&cache));
        let a = engine.search("melisse", 4);
        let b = engine.search("melisse", 4);
        assert_eq!(a, b);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }
}
