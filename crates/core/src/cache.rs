//! Query memoization for the batch annotation engine and service.
//!
//! "Querying a Web search engine is a costly operation" (§5) — the
//! paper's pre-processing step exists to cut query volume, and real
//! tables amplify the concern: duplicate cell contents (repeated category
//! words, shared names across tables of a corpus) would re-issue the same
//! query over and over. [`QueryCache`] memoizes `(query, k) → results`
//! behind a sharded lock so concurrent annotation workers share one
//! result set per distinct query.
//!
//! Misses are *single-flight per key*: the first worker to miss a
//! `(query, k)` installs an in-flight marker, releases the shard lock,
//! and searches; workers racing on the *same* key block on that flight
//! (not on the shard), while workers on *different* keys of the same
//! shard proceed immediately. One search per distinct key, identical
//! results for every caller, and the engine's query counter (the
//! paper's daily-allowance concern) stays deterministic — without
//! serializing unrelated queries behind a slow engine call.
//!
//! # Boundedness
//!
//! A long-running annotation *service* cannot let the memo grow without
//! bound the way an offline corpus run can. [`CacheConfig`] adds two
//! knobs:
//!
//! * **capacity** — a cap on memoized entries, split evenly across the
//!   shards and enforced per shard with exact LRU eviction (shards are
//!   small — `capacity / shards` entries — so the eviction scan is a
//!   short, bounded critical section; an intrusive LRU list would buy
//!   nothing at this size);
//! * **TTL** — entries older than the deadline answer as misses and are
//!   re-searched, so a service that runs for days does not serve
//!   arbitrarily stale results.
//!
//! **Determinism invariant (hard):** search results are a pure function
//! of `(query, k)`, so an eviction or expiry can only change the *cost*
//! of a lookup (one extra engine call), never its result. Bounded and
//! unbounded caches produce bit-identical annotations.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use teda_websim::{SearchEngine, SearchResult};

/// Hit/miss/eviction accounting of a [`QueryCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache (searches saved).
    pub hits: u64,
    /// Queries that went to the engine.
    pub misses: u64,
    /// Entries evicted to honour the capacity bound.
    pub evictions: u64,
    /// Lookups that found an entry past its TTL (counted in `misses` too:
    /// the expired entry is dropped and the query re-searched).
    pub expired: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Capacity/TTL/sharding knobs of a [`QueryCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Lock shards (rounded up to 1). More shards, less contention.
    pub shards: usize,
    /// Total memoized-entry bound, split evenly across shards (each shard
    /// holds at most `ceil(capacity / shards)`, minimum 1). `None` is
    /// unbounded — the right choice for one-shot corpus runs, not for a
    /// long-running service.
    pub capacity: Option<usize>,
    /// Entries older than this answer as misses and are re-searched.
    /// `None` never expires.
    pub ttl: Option<Duration>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 64,
            capacity: None,
            ttl: None,
        }
    }
}

/// One memo slot: a finished result, or a search currently in flight.
#[derive(Debug, Clone)]
enum Slot {
    Ready(Arc<[SearchResult]>),
    Pending(Arc<Flight>),
}

/// Rendezvous for workers waiting on another worker's in-flight search.
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

#[derive(Debug, Clone)]
enum FlightState {
    Searching,
    Done(Arc<[SearchResult]>),
    /// The searching worker unwound (engine panic); waiters retry.
    Abandoned,
}

impl Flight {
    fn new() -> Arc<Self> {
        Arc::new(Flight {
            state: Mutex::new(FlightState::Searching),
            done: Condvar::new(),
        })
    }

    fn finish(&self, state: FlightState) {
        *self.state.lock().expect("flight state poisoned") = state;
        self.done.notify_all();
    }

    /// Blocks until the flight resolves; `None` means abandoned (retry).
    fn wait(&self) -> Option<Arc<[SearchResult]>> {
        let mut state = self.state.lock().expect("flight state poisoned");
        loop {
            match &*state {
                FlightState::Searching => {
                    state = self.done.wait(state).expect("flight state poisoned");
                }
                FlightState::Done(results) => return Some(Arc::clone(results)),
                FlightState::Abandoned => return None,
            }
        }
    }
}

/// One memo entry under a query key.
#[derive(Debug)]
struct Entry {
    k: usize,
    slot: Slot,
    /// Shard tick at the last hit (LRU recency). Pending entries carry
    /// their install tick but are never eviction victims.
    last_used: u64,
    /// Publish time, read only when a TTL is configured.
    inserted: Instant,
}

/// One shard: query text → per-k entries, plus the shard-local LRU tick
/// and the count of `Ready` entries the capacity bound applies to.
///
/// Keyed by the query string alone so a hit needs no key allocation;
/// `k` rarely takes more than one value per run, so the inner list is a
/// linear scan over one or two entries.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<String, Vec<Entry>>,
    tick: u64,
    ready: usize,
}

/// A sharded, thread-safe, optionally bounded memo of search-engine
/// responses.
#[derive(Debug)]
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    /// `Ready` entries allowed per shard; `usize::MAX` when unbounded.
    per_shard_capacity: usize,
    ttl: Option<Duration>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expired: AtomicU64,
}

impl Default for QueryCache {
    fn default() -> Self {
        QueryCache::with_config(CacheConfig::default())
    }
}

impl QueryCache {
    /// Creates an unbounded cache with `shards` lock shards (rounded up
    /// to 1) — the PR-1 constructor, kept for offline corpus runs.
    pub fn new(shards: usize) -> Self {
        QueryCache::with_config(CacheConfig {
            shards,
            ..CacheConfig::default()
        })
    }

    /// Creates a cache from the full knob set. When a capacity is set,
    /// the shard count is clamped to it so the per-shard split never
    /// inflates the bound (`capacity: 8` with 64 shards would otherwise
    /// round up to one entry *per shard* — 64 entries).
    pub fn with_config(config: CacheConfig) -> Self {
        let n = match config.capacity {
            Some(cap) => config.shards.clamp(1, cap.max(1)),
            None => config.shards.max(1),
        };
        let per_shard_capacity = match config.capacity {
            Some(cap) => cap.div_ceil(n).max(1),
            None => usize::MAX,
        };
        QueryCache {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            ttl: config.ttl,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// The effective total capacity (`None` when unbounded). Rounded up
    /// from the configured value to a multiple of the shard count, since
    /// the bound is enforced per shard.
    pub fn capacity(&self) -> Option<usize> {
        if self.per_shard_capacity == usize::MAX {
            None
        } else {
            Some(self.per_shard_capacity * self.shards.len())
        }
    }

    /// Stable FNV-1a shard selection (independent of the process's hash
    /// seed, so shard assignment — and therefore lock interleaving — is
    /// reproducible across runs).
    fn shard_of(&self, query: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in query.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Returns the memoized results for `(query, k)`, consulting `engine`
    /// once per distinct *live* key across all threads: racing callers of
    /// the same key wait for the first caller's flight; distinct keys
    /// never wait on each other's engine calls; evicted or expired keys
    /// are simply re-searched (same results, one more engine call).
    pub fn get_or_search<E: SearchEngine + ?Sized>(
        &self,
        engine: &E,
        query: &str,
        k: usize,
    ) -> Arc<[SearchResult]> {
        /// What the shard held for the key, borrow-free.
        enum Found {
            Hit(Arc<[SearchResult]>),
            Stale,
            InFlight(Arc<Flight>),
            Missing,
        }
        loop {
            let flight = {
                let shard = &self.shards[self.shard_of(query)];
                let mut shard = shard.lock().expect("query cache shard poisoned");
                shard.tick += 1;
                let tick = shard.tick;
                let found = match shard
                    .map
                    .get_mut(query)
                    .and_then(|entries| entries.iter_mut().find(|e| e.k == k))
                {
                    Some(entry) => match &entry.slot {
                        Slot::Ready(results) => {
                            if self.ttl.is_some_and(|ttl| entry.inserted.elapsed() >= ttl) {
                                Found::Stale
                            } else {
                                let results = Arc::clone(results);
                                entry.last_used = tick;
                                Found::Hit(results)
                            }
                        }
                        Slot::Pending(flight) => Found::InFlight(Arc::clone(flight)),
                    },
                    None => Found::Missing,
                };
                match found {
                    Found::Hit(results) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return results;
                    }
                    Found::InFlight(flight) => flight,
                    stale_or_missing => {
                        // First caller (or the entry aged out): install
                        // the flight, then search outside the shard lock.
                        if matches!(stale_or_missing, Found::Stale) {
                            self.expired.fetch_add(1, Ordering::Relaxed);
                            remove_entry(&mut shard, query, k);
                        }
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        let flight = install_flight(&mut shard, query, k, tick);
                        drop(shard);
                        return self.search_as_leader(engine, query, k, &flight);
                    }
                }
            };
            // Follower: wait for the leader's result (a hit — the memo
            // saved this engine call). `None` means the leader unwound;
            // loop and race to become the new leader.
            if let Some(results) = flight.wait() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return results;
            }
        }
    }

    /// Runs the engine call for an installed flight and publishes the
    /// outcome; if the engine panics, the flight is abandoned and its
    /// slot removed so followers can retry instead of hanging.
    fn search_as_leader<E: SearchEngine + ?Sized>(
        &self,
        engine: &E,
        query: &str,
        k: usize,
        flight: &Arc<Flight>,
    ) -> Arc<[SearchResult]> {
        struct Abort<'a> {
            cache: &'a QueryCache,
            flight: &'a Arc<Flight>,
            query: &'a str,
            k: usize,
            armed: bool,
        }
        impl Drop for Abort<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.cache
                        .resolve_slot(self.query, self.k, self.flight, None);
                }
            }
        }
        let mut guard = Abort {
            cache: self,
            flight,
            query,
            k,
            armed: true,
        };
        let results: Arc<[SearchResult]> = engine.search(query, k).into();
        guard.armed = false;
        self.resolve_slot(query, k, flight, Some(Arc::clone(&results)));
        results
    }

    /// Publishes a flight's outcome: `Some` marks the slot ready (and
    /// enforces the capacity bound), `None` (abandon) removes it. Only
    /// touches the slot if it still holds this very flight (a concurrent
    /// `clear` may have dropped it).
    fn resolve_slot(
        &self,
        query: &str,
        k: usize,
        flight: &Arc<Flight>,
        results: Option<Arc<[SearchResult]>>,
    ) {
        let shard = &self.shards[self.shard_of(query)];
        let mut shard = shard.lock().expect("query cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        let held = shard.map.get_mut(query).and_then(|entries| {
            entries
                .iter_mut()
                .find(|e| e.k == k && matches!(&e.slot, Slot::Pending(f) if Arc::ptr_eq(f, flight)))
        });
        if let Some(entry) = held {
            match &results {
                Some(r) => {
                    entry.slot = Slot::Ready(Arc::clone(r));
                    entry.last_used = tick;
                    entry.inserted = Instant::now();
                    shard.ready += 1;
                    while shard.ready > self.per_shard_capacity {
                        if !evict_lru(&mut shard) {
                            break;
                        }
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => remove_entry(&mut shard, query, k),
            }
        }
        drop(shard);
        flight.finish(match results {
            Some(r) => FlightState::Done(r),
            None => FlightState::Abandoned,
        });
    }

    /// Hit/miss/eviction counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized `(query, k)` entries (in-flight searches not
    /// yet counted).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("query cache shard poisoned").ready)
            .sum()
    }

    /// Whether nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and zeroes the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            let mut shard = s.lock().expect("query cache shard poisoned");
            shard.map.clear();
            shard.ready = 0;
            shard.tick = 0;
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.expired.store(0, Ordering::Relaxed);
    }
}

/// Installs a fresh `Pending` entry for `(query, k)` and returns its
/// flight. Caller must have verified the key is absent.
fn install_flight(shard: &mut Shard, query: &str, k: usize, tick: u64) -> Arc<Flight> {
    let flight = Flight::new();
    shard.map.entry(query.to_owned()).or_default().push(Entry {
        k,
        slot: Slot::Pending(Arc::clone(&flight)),
        last_used: tick,
        inserted: Instant::now(),
    });
    flight
}

/// Removes the `(query, k)` entry if present, maintaining the ready count
/// and dropping emptied key lists.
fn remove_entry(shard: &mut Shard, query: &str, k: usize) {
    if let Some(entries) = shard.map.get_mut(query) {
        if let Some(pos) = entries.iter().position(|e| e.k == k) {
            if matches!(entries[pos].slot, Slot::Ready(_)) {
                shard.ready -= 1;
            }
            entries.remove(pos);
            if entries.is_empty() {
                shard.map.remove(query);
            }
        }
    }
}

/// Evicts the least-recently-used `Ready` entry of the shard. Returns
/// `false` when no `Ready` entry exists (all Pending — nothing evictable).
fn evict_lru(shard: &mut Shard) -> bool {
    let mut victim: Option<(&String, usize, u64)> = None;
    for (q, entries) in shard.map.iter() {
        for e in entries {
            if matches!(e.slot, Slot::Ready(_))
                && victim.is_none_or(|(_, _, used)| e.last_used < used)
            {
                victim = Some((q, e.k, e.last_used));
            }
        }
    }
    let Some((q, k, _)) = victim.map(|(q, k, u)| (q.clone(), k, u)) else {
        return false;
    };
    remove_entry(shard, &q, k);
    true
}

/// A [`SearchEngine`] that answers through a [`QueryCache`] — drop-in
/// memoization for code that talks to the trait (the single-table
/// [`Annotator`](crate::pipeline::Annotator) path, baselines, hybrid).
///
/// The batch engine bypasses this adapter and calls
/// [`QueryCache::get_or_search`] directly to avoid cloning result lists;
/// this wrapper clones on every call to satisfy the trait's owned return.
pub struct CachedEngine {
    inner: Arc<dyn SearchEngine + Send + Sync>,
    cache: Arc<QueryCache>,
}

impl CachedEngine {
    /// Wraps `inner` with `cache`.
    pub fn new(inner: Arc<dyn SearchEngine + Send + Sync>, cache: Arc<QueryCache>) -> Self {
        CachedEngine { inner, cache }
    }

    /// The shared cache.
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }
}

impl SearchEngine for CachedEngine {
    fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
        self.cache
            .get_or_search(self.inner.as_ref(), query, k)
            .to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Engine that counts calls and answers `k` canned results.
    struct Counting(AtomicUsize);

    impl SearchEngine for Counting {
        fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
            self.0.fetch_add(1, Ordering::Relaxed);
            (0..k)
                .map(|i| SearchResult {
                    url: format!("http://c/{query}/{i}"),
                    title: format!("t{i}"),
                    snippet: format!("{query} snippet {i}"),
                })
                .collect()
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = QueryCache::new(8);
        let engine = Counting(AtomicUsize::new(0));
        let a = cache.get_or_search(&engine, "melisse", 10);
        let b = cache.get_or_search(&engine, "melisse", 10);
        let c = cache.get_or_search(&engine, "louvre", 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(engine.0.load(Ordering::Relaxed), 2, "one search per key");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                ..CacheStats::default()
            }
        );
        assert!((cache.stats().hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.capacity(), None, "new() stays unbounded");
    }

    #[test]
    fn distinct_k_is_a_distinct_key() {
        let cache = QueryCache::default();
        let engine = Counting(AtomicUsize::new(0));
        let ten = cache.get_or_search(&engine, "melisse", 10);
        let three = cache.get_or_search(&engine, "melisse", 3);
        assert_eq!(ten.len(), 10);
        assert_eq!(three.len(), 3);
        assert_eq!(cache.stats().misses, 2);
        // both stay independently cached
        assert_eq!(cache.get_or_search(&engine, "melisse", 10).len(), 10);
        assert_eq!(cache.get_or_search(&engine, "melisse", 3).len(), 3);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = QueryCache::new(4);
        let engine = Counting(AtomicUsize::new(0));
        cache.get_or_search(&engine, "a", 5);
        cache.get_or_search(&engine, "a", 5);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
        cache.get_or_search(&engine, "a", 5);
        assert_eq!(
            engine.0.load(Ordering::Relaxed),
            2,
            "re-searched after clear"
        );
    }

    #[test]
    fn concurrent_duplicate_queries_search_once() {
        let cache = Arc::new(QueryCache::new(16));
        let engine = Arc::new(Counting(AtomicUsize::new(0)));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let engine = Arc::clone(&engine);
                s.spawn(move || {
                    for q in ["melisse", "louvre", "bayona"] {
                        let r = cache.get_or_search(engine.as_ref(), q, 10);
                        assert_eq!(r.len(), 10);
                    }
                });
            }
        });
        assert_eq!(
            engine.0.load(Ordering::Relaxed),
            3,
            "single flight per distinct query"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 21);
    }

    #[test]
    fn distinct_keys_do_not_serialize_behind_a_slow_search() {
        use std::time::{Duration, Instant};

        /// Engine whose every search takes a fixed wall-clock time.
        struct Slow;
        impl SearchEngine for Slow {
            fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
                std::thread::sleep(Duration::from_millis(120));
                (0..k)
                    .map(|i| SearchResult {
                        url: format!("http://s/{query}/{i}"),
                        title: "t".into(),
                        snippet: "s".into(),
                    })
                    .collect()
            }
        }

        // One shard: both keys *must* share it. Misses still overlap
        // because the engine call runs outside the shard lock.
        let cache = Arc::new(QueryCache::new(1));
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for q in ["alpha", "beta"] {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    assert_eq!(cache.get_or_search(&Slow, q, 2).len(), 2);
                });
            }
        });
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(220),
            "two distinct slow searches serialized: {elapsed:?}"
        );
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn abandoned_flight_lets_the_next_caller_retry() {
        /// Engine that panics on its first call only.
        struct PanicsOnce(AtomicUsize);
        impl SearchEngine for PanicsOnce {
            fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
                if self.0.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("engine exploded");
                }
                (0..k)
                    .map(|i| SearchResult {
                        url: format!("http://p/{query}/{i}"),
                        title: "t".into(),
                        snippet: "s".into(),
                    })
                    .collect()
            }
        }

        let cache = QueryCache::new(4);
        let engine = PanicsOnce(AtomicUsize::new(0));
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_search(&engine, "boom", 3)
        }));
        assert!(unwound.is_err(), "first call must propagate the panic");
        // The abandoned flight's slot was removed — the retry searches
        // again instead of hanging on a dead Pending marker.
        assert_eq!(cache.get_or_search(&engine, "boom", 3).len(), 3);
        assert_eq!(cache.stats().misses, 2, "both attempts were misses");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_engine_is_a_drop_in_search_engine() {
        let cache = Arc::new(QueryCache::default());
        let engine = CachedEngine::new(Arc::new(Counting(AtomicUsize::new(0))), Arc::clone(&cache));
        let a = engine.search("melisse", 4);
        let b = engine.search("melisse", 4);
        assert_eq!(a, b);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn capacity_is_enforced_with_lru_eviction() {
        let cache = QueryCache::with_config(CacheConfig {
            shards: 1,
            capacity: Some(2),
            ttl: None,
        });
        assert_eq!(cache.capacity(), Some(2));
        let engine = Counting(AtomicUsize::new(0));
        cache.get_or_search(&engine, "a", 1);
        cache.get_or_search(&engine, "b", 1);
        // Touch "a" so "b" is now the LRU entry.
        cache.get_or_search(&engine, "a", 1);
        cache.get_or_search(&engine, "c", 1); // evicts "b"
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // "a" and "c" still hit; "b" re-searches.
        let calls = engine.0.load(Ordering::Relaxed);
        cache.get_or_search(&engine, "a", 1);
        cache.get_or_search(&engine, "c", 1);
        assert_eq!(engine.0.load(Ordering::Relaxed), calls, "a and c cached");
        cache.get_or_search(&engine, "b", 1);
        assert_eq!(engine.0.load(Ordering::Relaxed), calls + 1, "b re-searched");
    }

    #[test]
    fn eviction_never_changes_results() {
        let cache = QueryCache::with_config(CacheConfig {
            shards: 1,
            capacity: Some(1),
            ttl: None,
        });
        let engine = Counting(AtomicUsize::new(0));
        let first = cache.get_or_search(&engine, "melisse", 5);
        cache.get_or_search(&engine, "louvre", 5); // evicts "melisse"
        let again = cache.get_or_search(&engine, "melisse", 5);
        assert_eq!(first, again, "evict-then-rehit must be bit-identical");
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn ttl_expires_entries() {
        let cache = QueryCache::with_config(CacheConfig {
            shards: 4,
            capacity: None,
            ttl: Some(Duration::from_millis(40)),
        });
        let engine = Counting(AtomicUsize::new(0));
        let fresh = cache.get_or_search(&engine, "melisse", 3);
        assert_eq!(
            cache.get_or_search(&engine, "melisse", 3),
            fresh,
            "within TTL: a hit"
        );
        assert_eq!(engine.0.load(Ordering::Relaxed), 1);
        std::thread::sleep(Duration::from_millis(120));
        let stale_rehit = cache.get_or_search(&engine, "melisse", 3);
        assert_eq!(engine.0.load(Ordering::Relaxed), 2, "expired → re-search");
        assert_eq!(stale_rehit, fresh, "expiry never changes the result");
        let stats = cache.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn pending_flights_are_never_evicted() {
        use std::sync::mpsc;

        /// Engine whose first search blocks until released.
        struct Gated {
            release: Mutex<Option<mpsc::Receiver<()>>>,
        }
        impl SearchEngine for Gated {
            fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
                if query == "slow" {
                    if let Some(rx) = self.release.lock().unwrap().take() {
                        rx.recv().unwrap();
                    }
                }
                (0..k)
                    .map(|i| SearchResult {
                        url: format!("http://g/{query}/{i}"),
                        title: "t".into(),
                        snippet: "s".into(),
                    })
                    .collect()
            }
        }

        let (tx, rx) = mpsc::channel();
        let engine = Arc::new(Gated {
            release: Mutex::new(Some(rx)),
        });
        let cache = Arc::new(QueryCache::with_config(CacheConfig {
            shards: 1,
            capacity: Some(1),
            ttl: None,
        }));
        std::thread::scope(|s| {
            let c = Arc::clone(&cache);
            let e = Arc::clone(&engine);
            let slow = s.spawn(move || c.get_or_search(e.as_ref(), "slow", 2));
            // While "slow" is in flight, fill the shard past capacity.
            std::thread::sleep(Duration::from_millis(30));
            for q in ["a", "b", "c"] {
                cache.get_or_search(engine.as_ref(), q, 2);
            }
            tx.send(()).unwrap();
            let r = slow.join().expect("slow search panicked");
            assert_eq!(r.len(), 2, "in-flight search survived eviction pressure");
        });
        assert!(cache.len() <= 1 + 1, "capacity still honoured after flight");
        assert!(cache.stats().evictions >= 2);
    }
}
