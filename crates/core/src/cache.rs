//! Query memoization for the batch annotation engine and service.
//!
//! "Querying a Web search engine is a costly operation" (§5) — the
//! paper's pre-processing step exists to cut query volume, and real
//! tables amplify the concern: duplicate cell contents (repeated category
//! words, shared names across tables of a corpus) would re-issue the same
//! query over and over. [`QueryCache`] memoizes `(query, k) → results`
//! behind a sharded lock so concurrent annotation workers share one
//! result set per distinct query.
//!
//! Misses are *single-flight per key*: the first worker to miss a
//! `(query, k)` installs an in-flight marker, releases the shard lock,
//! and searches; workers racing on the *same* key block on that flight
//! (not on the shard), while workers on *different* keys of the same
//! shard proceed immediately. One search per distinct key, identical
//! results for every caller, and the engine's query counter (the
//! paper's daily-allowance concern) stays deterministic — without
//! serializing unrelated queries behind a slow engine call.
//!
//! # Boundedness
//!
//! A long-running annotation *service* cannot let the memo grow without
//! bound the way an offline corpus run can. [`CacheConfig`] adds two
//! knobs:
//!
//! * **capacity** — a cap on memoized entries, split evenly across the
//!   shards and enforced per shard with exact LRU eviction (shards are
//!   small — `capacity / shards` entries — so the eviction scan is a
//!   short, bounded critical section; an intrusive LRU list would buy
//!   nothing at this size);
//! * **TTL** — entries older than the deadline answer as misses and are
//!   re-searched, so a service that runs for days does not serve
//!   arbitrarily stale results.
//!
//! **Determinism invariant (hard):** search results are a pure function
//! of `(query, k)`, so an eviction or expiry can only change the *cost*
//! of a lookup (one extra engine call), never its result. Bounded and
//! unbounded caches produce bit-identical annotations.
//!
//! The single-flight machinery itself — [`Flight`](teda_memo::Flight),
//! [`Slot`](teda_memo::Slot), shard routing, leader execution — lives in
//! [`teda_memo`], shared with `teda-geo`'s geocoding memo; this module
//! keeps only what is specific to the query cache: the per-`k` entry
//! layout, the LRU + TTL eviction policy, and the [`SearchEngine`]
//! integration.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use teda_memo::{lead, Counters, Flight, Shards, Slot};
use teda_obs::{Histogram, StageTimer, Stopwatch};
use teda_websim::{SearchEngine, SearchResult};

/// Hit/miss/eviction accounting of a [`QueryCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache (searches saved).
    pub hits: u64,
    /// Queries that went to the engine.
    pub misses: u64,
    /// Entries evicted to honour the capacity bound.
    pub evictions: u64,
    /// Lookups that found an entry past its TTL (counted in `misses` too:
    /// the expired entry is dropped and the query re-searched).
    pub expired: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Capacity/TTL/sharding knobs of a [`QueryCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Lock shards (rounded up to 1). More shards, less contention.
    pub shards: usize,
    /// Total memoized-entry bound, split evenly across shards (each shard
    /// holds at most `ceil(capacity / shards)`, minimum 1). `None` is
    /// unbounded — the right choice for one-shot corpus runs, not for a
    /// long-running service.
    pub capacity: Option<usize>,
    /// Entries older than this answer as misses and are re-searched.
    /// `None` never expires.
    pub ttl: Option<Duration>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 64,
            capacity: None,
            ttl: None,
        }
    }
}

/// The memoized value: one shared result list per `(query, k)`.
type Results = Arc<[SearchResult]>;

/// One exported cache entry, as
/// [`QueryCache::export_entries`]/[`QueryCache::restore_entries`]
/// exchange them with the persistence layer (`teda-store`).
///
/// `age` is the entry's elapsed residency at export time — the portable
/// form of the TTL clock. An `Instant` cannot cross a process boundary;
/// an age can, and the restoring cache turns it back into "inserted
/// `age` ago on *my* clock".
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntrySnapshot {
    /// The query text.
    pub query: String,
    /// The `k` the results were requested with.
    pub k: usize,
    /// The memoized result list, shared not copied.
    pub results: Arc<[SearchResult]>,
    /// Time since the entry was published, at export time.
    pub age: Duration,
}

/// One memo entry under a query key.
#[derive(Debug)]
struct Entry {
    k: usize,
    slot: Slot<Results>,
    /// Shard tick at the last hit (LRU recency). Pending entries carry
    /// their install tick but are never eviction victims.
    last_used: u64,
    /// Publish time, read only when a TTL is configured.
    inserted: Instant,
}

/// One shard: query text → per-k entries, plus the shard-local LRU tick
/// and the count of `Ready` entries the capacity bound applies to.
///
/// Keyed by the query string alone so a hit needs no key allocation;
/// `k` rarely takes more than one value per run, so the inner list is a
/// linear scan over one or two entries.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<String, Vec<Entry>>,
    tick: u64,
    ready: usize,
}

/// A sharded, thread-safe, optionally bounded memo of search-engine
/// responses.
#[derive(Debug)]
pub struct QueryCache {
    shards: Shards<Shard>,
    /// `Ready` entries allowed per shard; `usize::MAX` when unbounded.
    per_shard_capacity: usize,
    ttl: Option<Duration>,
    counters: Counters,
    /// `cache_lookup` stage histogram — time from lookup to a memoized
    /// answer (fast-path hits and follower waits). Unattached (the
    /// default) records nothing; see [`attach_obs`](Self::attach_obs).
    hist_lookup: OnceLock<Arc<Histogram>>,
    /// `search` stage histogram — the leader's engine call on a miss.
    hist_search: OnceLock<Arc<Histogram>>,
}

impl Default for QueryCache {
    fn default() -> Self {
        QueryCache::with_config(CacheConfig::default())
    }
}

impl QueryCache {
    /// Creates an unbounded cache with `shards` lock shards (rounded up
    /// to 1) — the PR-1 constructor, kept for offline corpus runs.
    pub fn new(shards: usize) -> Self {
        QueryCache::with_config(CacheConfig {
            shards,
            ..CacheConfig::default()
        })
    }

    /// Creates a cache from the full knob set. When a capacity is set,
    /// the shard count is clamped to it so the per-shard split never
    /// inflates the bound (`capacity: 8` with 64 shards would otherwise
    /// round up to one entry *per shard* — 64 entries).
    pub fn with_config(config: CacheConfig) -> Self {
        let n = match config.capacity {
            Some(cap) => config.shards.clamp(1, cap.max(1)),
            None => config.shards.max(1),
        };
        let per_shard_capacity = match config.capacity {
            Some(cap) => cap.div_ceil(n).max(1),
            None => usize::MAX,
        };
        QueryCache {
            shards: Shards::new(n),
            per_shard_capacity,
            ttl: config.ttl,
            counters: Counters::default(),
            hist_lookup: OnceLock::new(),
            hist_search: OnceLock::new(),
        }
    }

    /// Attaches the serving node's observability registry: lookups
    /// record into its `cache_lookup` stage histogram and leader engine
    /// calls into `search`. First attach wins. Timing is observation
    /// only — results stay a pure function of `(query, k)`.
    pub fn attach_obs(&self, obs: &teda_obs::Registry) {
        let _ = self
            .hist_lookup
            .set(obs.histogram(teda_obs::stage::CACHE_LOOKUP));
        let _ = self.hist_search.set(obs.histogram(teda_obs::stage::SEARCH));
    }

    /// A stopwatch running only when the `cache_lookup` histogram is
    /// attached and recording.
    fn lookup_watch(&self) -> Stopwatch {
        Stopwatch::started_if(self.hist_lookup.get().is_some_and(|h| h.is_enabled()))
    }

    /// Records one lookup-to-answer duration (no-op when unattached or
    /// the watch never started).
    fn record_lookup(&self, watch: Stopwatch) {
        if let (Some(h), true) = (self.hist_lookup.get(), watch.is_running()) {
            h.record(watch.elapsed_us());
        }
    }

    /// The effective total capacity (`None` when unbounded). Rounded up
    /// from the configured value to a multiple of the shard count, since
    /// the bound is enforced per shard.
    pub fn capacity(&self) -> Option<usize> {
        if self.per_shard_capacity == usize::MAX {
            None
        } else {
            Some(self.per_shard_capacity * self.shards.len())
        }
    }

    /// Returns the memoized results for `(query, k)`, consulting `engine`
    /// once per distinct *live* key across all threads: racing callers of
    /// the same key wait for the first caller's flight; distinct keys
    /// never wait on each other's engine calls; evicted or expired keys
    /// are simply re-searched (same results, one more engine call).
    pub fn get_or_search<E: SearchEngine + ?Sized>(
        &self,
        engine: &E,
        query: &str,
        k: usize,
    ) -> Arc<[SearchResult]> {
        /// What the shard held for the key, borrow-free.
        enum Found {
            Hit(Arc<[SearchResult]>),
            Stale,
            InFlight(Arc<Flight<Results>>),
            Missing,
        }
        let watch = self.lookup_watch();
        loop {
            let flight = {
                let mut shard = self.shards.lock(query.as_bytes());
                shard.tick += 1;
                let tick = shard.tick;
                let found = match shard
                    .map
                    .get_mut(query)
                    .and_then(|entries| entries.iter_mut().find(|e| e.k == k))
                {
                    Some(entry) => match &entry.slot {
                        Slot::Ready(results) => {
                            if self.ttl.is_some_and(|ttl| entry.inserted.elapsed() >= ttl) {
                                Found::Stale
                            } else {
                                let results = Arc::clone(results);
                                entry.last_used = tick;
                                Found::Hit(results)
                            }
                        }
                        Slot::Pending(flight) => Found::InFlight(Arc::clone(flight)),
                    },
                    None => Found::Missing,
                };
                match found {
                    Found::Hit(results) => {
                        self.counters.hit();
                        drop(shard);
                        self.record_lookup(watch);
                        return results;
                    }
                    Found::InFlight(flight) => flight,
                    stale_or_missing => {
                        // First caller (or the entry aged out): install
                        // the flight, then search outside the shard lock.
                        if matches!(stale_or_missing, Found::Stale) {
                            self.counters.expire();
                            remove_entry(&mut shard, query, k);
                        }
                        self.counters.miss();
                        let flight = install_flight(&mut shard, query, k, tick);
                        drop(shard);
                        // Leader: run the engine call outside the shard
                        // lock; on unwind the slot is removed so
                        // followers retry instead of hanging.
                        return lead(
                            || {
                                let timer = self
                                    .hist_search
                                    .get()
                                    .map(|h| StageTimer::start(Arc::clone(h)));
                                let results = engine.search(query, k).into();
                                drop(timer);
                                results
                            },
                            |results| self.resolve_slot(query, k, &flight, results),
                        );
                    }
                }
            };
            // Follower: wait for the leader's result (a hit — the memo
            // saved this engine call). `None` means the leader unwound;
            // loop and race to become the new leader.
            if let Some(results) = flight.wait() {
                self.counters.hit();
                self.record_lookup(watch);
                return results;
            }
        }
    }

    /// Publishes a flight's outcome: `Some` marks the slot ready (and
    /// enforces the capacity bound), `None` (abandon) removes it. Only
    /// touches the slot if it still holds this very flight (a concurrent
    /// `clear` may have dropped it).
    fn resolve_slot(
        &self,
        query: &str,
        k: usize,
        flight: &Arc<Flight<Results>>,
        results: Option<&Results>,
    ) {
        let mut shard = self.shards.lock(query.as_bytes());
        shard.tick += 1;
        let tick = shard.tick;
        let held = shard.map.get_mut(query).and_then(|entries| {
            entries
                .iter_mut()
                .find(|e| e.k == k && e.slot.holds(flight))
        });
        if let Some(entry) = held {
            match results {
                Some(r) => {
                    entry.slot = Slot::Ready(Arc::clone(r));
                    entry.last_used = tick;
                    entry.inserted = Instant::now();
                    shard.ready += 1;
                    while shard.ready > self.per_shard_capacity {
                        if !evict_lru(&mut shard) {
                            break;
                        }
                        self.counters.evicted(1);
                    }
                }
                None => remove_entry(&mut shard, query, k),
            }
        }
        drop(shard);
        flight.finish(results.map(Arc::clone));
    }

    /// Hit/miss/eviction counters so far.
    pub fn stats(&self) -> CacheStats {
        let snap = self.counters.snapshot();
        CacheStats {
            hits: snap.hits,
            misses: snap.misses,
            evictions: snap.evictions,
            expired: snap.expired,
        }
    }

    /// Number of memoized `(query, k)` entries (in-flight searches not
    /// yet counted).
    pub fn len(&self) -> usize {
        let mut total = 0;
        self.shards.for_each(|s| total += s.ready);
        total
    }

    /// Whether nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exports every `Ready` entry for persistence (`teda-store`'s
    /// cache snapshot): in-flight (`Pending`) slots are skipped — a
    /// search that has not finished has nothing to persist — and
    /// entries already past the TTL are skipped too. Each entry carries
    /// its **age** (time since publish), so a restore into another
    /// process can rebase the TTL clock instead of granting stale
    /// entries a fresh lease on life.
    ///
    /// Entries are sorted by `(query, k)` so snapshots of the same
    /// cache state are byte-identical regardless of shard iteration
    /// order.
    pub fn export_entries(&self) -> Vec<CacheEntrySnapshot> {
        let mut out = Vec::new();
        self.shards.for_each(|shard| {
            // teda-lint: allow(nondeterministic_iteration) -- collected across shards, then sorted by (query, k) before return
            for (query, entries) in shard.map.iter() {
                for e in entries {
                    let Slot::Ready(results) = &e.slot else {
                        continue;
                    };
                    let age = e.inserted.elapsed();
                    if self.ttl.is_some_and(|ttl| age >= ttl) {
                        continue;
                    }
                    out.push(CacheEntrySnapshot {
                        query: query.clone(),
                        k: e.k,
                        results: Arc::clone(results),
                        age,
                    });
                }
            }
        });
        out.sort_by(|a, b| a.query.cmp(&b.query).then(a.k.cmp(&b.k)));
        out
    }

    /// Restores exported entries into this cache, rebasing each TTL
    /// clock: an entry restored with age `a` expires `ttl − a` from
    /// now, exactly as if the process had never restarted. Entries
    /// whose age already exceeds this cache's TTL are dropped, live
    /// entries for the same `(query, k)` are never overwritten (the
    /// running process knows better than the snapshot), and the
    /// capacity bound is enforced as usual — a snapshot from a larger
    /// cache evicts down to this cache's limit. Hit/miss counters are
    /// untouched: restoration is not traffic.
    ///
    /// Returns the number of entries actually installed.
    pub fn restore_entries(&self, entries: impl IntoIterator<Item = CacheEntrySnapshot>) -> usize {
        let mut installed = 0usize;
        for entry in entries {
            if self.ttl.is_some_and(|ttl| entry.age >= ttl) {
                continue;
            }
            // Rebase the publish instant. If the age reaches back past
            // what `Instant` can represent here, the entry is ancient:
            // drop it when a TTL could ever expire it, otherwise age is
            // irrelevant and "now" is as good as any instant.
            let inserted = match Instant::now().checked_sub(entry.age) {
                Some(at) => at,
                None if self.ttl.is_some() => continue,
                None => Instant::now(),
            };
            let mut shard = self.shards.lock(entry.query.as_bytes());
            shard.tick += 1;
            let tick = shard.tick;
            let slots = shard.map.entry(entry.query).or_default();
            if slots.iter().any(|e| e.k == entry.k) {
                continue; // live state wins over the snapshot
            }
            slots.push(Entry {
                k: entry.k,
                slot: Slot::Ready(entry.results),
                last_used: tick,
                inserted,
            });
            shard.ready += 1;
            installed += 1;
            while shard.ready > self.per_shard_capacity {
                if !evict_lru(&mut shard) {
                    break;
                }
                self.counters.evicted(1);
            }
        }
        installed
    }

    /// Drops all entries and zeroes the counters.
    pub fn clear(&self) {
        self.shards.for_each(|shard| {
            shard.map.clear();
            shard.ready = 0;
            shard.tick = 0;
        });
        self.counters.reset();
    }
}

/// Installs a fresh `Pending` entry for `(query, k)` and returns its
/// flight. Caller must have verified the key is absent.
fn install_flight(shard: &mut Shard, query: &str, k: usize, tick: u64) -> Arc<Flight<Results>> {
    let flight = Flight::new();
    shard.map.entry(query.to_owned()).or_default().push(Entry {
        k,
        slot: Slot::Pending(Arc::clone(&flight)),
        last_used: tick,
        inserted: Instant::now(),
    });
    flight
}

/// Removes the `(query, k)` entry if present, maintaining the ready count
/// and dropping emptied key lists.
fn remove_entry(shard: &mut Shard, query: &str, k: usize) {
    if let Some(entries) = shard.map.get_mut(query) {
        if let Some(pos) = entries.iter().position(|e| e.k == k) {
            if matches!(entries[pos].slot, Slot::Ready(_)) {
                shard.ready -= 1;
            }
            entries.remove(pos);
            if entries.is_empty() {
                shard.map.remove(query);
            }
        }
    }
}

/// Evicts the least-recently-used `Ready` entry of the shard. Returns
/// `false` when no `Ready` entry exists (all Pending — nothing evictable).
fn evict_lru(shard: &mut Shard) -> bool {
    let mut victim: Option<(&String, usize, u64)> = None;
    // teda-lint: allow(nondeterministic_iteration) -- last_used ticks are unique (one per shard op), so the strict-< minimum is order-independent
    for (q, entries) in shard.map.iter() {
        for e in entries {
            if matches!(e.slot, Slot::Ready(_))
                && victim.is_none_or(|(_, _, used)| e.last_used < used)
            {
                victim = Some((q, e.k, e.last_used));
            }
        }
    }
    let Some((q, k, _)) = victim.map(|(q, k, u)| (q.clone(), k, u)) else {
        return false;
    };
    remove_entry(shard, &q, k);
    true
}

/// A [`SearchEngine`] that answers through a [`QueryCache`] — drop-in
/// memoization for code that talks to the trait (the single-table
/// [`Annotator`](crate::pipeline::Annotator) path, baselines, hybrid).
///
/// The batch engine bypasses this adapter and calls
/// [`QueryCache::get_or_search`] directly to avoid cloning result lists;
/// this wrapper clones on every call to satisfy the trait's owned return.
pub struct CachedEngine {
    inner: Arc<dyn SearchEngine + Send + Sync>,
    cache: Arc<QueryCache>,
}

impl CachedEngine {
    /// Wraps `inner` with `cache`.
    pub fn new(inner: Arc<dyn SearchEngine + Send + Sync>, cache: Arc<QueryCache>) -> Self {
        CachedEngine { inner, cache }
    }

    /// The shared cache.
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }
}

impl SearchEngine for CachedEngine {
    fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
        self.cache
            .get_or_search(self.inner.as_ref(), query, k)
            .to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Engine that counts calls and answers `k` canned results.
    struct Counting(AtomicUsize);

    impl SearchEngine for Counting {
        fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
            self.0.fetch_add(1, Ordering::Relaxed);
            (0..k)
                .map(|i| SearchResult {
                    url: format!("http://c/{query}/{i}"),
                    title: format!("t{i}"),
                    snippet: format!("{query} snippet {i}"),
                })
                .collect()
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = QueryCache::new(8);
        let engine = Counting(AtomicUsize::new(0));
        let a = cache.get_or_search(&engine, "melisse", 10);
        let b = cache.get_or_search(&engine, "melisse", 10);
        let c = cache.get_or_search(&engine, "louvre", 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(engine.0.load(Ordering::Relaxed), 2, "one search per key");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                ..CacheStats::default()
            }
        );
        assert!((cache.stats().hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.capacity(), None, "new() stays unbounded");
    }

    #[test]
    fn distinct_k_is_a_distinct_key() {
        let cache = QueryCache::default();
        let engine = Counting(AtomicUsize::new(0));
        let ten = cache.get_or_search(&engine, "melisse", 10);
        let three = cache.get_or_search(&engine, "melisse", 3);
        assert_eq!(ten.len(), 10);
        assert_eq!(three.len(), 3);
        assert_eq!(cache.stats().misses, 2);
        // both stay independently cached
        assert_eq!(cache.get_or_search(&engine, "melisse", 10).len(), 10);
        assert_eq!(cache.get_or_search(&engine, "melisse", 3).len(), 3);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = QueryCache::new(4);
        let engine = Counting(AtomicUsize::new(0));
        cache.get_or_search(&engine, "a", 5);
        cache.get_or_search(&engine, "a", 5);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
        cache.get_or_search(&engine, "a", 5);
        assert_eq!(
            engine.0.load(Ordering::Relaxed),
            2,
            "re-searched after clear"
        );
    }

    #[test]
    fn concurrent_duplicate_queries_search_once() {
        let cache = Arc::new(QueryCache::new(16));
        let engine = Arc::new(Counting(AtomicUsize::new(0)));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let engine = Arc::clone(&engine);
                s.spawn(move || {
                    for q in ["melisse", "louvre", "bayona"] {
                        let r = cache.get_or_search(engine.as_ref(), q, 10);
                        assert_eq!(r.len(), 10);
                    }
                });
            }
        });
        assert_eq!(
            engine.0.load(Ordering::Relaxed),
            3,
            "single flight per distinct query"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 21);
    }

    #[test]
    fn distinct_keys_do_not_serialize_behind_a_slow_search() {
        use std::time::{Duration, Instant};

        /// Engine whose every search takes a fixed wall-clock time.
        struct Slow;
        impl SearchEngine for Slow {
            fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
                std::thread::sleep(Duration::from_millis(120));
                (0..k)
                    .map(|i| SearchResult {
                        url: format!("http://s/{query}/{i}"),
                        title: "t".into(),
                        snippet: "s".into(),
                    })
                    .collect()
            }
        }

        // One shard: both keys *must* share it. Misses still overlap
        // because the engine call runs outside the shard lock.
        let cache = Arc::new(QueryCache::new(1));
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for q in ["alpha", "beta"] {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    assert_eq!(cache.get_or_search(&Slow, q, 2).len(), 2);
                });
            }
        });
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(220),
            "two distinct slow searches serialized: {elapsed:?}"
        );
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn abandoned_flight_lets_the_next_caller_retry() {
        /// Engine that panics on its first call only.
        struct PanicsOnce(AtomicUsize);
        impl SearchEngine for PanicsOnce {
            fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
                if self.0.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("engine exploded");
                }
                (0..k)
                    .map(|i| SearchResult {
                        url: format!("http://p/{query}/{i}"),
                        title: "t".into(),
                        snippet: "s".into(),
                    })
                    .collect()
            }
        }

        let cache = QueryCache::new(4);
        let engine = PanicsOnce(AtomicUsize::new(0));
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_search(&engine, "boom", 3)
        }));
        assert!(unwound.is_err(), "first call must propagate the panic");
        // The abandoned flight's slot was removed — the retry searches
        // again instead of hanging on a dead Pending marker.
        assert_eq!(cache.get_or_search(&engine, "boom", 3).len(), 3);
        assert_eq!(cache.stats().misses, 2, "both attempts were misses");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_engine_is_a_drop_in_search_engine() {
        let cache = Arc::new(QueryCache::default());
        let engine = CachedEngine::new(Arc::new(Counting(AtomicUsize::new(0))), Arc::clone(&cache));
        let a = engine.search("melisse", 4);
        let b = engine.search("melisse", 4);
        assert_eq!(a, b);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn capacity_is_enforced_with_lru_eviction() {
        let cache = QueryCache::with_config(CacheConfig {
            shards: 1,
            capacity: Some(2),
            ttl: None,
        });
        assert_eq!(cache.capacity(), Some(2));
        let engine = Counting(AtomicUsize::new(0));
        cache.get_or_search(&engine, "a", 1);
        cache.get_or_search(&engine, "b", 1);
        // Touch "a" so "b" is now the LRU entry.
        cache.get_or_search(&engine, "a", 1);
        cache.get_or_search(&engine, "c", 1); // evicts "b"
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // "a" and "c" still hit; "b" re-searches.
        let calls = engine.0.load(Ordering::Relaxed);
        cache.get_or_search(&engine, "a", 1);
        cache.get_or_search(&engine, "c", 1);
        assert_eq!(engine.0.load(Ordering::Relaxed), calls, "a and c cached");
        cache.get_or_search(&engine, "b", 1);
        assert_eq!(engine.0.load(Ordering::Relaxed), calls + 1, "b re-searched");
    }

    #[test]
    fn eviction_never_changes_results() {
        let cache = QueryCache::with_config(CacheConfig {
            shards: 1,
            capacity: Some(1),
            ttl: None,
        });
        let engine = Counting(AtomicUsize::new(0));
        let first = cache.get_or_search(&engine, "melisse", 5);
        cache.get_or_search(&engine, "louvre", 5); // evicts "melisse"
        let again = cache.get_or_search(&engine, "melisse", 5);
        assert_eq!(first, again, "evict-then-rehit must be bit-identical");
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn ttl_expires_entries() {
        let cache = QueryCache::with_config(CacheConfig {
            shards: 4,
            capacity: None,
            ttl: Some(Duration::from_millis(40)),
        });
        let engine = Counting(AtomicUsize::new(0));
        let fresh = cache.get_or_search(&engine, "melisse", 3);
        assert_eq!(
            cache.get_or_search(&engine, "melisse", 3),
            fresh,
            "within TTL: a hit"
        );
        assert_eq!(engine.0.load(Ordering::Relaxed), 1);
        std::thread::sleep(Duration::from_millis(120));
        let stale_rehit = cache.get_or_search(&engine, "melisse", 3);
        assert_eq!(engine.0.load(Ordering::Relaxed), 2, "expired → re-search");
        assert_eq!(stale_rehit, fresh, "expiry never changes the result");
        let stats = cache.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn capacity_smaller_than_shard_count_clamps_the_shards() {
        // 64 shards over capacity 3 would round the per-shard split up
        // to one entry per shard — 64 entries. The constructor clamps
        // the shard count instead, so the bound holds exactly.
        let cache = QueryCache::with_config(CacheConfig {
            shards: 64,
            capacity: Some(3),
            ttl: None,
        });
        assert_eq!(cache.capacity(), Some(3));
        let engine = Counting(AtomicUsize::new(0));
        for i in 0..32 {
            cache.get_or_search(&engine, &format!("q{i}"), 1);
        }
        assert!(
            cache.len() <= 3,
            "cache holds {} entries over a capacity of 3",
            cache.len()
        );
        assert!(cache.stats().evictions >= 29);
    }

    #[test]
    fn zero_ttl_expires_immediately_but_never_changes_results() {
        let cache = QueryCache::with_config(CacheConfig {
            shards: 2,
            capacity: None,
            ttl: Some(Duration::ZERO),
        });
        let engine = Counting(AtomicUsize::new(0));
        let first = cache.get_or_search(&engine, "melisse", 3);
        let second = cache.get_or_search(&engine, "melisse", 3);
        assert_eq!(first, second, "expiry must never change a result");
        assert_eq!(
            engine.0.load(Ordering::Relaxed),
            2,
            "ttl == 0 answers every lookup as a miss"
        );
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.expired, 1, "the re-lookup found and dropped a corpse");
        // Nothing survives export either: every entry is already stale.
        assert!(cache.export_entries().is_empty());
    }

    #[test]
    fn export_skips_pending_and_restore_serves_hits() {
        let cache = QueryCache::new(4);
        let engine = Counting(AtomicUsize::new(0));
        cache.get_or_search(&engine, "melisse", 3);
        cache.get_or_search(&engine, "louvre", 2);
        let exported = cache.export_entries();
        assert_eq!(exported.len(), 2);
        assert_eq!(
            exported
                .iter()
                .map(|e| (e.query.as_str(), e.k))
                .collect::<Vec<_>>(),
            vec![("louvre", 2), ("melisse", 3)],
            "export order is sorted (query, k)"
        );

        let warm = QueryCache::new(4);
        assert_eq!(warm.restore_entries(exported.clone()), 2);
        let warm_engine = Counting(AtomicUsize::new(0));
        let hit = warm.get_or_search(&warm_engine, "melisse", 3);
        assert_eq!(hit, cache.get_or_search(&engine, "melisse", 3));
        assert_eq!(
            warm_engine.0.load(Ordering::Relaxed),
            0,
            "restored entries must answer without re-searching"
        );
        assert_eq!(warm.stats().hits, 1);
        assert_eq!(warm.stats().misses, 0, "restoration is not traffic");

        // Live entries win over a snapshot replayed on top of them.
        assert_eq!(warm.restore_entries(exported), 0);
    }

    #[test]
    fn restore_respects_ttl_and_capacity() {
        let cache = QueryCache::new(2);
        let engine = Counting(AtomicUsize::new(0));
        for q in ["a", "b", "c"] {
            cache.get_or_search(&engine, q, 1);
        }
        let mut exported = cache.export_entries();
        // Pretend "a" sat in the cache for an hour before the export.
        exported
            .iter_mut()
            .find(|e| e.query == "a")
            .expect("exported")
            .age = Duration::from_secs(3600);

        // A TTL-bearing cache drops the entry that is already past its
        // lease; the fresh ones land with their clocks rebased.
        let ttl_cache = QueryCache::with_config(CacheConfig {
            shards: 2,
            capacity: None,
            ttl: Some(Duration::from_secs(60)),
        });
        assert_eq!(ttl_cache.restore_entries(exported.clone()), 2);
        let counting = Counting(AtomicUsize::new(0));
        ttl_cache.get_or_search(&counting, "b", 1);
        ttl_cache.get_or_search(&counting, "c", 1);
        assert_eq!(counting.0.load(Ordering::Relaxed), 0, "b and c restored");
        ttl_cache.get_or_search(&counting, "a", 1);
        assert_eq!(counting.0.load(Ordering::Relaxed), 1, "a was already stale");

        // A smaller cache enforces its own capacity during restore.
        let small = QueryCache::with_config(CacheConfig {
            shards: 1,
            capacity: Some(1),
            ttl: None,
        });
        small.restore_entries(exported);
        assert!(small.len() <= 1, "restore must respect the capacity bound");
    }

    #[test]
    fn pending_flights_are_never_evicted() {
        use std::sync::mpsc;

        /// Engine whose first search blocks until released.
        struct Gated {
            release: Mutex<Option<mpsc::Receiver<()>>>,
        }
        impl SearchEngine for Gated {
            fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
                if query == "slow" {
                    if let Some(rx) = self.release.lock().unwrap().take() {
                        rx.recv().unwrap();
                    }
                }
                (0..k)
                    .map(|i| SearchResult {
                        url: format!("http://g/{query}/{i}"),
                        title: "t".into(),
                        snippet: "s".into(),
                    })
                    .collect()
            }
        }

        let (tx, rx) = mpsc::channel();
        let engine = Arc::new(Gated {
            release: Mutex::new(Some(rx)),
        });
        let cache = Arc::new(QueryCache::with_config(CacheConfig {
            shards: 1,
            capacity: Some(1),
            ttl: None,
        }));
        std::thread::scope(|s| {
            let c = Arc::clone(&cache);
            let e = Arc::clone(&engine);
            let slow = s.spawn(move || c.get_or_search(e.as_ref(), "slow", 2));
            // While "slow" is in flight, fill the shard past capacity.
            std::thread::sleep(Duration::from_millis(30));
            for q in ["a", "b", "c"] {
                cache.get_or_search(engine.as_ref(), q, 2);
            }
            tx.send(()).unwrap();
            let r = slow.join().expect("slow search panicked");
            assert_eq!(r.len(), 2, "in-flight search survived eviction pressure");
        });
        assert!(cache.len() <= 1 + 1, "capacity still honoured after flight");
        assert!(cache.stats().evictions >= 2);
    }
}
