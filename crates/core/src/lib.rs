//! `teda-core` — the paper's contribution: discovery and annotation of
//! entities in tables.
//!
//! Given a table `T` and a set of target types Γ from an ontology, the
//! algorithm (§5) finds the rows holding entities of those types and the
//! cells holding their names, in three steps:
//!
//! 1. **Pre-processing** ([`preprocess`]) — rule out cells that cannot
//!    name entities: pattern-shaped values (phones, URLs, emails, numbers,
//!    coordinates), verbose descriptions, and cells in GFT
//!    `Location`/`Date`/`Number` columns.
//! 2. **Annotation** ([`annotate`]) — query the search engine with each
//!    remaining cell (optionally disambiguated with spatial context from
//!    the same row, [`query`]); classify the top-k snippets; annotate with
//!    type `t_max` when more than `k/2` snippets agree (Eq. 1:
//!    `S_ij = s_t / k`).
//! 3. **Post-processing** ([`postprocess`]) — eliminate spurious
//!    annotations with the column-coherence score (Eq. 2:
//!    `S_j = Σ_i ln(S_ij / o_ij + 1)`), keeping each type's annotations
//!    only in its winning column.
//!
//! The crate also provides the classifier trainer of §5.2.1 ([`trainer`]),
//! the TIN/TIS baselines of §6.2 ([`baselines`]), the Limaye-style
//! catalogue annotator of §6.3 ([`catalogue_annotator`]), the
//! catalogue-first/Web-fallback hybrid the paper sketches as future work
//! ([`hybrid`]), and gold-standard evaluation with the paper's P/R/F
//! definitions ([`evaluate`]).

pub mod annotate;
pub mod baselines;
pub mod cache;
pub mod catalogue_annotator;
pub mod cluster;
pub mod config;
pub mod evaluate;
pub mod hybrid;
pub mod model;
pub mod pipeline;
pub mod postprocess;
pub mod preprocess;
pub mod query;
pub mod report;
pub mod stream;
pub mod trainer;

pub use annotate::{annotate_cells, annotate_cells_par, CellAnnotation};
pub use cache::{CacheConfig, CacheEntrySnapshot, CacheStats, CachedEngine, QueryCache};
pub use config::AnnotatorConfig;
pub use evaluate::evaluate_type;
pub use model::{SnippetClassifier, TypeLabels};
pub use pipeline::{Annotator, BatchAnnotator, TableAnnotations};
pub use stream::{
    default_max_in_flight, table_channel, AnnotatedTable, AnnotationSink, ChannelSource, Collect,
    FeedClosed, IntoArcTable, IterSource, SliceSource, SourceError, StreamSummary, TableFeed,
    TableSource, VecSource,
};
