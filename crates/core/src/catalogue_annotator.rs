//! The catalogue-based comparator (the Limaye-style annotator of §6.3).
//!
//! State-of-the-art annotators "assign annotations to tables based on a
//! pre-compiled catalogue of entities" — they are precise on *known*
//! entities and blind to unknown ones. This annotator looks every
//! candidate cell up in the catalogue by normalized name; a hit whose
//! catalogued type is unambiguous (within the target set) yields an
//! annotation with score 1.0.

use teda_kb::{Catalogue, EntityType};
use teda_tabular::{CellId, Table};

use crate::annotate::CellAnnotation;

/// Annotates candidates by catalogue lookup.
pub fn catalogue_annotate(
    table: &Table,
    candidates: &[CellId],
    catalogue: &Catalogue,
    targets: &[EntityType],
) -> Vec<CellAnnotation> {
    let mut out = Vec::new();
    for &cell in candidates {
        let content = table.cell_at(cell);
        // Normalize once per cell; already-clean content allocates nothing.
        let normalized = teda_text::similarity::normalize_name_cow(content);
        let hits = catalogue.lookup_normalized(normalized.as_ref());
        if hits.is_empty() {
            continue;
        }
        // Restrict to target types, then require a single consistent type
        // (an ambiguous name — restaurant vs jazz label — is unusable
        // without context, which a pure catalogue lookup does not have).
        let mut target_types: Vec<EntityType> = hits
            .iter()
            .map(|&(_, t)| t)
            .filter(|t| targets.contains(t))
            .collect();
        target_types.sort();
        target_types.dedup();
        if let [etype] = target_types.as_slice() {
            out.push(CellAnnotation {
                cell,
                etype: *etype,
                score: 1.0,
                votes: 0,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use teda_kb::EntityId;

    fn catalogue() -> Catalogue {
        let mut c = Catalogue::default();
        c.insert("Melisse", EntityId(0), EntityType::Restaurant);
        c.insert("Louvre Museum", EntityId(1), EntityType::Museum);
        c.insert("Aurora", EntityId(2), EntityType::Restaurant);
        c.insert("Aurora", EntityId(3), EntityType::Hotel); // ambiguous
        c
    }

    fn table() -> Table {
        Table::builder(1)
            .row(vec!["Melisse"])
            .unwrap()
            .row(vec!["louvre   museum"]) // normalization test
            .unwrap()
            .row(vec!["Aurora"])
            .unwrap()
            .row(vec!["Completely Unknown"])
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn known_entities_annotated() {
        let t = table();
        let candidates: Vec<CellId> = t.cell_ids().collect();
        let anns = catalogue_annotate(
            &t,
            &candidates,
            &catalogue(),
            &[
                EntityType::Restaurant,
                EntityType::Museum,
                EntityType::Hotel,
            ],
        );
        assert_eq!(anns.len(), 2);
        assert_eq!(anns[0].etype, EntityType::Restaurant);
        assert_eq!(anns[1].etype, EntityType::Museum);
        assert!(anns.iter().all(|a| a.score == 1.0));
    }

    #[test]
    fn ambiguous_catalogue_names_are_skipped() {
        let t = table();
        let anns = catalogue_annotate(
            &t,
            &[CellId::new(2, 0)],
            &catalogue(),
            &[EntityType::Restaurant, EntityType::Hotel],
        );
        assert!(anns.is_empty(), "Aurora is restaurant-or-hotel ambiguous");
    }

    #[test]
    fn ambiguity_outside_targets_is_harmless() {
        // If only Restaurant is targeted, the Hotel reading of "Aurora"
        // does not block the annotation.
        let t = table();
        let anns = catalogue_annotate(
            &t,
            &[CellId::new(2, 0)],
            &catalogue(),
            &[EntityType::Restaurant],
        );
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].etype, EntityType::Restaurant);
    }

    #[test]
    fn unknown_entities_are_invisible() {
        // The paper's core criticism: catalogue annotators cannot discover.
        let t = table();
        let anns = catalogue_annotate(
            &t,
            &[CellId::new(3, 0)],
            &catalogue(),
            &[EntityType::Restaurant],
        );
        assert!(anns.is_empty());
    }
}
