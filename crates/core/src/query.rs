//! Query construction and spatial disambiguation (§5.2.2).
//!
//! "Tables that have information on these entities typically contain their
//! addresses … the query that is submitted to the search engine can be
//! augmented with this spatial information in order to disambiguate it."
//!
//! The spatial context of a table is built once: every cell in a
//! `Location` column (or detected as address/coordinates in untyped
//! columns) is geocoded into its candidate set `L_{i,j}`, the §5.2.2
//! voting graph picks an interpretation per cell, and each row is assigned
//! the city of its chosen interpretation. Queries for cells in that row
//! are then suffixed with the city name — "Melisse" becomes
//! "Melisse Santa Monica".

use std::collections::HashMap;

use teda_geo::disambiguate::{disambiguate, DisambiguationConfig};
use teda_geo::{GeocodeCache, Geocoder, SimGeocoder};
use teda_tabular::detect::{detect, ValueKind};
use teda_tabular::{CellId, ColumnType, Table};

use crate::config::AnnotatorConfig;

/// Per-row disambiguated spatial context.
#[derive(Debug, Clone, Default)]
pub struct SpatialContext {
    city_by_row: HashMap<usize, String>,
}

impl SpatialContext {
    /// The disambiguated city name for `row`, if any.
    pub fn city_for_row(&self, row: usize) -> Option<&str> {
        self.city_by_row.get(&row).map(String::as_str)
    }

    /// Number of rows with spatial context.
    pub fn len(&self) -> usize {
        self.city_by_row.len()
    }

    /// Whether no row has spatial context.
    pub fn is_empty(&self) -> bool {
        self.city_by_row.is_empty()
    }

    /// Builds the query for a cell: the raw content, suffixed with the
    /// row's city when available.
    pub fn build_query(&self, table: &Table, cell: CellId) -> String {
        let content = table.cell_at(cell);
        match self.city_for_row(cell.row) {
            Some(city) => format!("{content} {city}"),
            None => content.to_owned(),
        }
    }
}

/// Builds the spatial context for `table` by geocoding its spatial cells
/// and running the voting-graph disambiguation.
pub fn build_spatial_context(
    table: &Table,
    geocoder: &SimGeocoder,
    config: &AnnotatorConfig,
) -> SpatialContext {
    build_spatial_context_cached(table, geocoder, None, config)
}

/// [`build_spatial_context`] with an optional address memo: when `memo`
/// is given, each distinct address string is geocoded once per memo
/// lifetime (one geocoder round-trip per distinct address per corpus).
/// The candidate sets — and therefore the disambiguation and the final
/// context — are identical with or without the memo.
pub fn build_spatial_context_cached(
    table: &Table,
    geocoder: &SimGeocoder,
    memo: Option<&GeocodeCache>,
    config: &AnnotatorConfig,
) -> SpatialContext {
    // 1. Collect spatial cells: GFT Location columns, plus address /
    //    coordinate-shaped cells in untyped columns (the paper defers
    //    general spatial-column detection to Borges et al.; the syntactic
    //    detectors are our stand-in).
    let mut spatial_cells: Vec<CellId> = Vec::new();
    for id in table.cell_ids() {
        let ctype = table.column_type(id.col);
        let is_spatial = match ctype {
            ColumnType::Location => true,
            ColumnType::Unknown | ColumnType::Text => {
                matches!(
                    detect(table.cell_at(id)),
                    ValueKind::Address | ValueKind::Coordinates
                )
            }
            _ => false,
        };
        if is_spatial && !table.cell_at(id).trim().is_empty() {
            spatial_cells.push(id);
        }
    }
    if spatial_cells.is_empty() {
        return SpatialContext::default();
    }

    // 2. Geocode each spatial cell into its candidate set L_{i,j},
    //    through the distinct-address memo when one is attached.
    let cells: Vec<(CellId, Vec<teda_geo::LocationId>)> = spatial_cells
        .iter()
        .map(|&id| {
            let address = table.cell_at(id);
            let cands = match memo {
                Some(memo) => memo.get_or_geocode(geocoder, address).to_vec(),
                None => geocoder.geocode(address),
            };
            (id, cands)
        })
        .filter(|(_, cands)| !cands.is_empty())
        .collect();
    if cells.is_empty() {
        return SpatialContext::default();
    }

    // 3. Voting-graph disambiguation (§5.2.2).
    let result = disambiguate(
        geocoder.gazetteer(),
        &cells,
        DisambiguationConfig {
            seed: config.seed,
            ..DisambiguationConfig::default()
        },
    );

    // 4. Per row, the city of the chosen interpretation. When several
    //    spatial cells land in one row, the first (leftmost) wins.
    let gaz = geocoder.gazetteer();
    let mut city_by_row: HashMap<usize, String> = HashMap::new();
    let mut sorted: Vec<&(CellId, Vec<teda_geo::LocationId>)> = cells.iter().collect();
    sorted.sort_by_key(|(id, _)| (id.row, id.col));
    for (id, _) in sorted {
        if city_by_row.contains_key(&id.row) {
            continue;
        }
        let Some(loc) = result.interpretation(*id) else {
            continue;
        };
        if let Some(city) = gaz.city_of(loc) {
            city_by_row.insert(id.row, gaz.location(city).name.clone());
        }
    }
    SpatialContext { city_by_row }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use teda_geo::Gazetteer;

    fn geocoder() -> SimGeocoder {
        SimGeocoder::instant(Arc::new(Gazetteer::figure7()))
    }

    fn config() -> AnnotatorConfig {
        AnnotatorConfig::default()
    }

    #[test]
    fn rows_get_disambiguated_cities() {
        // Name | Address(Location): Pennsylvania Avenue next to an
        // unambiguous "Washington" mention in another row's city cell.
        let t = Table::builder(2)
            .column_type(1, ColumnType::Location)
            .row(vec![
                "White House Grill",
                "1600 Pennsylvania Avenue, Washington",
            ])
            .unwrap()
            .row(vec!["Harbour Cafe", "Clarksville Street, TX"])
            .unwrap()
            .build()
            .unwrap();
        let ctx = build_spatial_context(&t, &geocoder(), &config());
        assert_eq!(ctx.city_for_row(0), Some("Washington"));
        // Clarksville Street, TX is ambiguous (Paris TX / Bogata TX) but
        // both are cities in Texas; either interpretation yields a city.
        assert!(ctx.city_for_row(1).is_some());
    }

    #[test]
    fn query_augmentation() {
        let t = Table::builder(2)
            .column_type(1, ColumnType::Location)
            .row(vec!["Melisse", "Pennsylvania Avenue, Washington"])
            .unwrap()
            .build()
            .unwrap();
        let ctx = build_spatial_context(&t, &geocoder(), &config());
        let q = ctx.build_query(&t, CellId::new(0, 0));
        assert_eq!(q, "Melisse Washington");
    }

    #[test]
    fn no_spatial_columns_means_raw_queries() {
        let t = Table::builder(1)
            .row(vec!["James Lee"])
            .unwrap()
            .build()
            .unwrap();
        let ctx = build_spatial_context(&t, &geocoder(), &config());
        assert!(ctx.is_empty());
        assert_eq!(ctx.build_query(&t, CellId::new(0, 0)), "James Lee");
    }

    #[test]
    fn address_cells_in_untyped_columns_are_used() {
        // Web table: no GFT types, but the address shape is detected.
        let t = Table::builder(2)
            .column_types(vec![ColumnType::Unknown, ColumnType::Unknown])
            .unwrap()
            .row(vec!["Some Place", "1600 Pennsylvania Avenue, Washington"])
            .unwrap()
            .build()
            .unwrap();
        let ctx = build_spatial_context(&t, &geocoder(), &config());
        assert_eq!(ctx.city_for_row(0), Some("Washington"));
    }

    #[test]
    fn unknown_addresses_are_ignored() {
        let t = Table::builder(2)
            .column_type(1, ColumnType::Location)
            .row(vec!["X", "99 Nowhere Road, Atlantis"])
            .unwrap()
            .build()
            .unwrap();
        let ctx = build_spatial_context(&t, &geocoder(), &config());
        assert!(ctx.is_empty());
    }
}
