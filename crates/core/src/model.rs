//! The snippet classifier: feature extraction + a trained model + the
//! class ↔ type mapping.
//!
//! §5.2.1 trains one multi-class classifier over Γ. Snippets that describe
//! none of the target types need somewhere to go, so the label space is
//! Γ ∪ {Other}; `Other` predictions never produce annotations (a snippet
//! voting "Other" simply isn't a vote for any target type, which is how
//! the majority rule abstains on junk cells).

use teda_classifier::{Classifier, NaiveBayes, OneVsRest, PegasosSvm, SmoSvm};
use teda_kb::EntityType;
use teda_text::FeatureExtractor;

/// The label space: class `i < types.len()` is `types[i]`; optionally a
/// trailing `Other` class.
///
/// The paper's classifier is trained over Γ only (§5.2.1) — junk snippets
/// are forced into some target class, which is exactly what the §5.3
/// post-processing exists to mop up. [`TypeLabels::new`] reproduces that
/// closed label space; [`TypeLabels::with_other`] adds an explicit reject
/// class trained on non-target snippets (an extension this repository
/// evaluates as an ablation).
#[derive(Debug, Clone, PartialEq)]
pub struct TypeLabels {
    types: Vec<EntityType>,
    has_other: bool,
}

impl TypeLabels {
    /// The paper's closed label space: Γ only.
    pub fn new(types: Vec<EntityType>) -> Self {
        assert!(!types.is_empty(), "need at least one target type");
        TypeLabels {
            types,
            has_other: false,
        }
    }

    /// Γ plus a trailing `Other` reject class.
    pub fn with_other(types: Vec<EntityType>) -> Self {
        assert!(!types.is_empty(), "need at least one target type");
        TypeLabels {
            types,
            has_other: true,
        }
    }

    /// Total classes (targets, plus Other when present).
    pub fn n_classes(&self) -> usize {
        self.types.len() + usize::from(self.has_other)
    }

    /// The class index of the `Other` label, when present.
    pub fn other_class(&self) -> Option<usize> {
        self.has_other.then_some(self.types.len())
    }

    /// The class index of a target type.
    pub fn class_of(&self, etype: EntityType) -> Option<usize> {
        self.types.iter().position(|&t| t == etype)
    }

    /// The type of a class index (`None` for Other / out of range).
    pub fn type_of(&self, class: usize) -> Option<EntityType> {
        self.types.get(class).copied()
    }

    /// The target types in class order.
    pub fn types(&self) -> &[EntityType] {
        &self.types
    }
}

/// A trained model of either family the paper evaluates.
#[derive(Debug, Clone)]
pub enum AnyModel {
    /// Linear SVM one-vs-rest (Pegasos-trained; the scale-friendly
    /// counterpart of the paper's C-SVC).
    SvmLinear(OneVsRest<PegasosSvm>),
    /// RBF C-SVC one-vs-rest (SMO-trained; the paper's exact setup).
    SvmRbf(OneVsRest<SmoSvm>),
    /// Multinomial Naive Bayes (the paper's LingPipe configuration).
    Bayes(NaiveBayes),
}

impl Classifier for AnyModel {
    fn n_classes(&self) -> usize {
        match self {
            AnyModel::SvmLinear(m) => m.n_classes(),
            AnyModel::SvmRbf(m) => m.n_classes(),
            AnyModel::Bayes(m) => m.n_classes(),
        }
    }

    fn scores(&self, x: &teda_text::SparseVector) -> Vec<f64> {
        match self {
            AnyModel::SvmLinear(m) => m.scores(x),
            AnyModel::SvmRbf(m) => m.scores(x),
            AnyModel::Bayes(m) => m.scores(x),
        }
    }
}

/// Feature extractor + model + labels: everything needed to classify one
/// snippet into Γ ∪ {Other}.
#[derive(Debug, Clone)]
pub struct SnippetClassifier {
    extractor: FeatureExtractor,
    model: AnyModel,
    labels: TypeLabels,
}

impl SnippetClassifier {
    /// Assembles a classifier. The extractor's vocabulary must be the one
    /// the model was trained with.
    pub fn new(extractor: FeatureExtractor, model: AnyModel, labels: TypeLabels) -> Self {
        SnippetClassifier {
            extractor,
            model,
            labels,
        }
    }

    /// Classifies one snippet: `Some(type)` when the predicted class is a
    /// target type, `None` for Other or for a rejected margin.
    ///
    /// SVM models additionally reject snippets whose best one-vs-rest
    /// decision value is negative — the snippet lies outside every
    /// positive halfspace, so no class claims it. Naive Bayes has no
    /// analogous natural threshold (log-joint scores are always
    /// comparable) and therefore always commits, which is the mechanism
    /// behind its poor Table 1 precision despite excellent Table 2 test
    /// accuracy.
    ///
    /// Takes `&self`: the vocabulary is frozen at inference time, so one
    /// classifier can serve many threads concurrently (the batch
    /// annotation engine shares a single instance across its workers).
    pub fn classify(&self, snippet: &str) -> Option<EntityType> {
        let x = self.extractor.transform(snippet);
        self.classify_vector(&x)
    }

    /// Classifies an already-featurized snippet (same decision rule as
    /// [`classify`](Self::classify)). Lets callers that need both the
    /// vector and the label — e.g. the clustered voting mode — featurize
    /// exactly once.
    pub fn classify_vector(&self, x: &teda_text::SparseVector) -> Option<EntityType> {
        if x.is_empty() {
            return None;
        }
        let scores = self.model.scores(x);
        let (best, best_score) = scores
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))?;
        let margin_based = matches!(self.model, AnyModel::SvmLinear(_) | AnyModel::SvmRbf(_));
        if margin_based && best_score < 0.0 {
            return None;
        }
        self.labels.type_of(best)
    }

    /// Extracts the feature vector of a snippet against the frozen
    /// training vocabulary (used by the clustering annotation mode to
    /// measure snippet similarity in the same space the model sees).
    pub fn vectorize(&self, snippet: &str) -> teda_text::SparseVector {
        self.extractor.transform(snippet)
    }

    /// The label space.
    pub fn labels(&self) -> &TypeLabels {
        &self.labels
    }

    /// The underlying model (for ablation reports).
    pub fn model(&self) -> &AnyModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teda_classifier::naive_bayes::NaiveBayesConfig;
    use teda_classifier::Dataset;

    #[test]
    fn label_space_layout() {
        let l = TypeLabels::with_other(vec![EntityType::Restaurant, EntityType::Museum]);
        assert_eq!(l.n_classes(), 3);
        assert_eq!(l.other_class(), Some(2));
        assert_eq!(l.class_of(EntityType::Museum), Some(1));
        assert_eq!(l.class_of(EntityType::Hotel), None);
        assert_eq!(l.type_of(0), Some(EntityType::Restaurant));
        assert_eq!(l.type_of(2), None, "Other maps to no type");
    }

    #[test]
    fn classify_maps_other_to_none() {
        // Train a tiny NB: class 0 = Restaurant on "menu", class 1 (Other)
        // on "random".
        let mut fx = FeatureExtractor::new();
        let x0 = fx.fit_transform("menu dining cuisine");
        let x1 = fx.fit_transform("random words here");
        let mut data = Dataset::new(2, fx.dim());
        for _ in 0..5 {
            data.push(x0.clone(), 0);
            data.push(x1.clone(), 1);
        }
        let nb = NaiveBayes::train(&data, NaiveBayesConfig::default());
        let labels = TypeLabels::with_other(vec![EntityType::Restaurant]);
        let clf = SnippetClassifier::new(fx, AnyModel::Bayes(nb), labels);
        assert_eq!(
            clf.classify("menu cuisine tonight"),
            Some(EntityType::Restaurant)
        );
        assert_eq!(clf.classify("random words"), None);
        assert_eq!(clf.classify(""), None, "empty snippet abstains");
    }

    #[test]
    fn nan_scores_do_not_panic_the_argmax() {
        // A NaN feature value propagates NaN into every class score; the
        // argmax must degrade (total_cmp ranks NaN above finite scores)
        // instead of panicking mid-classification, and stay deterministic.
        let mut fx = FeatureExtractor::new();
        let x0 = fx.fit_transform("menu dining cuisine");
        let x1 = fx.fit_transform("gallery exhibition art");
        let mut data = Dataset::new(2, fx.dim());
        for _ in 0..5 {
            data.push(x0.clone(), 0);
            data.push(x1.clone(), 1);
        }
        let nb = NaiveBayes::train(&data, NaiveBayesConfig::default());
        let labels = TypeLabels::new(vec![EntityType::Restaurant, EntityType::Museum]);
        let clf = SnippetClassifier::new(fx, AnyModel::Bayes(nb), labels);
        let poisoned = teda_text::SparseVector::from_pairs(vec![(0, f64::NAN)]);
        let a = clf.classify_vector(&poisoned);
        let b = clf.classify_vector(&poisoned);
        assert_eq!(a, b, "NaN classification must be deterministic");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_label_space_rejected() {
        TypeLabels::new(vec![]);
    }
}
