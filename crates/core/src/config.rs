//! Annotator configuration.

use teda_kb::EntityType;

use crate::cluster::ClusterConfig;

/// Configuration of the annotation pipeline (§5).
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatorConfig {
    /// The target types Γ.
    pub targets: Vec<EntityType>,
    /// Snippets requested per query (the paper's `k`; evaluation used 10).
    pub top_k: usize,
    /// Verbose-value threshold: cells with more words than this are ruled
    /// out by pre-processing ("cells containing long values, such as
    /// verbose descriptions", §5.1).
    pub long_value_words: usize,
    /// Whether to run the §5.3 spurious-annotation elimination.
    pub use_postprocessing: bool,
    /// Whether to disambiguate queries with spatial context (§5.2.2).
    pub use_disambiguation: bool,
    /// Whether to cluster snippets and vote per cluster — the paper's
    /// future-work ambiguity treatment (§5.2), off by default.
    pub use_clustering: bool,
    /// Clustering parameters (only read when `use_clustering`).
    pub cluster: ClusterConfig,
    /// Seed for the disambiguation tie-breaks.
    pub seed: u64,
}

impl Default for AnnotatorConfig {
    fn default() -> Self {
        AnnotatorConfig {
            targets: EntityType::TARGETS.to_vec(),
            top_k: 10,
            long_value_words: 10,
            use_postprocessing: true,
            use_disambiguation: false,
            use_clustering: false,
            cluster: ClusterConfig::default(),
            seed: 0x7eda,
        }
    }
}

impl AnnotatorConfig {
    /// The majority threshold: a cell is annotated with `t_max` only when
    /// strictly more than `k/2` snippets vote for it (§5.2.1).
    pub fn majority_threshold(&self) -> usize {
        self.top_k / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper() {
        let c = AnnotatorConfig::default();
        assert_eq!(c.top_k, 10);
        assert_eq!(c.majority_threshold(), 5); // "> k/2" ⇒ ≥ 6 votes
        assert!(c.use_postprocessing);
        assert!(!c.use_disambiguation);
        assert_eq!(c.targets.len(), 12);
    }

    #[test]
    fn odd_k_threshold() {
        let c = AnnotatorConfig {
            top_k: 7,
            ..AnnotatorConfig::default()
        };
        assert_eq!(c.majority_threshold(), 3); // > 3 of 7
    }
}
