//! Post-processing (§5.3): elimination of spurious annotations.
//!
//! Cells like the repeated "Museum" category column of Figure 8 get
//! misannotated because their snippets genuinely describe the type. The
//! paper's countermeasure is the column-coherence score, Eq. 2:
//!
//! ```text
//! S_j = Σ_i ln( (1 / o_ij) · S_ij + 1 )
//! ```
//!
//! where `o_ij` is the number of occurrences of the content of `T(i,j)`
//! within column `j`. "Ideally, the column with the highest score is the
//! one that has references to entities of type t"; annotations of `t`
//! outside that column are eliminated. The `1/o_ij` factor discounts
//! columns of repeated values, which is exactly what defeats Figure 8.

use std::collections::HashMap;

use teda_kb::EntityType;
use teda_tabular::Table;

use crate::annotate::CellAnnotation;

/// Eq. 2 column scores for type `etype`: a map column index → `S_j`
/// (columns with no annotation of the type are absent).
pub fn column_scores(
    table: &Table,
    annotations: &[CellAnnotation],
    etype: EntityType,
) -> HashMap<usize, f64> {
    let mut scores: HashMap<usize, f64> = HashMap::new();
    // Occurrence counts are per column; compute lazily and cache.
    let mut occ_cache: HashMap<usize, HashMap<String, usize>> = HashMap::new();
    for ann in annotations.iter().filter(|a| a.etype == etype) {
        let j = ann.cell.col;
        let occ = occ_cache.entry(j).or_insert_with(|| {
            table
                .column_occurrences(j)
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect()
        });
        let content = table.cell_at(ann.cell);
        let o_ij = occ.get(content).copied().unwrap_or(1) as f64;
        *scores.entry(j).or_insert(0.0) += (ann.score / o_ij + 1.0).ln();
    }
    scores
}

/// Applies §5.3: for each annotated type, keep only the annotations in the
/// column with the highest Eq. 2 score (ties break to the leftmost
/// column, deterministically).
pub fn eliminate_spurious(table: &Table, annotations: Vec<CellAnnotation>) -> Vec<CellAnnotation> {
    let mut types: Vec<EntityType> = annotations.iter().map(|a| a.etype).collect();
    types.sort();
    types.dedup();

    let mut keep: Vec<CellAnnotation> = Vec::with_capacity(annotations.len());
    for etype in types {
        let scores = column_scores(table, &annotations, etype);
        let Some(winner) = scores
            // teda-lint: allow(nondeterministic_iteration) -- argmax under the total order (score, leftmost column) with unique column keys is order-independent
            .iter()
            .map(|(&j, &s)| (j, s))
            .max_by(|a, b| {
                a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)) // ties → leftmost column
            })
            .map(|(j, _)| j)
        else {
            continue;
        };
        keep.extend(
            annotations
                .iter()
                .filter(|a| a.etype == etype && a.cell.col == winner)
                .copied(),
        );
    }
    keep.sort_by_key(|a| a.cell);
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use teda_tabular::CellId;

    fn ann(row: usize, col: usize, etype: EntityType, score: f64) -> CellAnnotation {
        CellAnnotation {
            cell: CellId::new(row, col),
            etype,
            score,
            votes: (score * 10.0) as usize,
        }
    }

    /// A Figure 8-style table: names in column 0, the repeated word
    /// "Museum" in column 1.
    fn fig8_table() -> Table {
        let mut b = Table::builder(2);
        for name in [
            "Aurora Gallery",
            "Vesper Collection",
            "Stone Museum",
            "Onyx Gallery",
        ] {
            b.push_row(vec![name, "Museum"]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn eq2_hand_computed() {
        let t = fig8_table();
        // Column 0: two annotations, distinct values (o = 1), scores 0.8.
        // Column 1: two annotations on the repeated value (o = 4), 1.0.
        let anns = vec![
            ann(0, 0, EntityType::Museum, 0.8),
            ann(1, 0, EntityType::Museum, 0.8),
            ann(0, 1, EntityType::Museum, 1.0),
            ann(1, 1, EntityType::Museum, 1.0),
        ];
        let scores = column_scores(&t, &anns, EntityType::Museum);
        let s0 = 2.0 * (0.8f64 / 1.0 + 1.0).ln();
        let s1 = 2.0 * (1.0f64 / 4.0 + 1.0).ln();
        assert!((scores[&0] - s0).abs() < 1e-12);
        assert!((scores[&1] - s1).abs() < 1e-12);
        assert!(
            scores[&0] > scores[&1],
            "distinct names must outscore repeated type words"
        );
    }

    #[test]
    fn figure8_spurious_annotations_eliminated() {
        let t = fig8_table();
        let anns = vec![
            ann(0, 0, EntityType::Museum, 0.8),
            ann(1, 0, EntityType::Museum, 0.7),
            ann(2, 0, EntityType::Museum, 0.9),
            // the "Museum" cells misclassified with full confidence
            ann(0, 1, EntityType::Museum, 1.0),
            ann(1, 1, EntityType::Museum, 1.0),
            ann(2, 1, EntityType::Museum, 1.0),
            ann(3, 1, EntityType::Museum, 1.0),
        ];
        let kept = eliminate_spurious(&t, anns);
        assert_eq!(kept.len(), 3);
        assert!(kept.iter().all(|a| a.cell.col == 0), "{kept:?}");
    }

    #[test]
    fn equal_column_scores_keep_the_leftmost_column() {
        let t = Table::builder(2)
            .row(vec!["Melisse", "Bayona"])
            .unwrap()
            .row(vec!["Chez Marie", "Commander's"])
            .unwrap()
            .build()
            .unwrap();
        // One annotation per column with the same score over distinct
        // values: S_0 == S_1 exactly, so the tie rule decides.
        let anns = vec![
            ann(0, 1, EntityType::Restaurant, 0.8),
            ann(0, 0, EntityType::Restaurant, 0.8),
        ];
        let kept = eliminate_spurious(&t, anns);
        assert_eq!(kept.len(), 1);
        assert_eq!(
            kept[0].cell.col, 0,
            "ties must break to the leftmost column"
        );
    }

    #[test]
    fn nan_scores_degrade_without_panicking() {
        // Under the old partial_cmp argmax a NaN column score tore the
        // whole annotation pass down. total_cmp degrades: NaN sorts
        // above every finite score, so the poisoned column wins, but the
        // pipeline keeps running and the outcome stays deterministic.
        let t = fig8_table();
        let anns = vec![
            ann(0, 0, EntityType::Museum, 0.9),
            ann(0, 1, EntityType::Museum, f64::NAN),
        ];
        let kept = eliminate_spurious(&t, anns.clone());
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].cell.col, 1);
        assert_eq!(
            kept.len(),
            eliminate_spurious(&t, anns).len(),
            "NaN handling must stay deterministic run to run"
        );
    }

    #[test]
    fn types_are_pruned_independently() {
        let t = Table::builder(2)
            .row(vec!["Melisse", "Aurora Gallery"])
            .unwrap()
            .row(vec!["Chez Marie", "Vesper Collection"])
            .unwrap()
            .build()
            .unwrap();
        let anns = vec![
            ann(0, 0, EntityType::Restaurant, 0.9),
            ann(1, 0, EntityType::Restaurant, 0.8),
            ann(0, 1, EntityType::Museum, 0.9),
            ann(1, 1, EntityType::Museum, 0.7),
        ];
        let kept = eliminate_spurious(&t, anns.clone());
        assert_eq!(kept.len(), 4, "both columns win for their own type");
    }

    #[test]
    fn empty_annotations_are_fine() {
        let t = fig8_table();
        assert!(eliminate_spurious(&t, vec![]).is_empty());
        assert!(column_scores(&t, &[], EntityType::Museum).is_empty());
    }

    #[test]
    fn single_stray_annotation_loses_to_a_populated_column() {
        let t = Table::builder(2)
            .row(vec!["Melisse", "review of Melisse"])
            .unwrap()
            .row(vec!["Chez Marie", "tasting menu notes"])
            .unwrap()
            .row(vec!["Bayona", "wine list"])
            .unwrap()
            .build()
            .unwrap();
        let anns = vec![
            ann(0, 0, EntityType::Restaurant, 0.7),
            ann(1, 0, EntityType::Restaurant, 0.8),
            ann(2, 0, EntityType::Restaurant, 0.9),
            ann(0, 1, EntityType::Restaurant, 1.0), // stray review cell
        ];
        let kept = eliminate_spurious(&t, anns);
        assert_eq!(kept.len(), 3);
        assert!(kept.iter().all(|a| a.cell.col == 0));
    }
}
