//! The streaming annotation API: [`TableSource`] in, [`AnnotationSink`]
//! out.
//!
//! The paper's pipeline annotates one table at a time; the first two
//! batch drivers took a fully materialized `Vec<Table>`, so memory
//! scaled with corpus size and every entry point (offline batch, the
//! service, the experiments) re-implemented its own driver loop. This
//! module is the redesigned seam between *where tables come from* and
//! *where annotations go*:
//!
//! * [`TableSource`] — a pull-based, fallible stream of tables. Adapters
//!   cover the common shapes: borrowed slices ([`SliceSource`]), owned
//!   vectors ([`VecSource`]), arbitrary fallible iterators
//!   ([`IterSource`]), and a bounded-channel push handle for live feeds
//!   ([`table_channel`]) whose `push` blocks when the annotator falls
//!   behind — backpressure into the producer, not unbounded buffering.
//! * [`AnnotationSink`] — receives each [`AnnotatedTable`] plus
//!   per-table [`SourceError`]s, in stream order. [`Collect`] preserves
//!   the era of `Vec<TableAnnotations>` return types for callers that
//!   do want everything in memory.
//!
//! The driver between them is
//! [`BatchAnnotator::annotate_stream`](crate::pipeline::BatchAnnotator::annotate_stream):
//! `source → bounded in-flight window → sink`, holding at most
//! `max_in_flight` tables' worth of annotation state live while keeping
//! the output bit-identical to the offline batch path (see
//! `crates/core/src/README.md` for the ordering argument).

use std::borrow::Borrow;
use std::error::Error;
use std::fmt;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};

use teda_tabular::Table;

use crate::pipeline::TableAnnotations;

/// A per-table failure reported by a [`TableSource`] (parse error, I/O
/// error, producer-side fault) or by a streaming driver on behalf of a
/// table it could not annotate.
///
/// One bad table must not sink an unbounded stream, so sources yield
/// errors *in-band* — the stream continues after one — and sinks receive
/// them at the failed table's position.
#[derive(Debug)]
pub struct SourceError {
    message: String,
    cause: Option<Box<dyn Error + Send + Sync>>,
}

impl SourceError {
    /// Wraps an underlying error.
    pub fn new(cause: impl Error + Send + Sync + 'static) -> Self {
        SourceError {
            message: cause.to_string(),
            cause: Some(Box::new(cause)),
        }
    }

    /// A free-form message with no underlying cause.
    pub fn msg(message: impl Into<String>) -> Self {
        SourceError {
            message: message.into(),
            cause: None,
        }
    }

    /// The human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for SourceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.cause.as_deref().map(|e| e as &(dyn Error + 'static))
    }
}

/// A pull-based, fallible stream of tables — the input half of the
/// streaming annotation API.
///
/// Implementations yield `Some(Ok(table))` per table, `Some(Err(e))` for
/// a table that could not be produced (the stream continues), and `None`
/// at end of stream. Drivers pull only as fast as their in-flight window
/// allows, so a source backed by a parser or a socket is naturally
/// throttled — that is the backpressure story.
pub trait TableSource {
    /// What the source yields: an owned [`Table`], an [`Arc<Table>`], or
    /// a borrow — anything a driver can view as a table and move across
    /// its worker threads.
    type Item: Borrow<Table> + Send;

    /// Pulls the next table (or per-table error); `None` ends the stream.
    fn next_table(&mut self) -> Option<Result<Self::Item, SourceError>>;

    /// `(lower, upper)` bound on the tables remaining, `Iterator`-style.
    /// Purely advisory (sinks may preallocate); defaults to unknown.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

/// A source over a borrowed slice — the adapter behind the classic
/// `annotate_corpus(&[Table])` entry points. Infallible.
pub struct SliceSource<'a> {
    tables: std::slice::Iter<'a, Table>,
}

impl<'a> SliceSource<'a> {
    /// Streams `tables` in order.
    pub fn new(tables: &'a [Table]) -> Self {
        SliceSource {
            tables: tables.iter(),
        }
    }
}

impl<'a> TableSource for SliceSource<'a> {
    type Item = &'a Table;

    fn next_table(&mut self) -> Option<Result<&'a Table, SourceError>> {
        self.tables.next().map(Ok)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.tables.size_hint()
    }
}

/// A source that owns its tables. Infallible.
pub struct VecSource {
    tables: std::vec::IntoIter<Table>,
}

impl VecSource {
    /// Streams `tables` in order, consuming them.
    pub fn new(tables: Vec<Table>) -> Self {
        VecSource {
            tables: tables.into_iter(),
        }
    }
}

impl From<Vec<Table>> for VecSource {
    fn from(tables: Vec<Table>) -> Self {
        VecSource::new(tables)
    }
}

impl TableSource for VecSource {
    type Item = Table;

    fn next_table(&mut self) -> Option<Result<Table, SourceError>> {
        self.tables.next().map(Ok)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.tables.size_hint()
    }
}

/// Adapts any fallible iterator into a source — the bridge for lazy
/// generators, parser pipelines and test harnesses.
pub struct IterSource<I> {
    iter: I,
}

impl<I, T> IterSource<I>
where
    I: Iterator<Item = Result<T, SourceError>>,
    T: Borrow<Table> + Send,
{
    /// Streams whatever `iter` yields.
    pub fn new(iter: I) -> Self {
        IterSource { iter }
    }
}

impl<I, T> TableSource for IterSource<I>
where
    I: Iterator<Item = Result<T, SourceError>>,
    T: Borrow<Table> + Send,
{
    type Item = T;

    fn next_table(&mut self) -> Option<Result<T, SourceError>> {
        self.iter.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

/// The feed was dropped on the consuming side; the pushed table is
/// handed back.
#[derive(Debug)]
pub struct FeedClosed<T>(pub T);

impl<T> fmt::Display for FeedClosed<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table feed closed: the consuming source was dropped")
    }
}

impl<T: fmt::Debug> Error for FeedClosed<T> {}

/// The push handle of a [`table_channel`]: the producer half of a live
/// table feed.
///
/// `push` **blocks** while the channel is at capacity — that is the
/// point: a parser thread feeding a slower annotator is throttled to
/// the annotation rate instead of buffering the whole stream. Dropping
/// the feed (or all clones of it) ends the stream cleanly.
#[derive(Clone)]
pub struct TableFeed {
    tx: SyncSender<Result<Table, SourceError>>,
}

impl TableFeed {
    /// Pushes one table, blocking while the channel is full. Errs only
    /// when the consuming [`ChannelSource`] was dropped.
    pub fn push(&self, table: Table) -> Result<(), FeedClosed<Table>> {
        self.tx.send(Ok(table)).map_err(|e| match e.0 {
            Ok(table) => FeedClosed(table),
            Err(_) => unreachable!("pushed an Ok"),
        })
    }

    /// Pushes one table without blocking; hands the table back if the
    /// channel is full right now.
    pub fn try_push(&self, table: Table) -> Result<(), TrySendError<Table>> {
        self.tx.try_send(Ok(table)).map_err(|e| match e {
            TrySendError::Full(Ok(table)) => TrySendError::Full(table),
            TrySendError::Disconnected(Ok(table)) => TrySendError::Disconnected(table),
            _ => unreachable!("pushed an Ok"),
        })
    }

    /// Reports a per-table failure in-band (the stream continues).
    pub fn push_error(&self, error: SourceError) -> Result<(), FeedClosed<SourceError>> {
        self.tx.send(Err(error)).map_err(|e| match e.0 {
            Err(error) => FeedClosed(error),
            Ok(_) => unreachable!("pushed an Err"),
        })
    }
}

/// The pull half of a [`table_channel`].
pub struct ChannelSource {
    rx: Receiver<Result<Table, SourceError>>,
}

impl TableSource for ChannelSource {
    type Item = Table;

    fn next_table(&mut self) -> Option<Result<Table, SourceError>> {
        // A recv error means every feed handle was dropped: end of
        // stream, not a failure.
        self.rx.recv().ok()
    }
}

/// A bounded push-based table feed: returns the producer handle and the
/// [`TableSource`] a driver consumes. At most `capacity` tables buffer
/// between the two; a faster producer blocks in [`TableFeed::push`].
pub fn table_channel(capacity: usize) -> (TableFeed, ChannelSource) {
    let (tx, rx) = mpsc::sync_channel(capacity.max(1));
    (TableFeed { tx }, ChannelSource { rx })
}

/// One annotated table as delivered to an [`AnnotationSink`]: the
/// stream position, the table itself (for sinks that persist or route),
/// and its annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedTable<T> {
    /// 0-based position in the stream (errors occupy positions too).
    pub index: usize,
    /// The annotated table, as the source yielded it.
    pub table: T,
    /// The annotation result, bit-identical to
    /// `BatchAnnotator::annotate_table` on the same table.
    pub annotations: TableAnnotations,
}

/// The output half of the streaming annotation API: receives results
/// and per-table errors **in stream order**, one call per stream
/// position.
///
/// Sinks run on the driver's thread; a slow sink therefore slows the
/// pull rate — backpressure propagates from sink through window to
/// source.
pub trait AnnotationSink<T> {
    /// One table annotated successfully.
    fn on_annotated(&mut self, result: AnnotatedTable<T>);

    /// The table at `index` failed (source-side or admission error); the
    /// stream continues.
    fn on_error(&mut self, index: usize, error: SourceError);
}

/// The sink that preserves the classic return types: collects one
/// `Result<TableAnnotations, SourceError>` per stream position, in
/// order — what `annotate_corpus[_par]` return once unwrapped.
#[derive(Debug, Default)]
pub struct Collect {
    results: Vec<Result<TableAnnotations, SourceError>>,
}

impl Collect {
    /// An empty collector.
    pub fn new() -> Self {
        Collect::default()
    }

    /// One slot per stream position, in order.
    pub fn into_results(self) -> Vec<Result<TableAnnotations, SourceError>> {
        self.results
    }

    /// All annotations, or the first per-table error — the shape the
    /// pre-streaming API returned for infallible inputs.
    pub fn into_annotations(self) -> Result<Vec<TableAnnotations>, SourceError> {
        self.results.into_iter().collect()
    }

    /// Results received so far.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether nothing arrived yet.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }
}

impl<T> AnnotationSink<T> for Collect {
    fn on_annotated(&mut self, result: AnnotatedTable<T>) {
        debug_assert_eq!(result.index, self.results.len(), "sink order violated");
        self.results.push(Ok(result.annotations));
    }

    fn on_error(&mut self, index: usize, error: SourceError) {
        debug_assert_eq!(index, self.results.len(), "sink order violated");
        self.results.push(Err(error));
    }
}

/// Conversion into the `Arc<Table>` the annotation service schedules:
/// free for owned and shared tables, one clone for borrows.
pub trait IntoArcTable: Borrow<Table> {
    /// The table as a shareable handle.
    fn into_arc_table(self) -> Arc<Table>;
}

impl IntoArcTable for Table {
    fn into_arc_table(self) -> Arc<Table> {
        Arc::new(self)
    }
}

impl IntoArcTable for Arc<Table> {
    fn into_arc_table(self) -> Arc<Table> {
        self
    }
}

impl IntoArcTable for &Table {
    fn into_arc_table(self) -> Arc<Table> {
        Arc::new(self.clone())
    }
}

/// What one streaming run did: stream length, failure count, and the
/// observed in-flight high-water mark (always `≤ max_in_flight` — the
/// memory bound the streaming driver exists to provide).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Tables annotated and delivered to the sink.
    pub annotated: usize,
    /// Per-table errors delivered to the sink.
    pub errors: usize,
    /// Most tables ever live in the window at once (pulled from the
    /// source but not yet emitted to the sink).
    pub peak_in_flight: usize,
}

impl StreamSummary {
    /// Stream positions processed (annotations + errors).
    pub fn total(&self) -> usize {
        self.annotated + self.errors
    }
}

/// The default in-flight window of the streaming shims: enough tables
/// to keep every worker busy through skew (same 4× factor as the rayon
/// compat's chunked scheduler) while keeping resident state O(threads),
/// not O(corpus).
pub fn default_max_in_flight() -> usize {
    rayon::current_num_threads().saturating_mul(4).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teda_tabular::ColumnType;

    fn tiny_table(name: &str) -> Table {
        Table::builder(2)
            .name(name)
            .column_type(1, ColumnType::Number)
            .row(vec!["Melisse", "4.5"])
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn slice_source_yields_in_order_with_exact_hint() {
        let tables = vec![tiny_table("a"), tiny_table("b")];
        let mut src = SliceSource::new(&tables);
        assert_eq!(src.size_hint(), (2, Some(2)));
        assert_eq!(src.next_table().unwrap().unwrap().name(), "a");
        assert_eq!(src.next_table().unwrap().unwrap().name(), "b");
        assert!(src.next_table().is_none());
        assert_eq!(src.size_hint(), (0, Some(0)));
    }

    #[test]
    fn vec_source_owns_and_yields() {
        let mut src = VecSource::new(vec![tiny_table("a")]);
        let t = src.next_table().unwrap().unwrap();
        assert_eq!(t.name(), "a");
        assert!(src.next_table().is_none());
    }

    #[test]
    fn iter_source_carries_errors_in_band() {
        let items: Vec<Result<Table, SourceError>> = vec![
            Ok(tiny_table("ok")),
            Err(SourceError::msg("bad table")),
            Ok(tiny_table("after")),
        ];
        let mut src = IterSource::new(items.into_iter());
        assert!(src.next_table().unwrap().is_ok());
        let err = src.next_table().unwrap().unwrap_err();
        assert_eq!(err.message(), "bad table");
        assert!(src.next_table().unwrap().is_ok(), "stream continues");
        assert!(src.next_table().is_none());
    }

    #[test]
    fn channel_blocks_at_capacity_and_ends_on_drop() {
        let (feed, mut source) = table_channel(1);
        feed.push(tiny_table("first")).unwrap();
        // capacity 1: a second non-blocking push must report Full
        match feed.try_push(tiny_table("second")) {
            Err(TrySendError::Full(t)) => assert_eq!(t.name(), "second"),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(source.next_table().unwrap().unwrap().name(), "first");
        feed.push_error(SourceError::msg("mid-stream")).unwrap();
        assert!(source.next_table().unwrap().is_err());
        drop(feed);
        assert!(source.next_table().is_none(), "drop ends the stream");
    }

    #[test]
    fn blocked_push_resumes_when_the_consumer_drains() {
        let (feed, mut source) = table_channel(1);
        feed.push(tiny_table("a")).unwrap();
        let producer = std::thread::spawn(move || {
            // blocks until the consumer pulls "a"
            feed.push(tiny_table("b")).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(source.next_table().unwrap().unwrap().name(), "a");
        producer.join().unwrap();
        assert_eq!(source.next_table().unwrap().unwrap().name(), "b");
    }

    #[test]
    fn push_to_a_dropped_source_hands_the_table_back() {
        let (feed, source) = table_channel(2);
        drop(source);
        let FeedClosed(table) = feed.push(tiny_table("orphan")).unwrap_err();
        assert_eq!(table.name(), "orphan");
    }

    #[test]
    fn collect_preserves_order_and_first_error() {
        let mut sink = Collect::new();
        AnnotationSink::<Table>::on_annotated(
            &mut sink,
            AnnotatedTable {
                index: 0,
                table: tiny_table("a"),
                annotations: TableAnnotations::default(),
            },
        );
        AnnotationSink::<Table>::on_error(&mut sink, 1, SourceError::msg("boom"));
        assert_eq!(sink.len(), 2);
        let results = sink.into_results();
        assert!(results[0].is_ok());
        assert_eq!(results[1].as_ref().unwrap_err().message(), "boom");
    }

    #[test]
    fn into_annotations_unwraps_infallible_streams() {
        let mut sink = Collect::new();
        AnnotationSink::<Table>::on_annotated(
            &mut sink,
            AnnotatedTable {
                index: 0,
                table: tiny_table("a"),
                annotations: TableAnnotations::default(),
            },
        );
        let all = sink.into_annotations().expect("no errors pushed");
        assert_eq!(all.len(), 1);
    }

    #[test]
    fn source_error_exposes_cause_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err = SourceError::new(io);
        assert_eq!(err.message(), "gone");
        assert!(Error::source(&err).is_some());
        assert!(Error::source(&SourceError::msg("plain")).is_none());
    }

    #[test]
    fn into_arc_table_is_identity_for_arcs() {
        let arc = Arc::new(tiny_table("shared"));
        let again = Arc::clone(&arc).into_arc_table();
        assert!(Arc::ptr_eq(&arc, &again));
        let owned = tiny_table("owned").into_arc_table();
        assert_eq!(owned.name(), "owned");
        let borrowed = (&tiny_table("borrowed")).into_arc_table();
        assert_eq!(borrowed.name(), "borrowed");
    }

    #[test]
    fn default_window_scales_with_threads() {
        let w = default_max_in_flight();
        assert!(w >= 1);
        assert_eq!(w, rayon::current_num_threads() * 4);
    }
}
