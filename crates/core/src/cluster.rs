//! Snippet clustering — the paper's proposed general solution to query
//! ambiguity (§5.2):
//!
//! > "A more general solution to the ambiguity problem would be clustering
//! > the results returned by the search engine and classify separately the
//! > snippets that belong to the different clusters. We do not explore
//! > this point in this paper, which we leave for future work."
//!
//! Implemented here as an optional annotation mode: the top-k snippets are
//! clustered by cosine similarity (single-pass leader clustering with mean
//! centroids — deterministic, order-stable), each cluster is classified
//! separately, and the cell is annotated from its most coherent cluster.
//! For an ambiguous name like "Melisse" (restaurant + jazz label), the two
//! senses fall into different clusters; the plain majority rule would see
//! a 5/5 split and abstain, while the clustered rule recovers the
//! restaurant sense from its own cluster.

use teda_kb::EntityType;
use teda_text::similarity::cosine;
use teda_text::SparseVector;

/// Parameters of the clustering annotation mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Minimum cosine similarity to a cluster centroid for membership.
    pub similarity_threshold: f64,
    /// Minimum fraction of the *requested* k a winning cluster's agreeing
    /// votes must reach (the clustered counterpart of the `> k/2` rule;
    /// lower because a sense owns only part of the result list).
    pub min_votes_frac: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            similarity_threshold: 0.15,
            min_votes_frac: 0.3,
        }
    }
}

/// A cluster of snippet indices with its running mean centroid.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Indices into the input snippet list.
    pub members: Vec<usize>,
    centroid_sum: Vec<(u32, f64)>,
}

impl Cluster {
    fn new(idx: usize, v: &SparseVector) -> Self {
        Cluster {
            members: vec![idx],
            centroid_sum: v.entries().to_vec(),
        }
    }

    /// The mean centroid as a sparse vector.
    pub fn centroid(&self) -> SparseVector {
        let n = self.members.len() as f64;
        SparseVector::from_pairs(
            self.centroid_sum
                .iter()
                .map(|&(id, w)| (id, w / n))
                .collect(),
        )
    }

    fn add(&mut self, idx: usize, v: &SparseVector) {
        self.members.push(idx);
        // merge the sums (both sorted by id)
        let merged = SparseVector::from_pairs(
            self.centroid_sum
                .iter()
                .copied()
                .chain(v.entries().iter().copied())
                .collect(),
        );
        self.centroid_sum = merged.entries().to_vec();
    }
}

/// Single-pass leader clustering over snippet vectors. Deterministic:
/// input order decides leaders, ties go to the earliest cluster.
pub fn cluster_snippets(vectors: &[SparseVector], config: ClusterConfig) -> Vec<Cluster> {
    let mut clusters: Vec<Cluster> = Vec::new();
    for (i, v) in vectors.iter().enumerate() {
        if v.is_empty() {
            continue; // stopword-only snippets join nothing
        }
        let mut best: Option<(usize, f64)> = None;
        for (ci, c) in clusters.iter().enumerate() {
            let sim = cosine(&c.centroid(), v);
            if sim >= config.similarity_threshold && best.is_none_or(|(_, b)| sim > b) {
                best = Some((ci, sim));
            }
        }
        match best {
            Some((ci, _)) => clusters[ci].add(i, v),
            None => clusters.push(Cluster::new(i, v)),
        }
    }
    clusters
}

/// The clustered voting rule: classify each snippet, group votes by
/// cluster, and return the best (type, votes) over clusters — the cell's
/// annotation candidate. `snippet_types[i]` is the classifier's output for
/// snippet `i` (`None` = no vote).
pub fn best_cluster_vote(
    clusters: &[Cluster],
    snippet_types: &[Option<EntityType>],
) -> Option<(EntityType, usize)> {
    let mut best: Option<(EntityType, usize)> = None;
    for c in clusters {
        let mut counts: std::collections::HashMap<EntityType, usize> =
            std::collections::HashMap::new();
        for &i in &c.members {
            if let Some(t) = snippet_types.get(i).copied().flatten() {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        // teda-lint: allow(nondeterministic_iteration) -- best is folded under the total order (votes, then smaller type), order-independent
        for (t, votes) in counts {
            // strict majority *within* the cluster keeps mixed clusters out
            if votes * 2 <= c.members.len() {
                continue;
            }
            if best.is_none_or(|(bt, bv)| votes > bv || (votes == bv && t < bt)) {
                best = Some((t, votes));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use teda_text::FeatureExtractor;

    fn vectors(texts: &[&str]) -> (Vec<SparseVector>, FeatureExtractor) {
        let mut fx = FeatureExtractor::new();
        let vs = texts.iter().map(|t| fx.fit_transform(t)).collect();
        (vs, fx)
    }

    #[test]
    fn two_senses_form_two_clusters() {
        let (vs, _) = vectors(&[
            "menu cuisine dining chef tasting",
            "cuisine menu wine dinner chef",
            "menu dining chef cuisine wine",
            "jazz records quartet saxophone sessions",
            "jazz vinyl recordings quartet sessions",
        ]);
        let clusters = cluster_snippets(&vs, ClusterConfig::default());
        assert_eq!(clusters.len(), 2, "{clusters:?}");
        assert_eq!(clusters[0].members, vec![0, 1, 2]);
        assert_eq!(clusters[1].members, vec![3, 4]);
    }

    #[test]
    fn empty_vectors_are_skipped() {
        let (mut vs, _) = vectors(&["menu cuisine"]);
        vs.push(SparseVector::default());
        let clusters = cluster_snippets(&vs, ClusterConfig::default());
        let total: usize = clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn singleton_inputs_yield_singleton_clusters() {
        let (vs, _) = vectors(&["menu cuisine", "jazz quartet", "campus faculty"]);
        let clusters = cluster_snippets(&vs, ClusterConfig::default());
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn centroid_is_the_mean() {
        let (vs, _) = vectors(&["menu menu", "menu menu"]);
        let clusters = cluster_snippets(&vs, ClusterConfig::default());
        assert_eq!(clusters.len(), 1);
        let c = clusters[0].centroid();
        // both snippets are the unit vector on "menu" → mean weight 1.0
        assert!((c.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_cluster_vote_recovers_the_split_sense() {
        use EntityType::{JazzLabel, Restaurant};
        let (vs, _) = vectors(&[
            "menu cuisine dining chef",
            "cuisine menu chef wine",
            "menu chef dining wine",
            "jazz records quartet saxophone",
            "jazz vinyl quartet sessions",
        ]);
        let clusters = cluster_snippets(&vs, ClusterConfig::default());
        let types = vec![
            Some(Restaurant),
            Some(Restaurant),
            Some(Restaurant),
            Some(JazzLabel),
            Some(JazzLabel),
        ];
        // 3/5 restaurant would fail the plain > k/2 rule at k = 10, but
        // the restaurant cluster is pure and biggest.
        let best = best_cluster_vote(&clusters, &types);
        assert_eq!(best, Some((Restaurant, 3)));
    }

    #[test]
    fn mixed_clusters_do_not_vote() {
        use EntityType::{Museum, Theatre};
        let (vs, _) = vectors(&["stage gallery words", "stage gallery words"]);
        let clusters = cluster_snippets(&vs, ClusterConfig::default());
        assert_eq!(clusters.len(), 1);
        let types = vec![Some(Museum), Some(Theatre)];
        // 1 vote each in a 2-member cluster: no strict majority
        assert_eq!(best_cluster_vote(&clusters, &types), None);
    }

    #[test]
    fn no_votes_no_annotation() {
        let (vs, _) = vectors(&["menu cuisine"]);
        let clusters = cluster_snippets(&vs, ClusterConfig::default());
        assert_eq!(best_cluster_vote(&clusters, &[None]), None);
    }
}
