//! The annotation step (§5.2): search, classify, majority-vote.
//!
//! For each candidate cell the algorithm retrieves the top-k snippets,
//! classifies each one, and "the type t_max such that s_t_max > s_t, for
//! all t ∈ Γ, is selected as the type of the entity in T(i,j) provided
//! that s_t_max > k/2". The annotation score is Eq. 1: `S_ij = s_t / k`.
//!
//! Cells are independent of each other, so the step comes in two shapes:
//! [`annotate_cells`] (sequential) and [`annotate_cells_par`], which fans
//! the candidate list out across threads against a *shared* classifier
//! (inference is `&self` — the vocabulary is frozen) and a `Sync` engine.
//! Both produce identical output for the same inputs: the per-cell
//! computation is pure given the engine's response, and the parallel
//! collect preserves candidate order.

use std::collections::HashMap;

use rayon::prelude::*;

use teda_kb::EntityType;
use teda_tabular::{CellId, Table};
use teda_websim::{SearchEngine, SearchResult};

use crate::config::AnnotatorConfig;
use crate::model::SnippetClassifier;
use crate::query::SpatialContext;

/// One cell annotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellAnnotation {
    /// The annotated cell.
    pub cell: CellId,
    /// The assigned type `t_max`.
    pub etype: EntityType,
    /// Eq. 1 score: `s_t / k`.
    pub score: f64,
    /// Raw snippet votes `s_t`.
    pub votes: usize,
}

/// Builds the search query for one cell: the raw content, suffixed with
/// the row's disambiguated city when spatial context is available
/// (§5.2.2).
pub fn build_cell_query(table: &Table, cell: CellId, spatial: Option<&SpatialContext>) -> String {
    match spatial {
        Some(ctx) => ctx.build_query(table, cell),
        None => table.cell_at(cell).to_owned(),
    }
}

/// Annotates one candidate cell: query → top-k snippets → vote.
pub fn annotate_cell<E: SearchEngine + ?Sized>(
    table: &Table,
    cell: CellId,
    engine: &E,
    classifier: &SnippetClassifier,
    spatial: Option<&SpatialContext>,
    config: &AnnotatorConfig,
) -> Option<CellAnnotation> {
    let query = build_cell_query(table, cell, spatial);
    if query.trim().is_empty() {
        return None;
    }
    let results = engine.search(&query, config.top_k);
    annotate_from_results(&results, cell, classifier, config)
}

/// Runs the voting rule over an already-retrieved result list (the batch
/// engine calls this directly with memoized results, skipping the search).
pub fn annotate_from_results(
    results: &[SearchResult],
    cell: CellId,
    classifier: &SnippetClassifier,
    config: &AnnotatorConfig,
) -> Option<CellAnnotation> {
    if results.is_empty() {
        return None;
    }
    if config.use_clustering {
        vote_clustered(results, cell, classifier, config)
    } else {
        vote_plain(results, cell, classifier, config)
    }
}

/// Annotates the candidate cells of `table`.
///
/// `spatial` augments queries with row cities when provided (§5.2.2).
/// Returns one annotation per cell that clears the majority threshold.
pub fn annotate_cells<E: SearchEngine + ?Sized>(
    table: &Table,
    candidates: &[CellId],
    engine: &E,
    classifier: &SnippetClassifier,
    spatial: Option<&SpatialContext>,
    config: &AnnotatorConfig,
) -> Vec<CellAnnotation> {
    candidates
        .iter()
        .filter_map(|&cell| annotate_cell(table, cell, engine, classifier, spatial, config))
        .collect()
}

/// Parallel [`annotate_cells`]: candidate cells are annotated across
/// threads against the shared classifier and engine.
///
/// Output is bit-identical to the sequential path: each cell's annotation
/// depends only on its own query's results, and the collect preserves
/// candidate order.
pub fn annotate_cells_par<E: SearchEngine + Sync + ?Sized>(
    table: &Table,
    candidates: &[CellId],
    engine: &E,
    classifier: &SnippetClassifier,
    spatial: Option<&SpatialContext>,
    config: &AnnotatorConfig,
) -> Vec<CellAnnotation> {
    let per_cell: Vec<Option<CellAnnotation>> = candidates
        .par_iter()
        .map(|&cell| annotate_cell(table, cell, engine, classifier, spatial, config))
        .collect();
    per_cell.into_iter().flatten().collect()
}

/// The §5.2.1 majority rule: `t_max` wins when `s_t_max > k/2`.
fn vote_plain(
    results: &[SearchResult],
    cell: CellId,
    classifier: &SnippetClassifier,
    config: &AnnotatorConfig,
) -> Option<CellAnnotation> {
    let mut votes: HashMap<EntityType, usize> = HashMap::new();
    for r in results {
        if let Some(t) = classifier.classify(&r.snippet) {
            if config.targets.contains(&t) {
                *votes.entry(t).or_insert(0) += 1;
            }
        }
    }
    // Deterministic argmax: highest vote count, earliest type on ties.
    let (t_max, s_max) = votes
        // teda-lint: allow(nondeterministic_iteration) -- argmax key (votes, Reverse(type)) is unique per entry, so the max is order-independent
        .iter()
        .map(|(&t, &s)| (t, s))
        .max_by_key(|&(t, s)| (s, std::cmp::Reverse(t)))?;
    (s_max > config.majority_threshold()).then(|| CellAnnotation {
        cell,
        etype: t_max,
        score: s_max as f64 / config.top_k as f64,
        votes: s_max,
    })
}

/// The clustered rule (the paper's §5.2 future work): cluster the
/// snippets, classify each, and annotate from the best single-sense
/// cluster — a relaxed threshold applies because an ambiguous name's
/// senses split the result list.
///
/// Each snippet is featurized exactly once: the vector feeds both the
/// clustering distance computation and the classifier's decision rule.
fn vote_clustered(
    results: &[SearchResult],
    cell: CellId,
    classifier: &SnippetClassifier,
    config: &AnnotatorConfig,
) -> Option<CellAnnotation> {
    let vectors: Vec<teda_text::SparseVector> = results
        .iter()
        .map(|r| classifier.vectorize(&r.snippet))
        .collect();
    let types: Vec<Option<EntityType>> = vectors
        .iter()
        .map(|x| {
            classifier
                .classify_vector(x)
                .filter(|t| config.targets.contains(t))
        })
        .collect();
    let clusters = crate::cluster::cluster_snippets(&vectors, config.cluster);
    let (etype, votes) = crate::cluster::best_cluster_vote(&clusters, &types)?;
    let min_votes = (config.top_k as f64 * config.cluster.min_votes_frac).ceil() as usize;
    (votes >= min_votes.max(2)).then(|| CellAnnotation {
        cell,
        etype,
        score: votes as f64 / config.top_k as f64,
        votes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use teda_classifier::naive_bayes::NaiveBayesConfig;
    use teda_classifier::{Dataset, NaiveBayes};
    use teda_text::FeatureExtractor;
    use teda_websim::SearchResult;

    use crate::model::{AnyModel, TypeLabels};

    /// A scripted engine: returns canned snippets per query substring.
    struct Scripted {
        rules: Vec<(&'static str, Vec<&'static str>)>,
    }

    impl SearchEngine for Scripted {
        fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
            for (needle, snippets) in &self.rules {
                if query.to_lowercase().contains(&needle.to_lowercase()) {
                    return snippets
                        .iter()
                        .take(k)
                        .enumerate()
                        .map(|(i, s)| SearchResult {
                            url: format!("http://scripted/{i}"),
                            title: format!("r{i}"),
                            snippet: (*s).to_owned(),
                        })
                        .collect();
                }
            }
            Vec::new()
        }
    }

    /// Classifier: "menu/cuisine" → Restaurant, "exhibition/gallery" →
    /// Museum, everything else → Other.
    fn classifier() -> SnippetClassifier {
        let mut fx = FeatureExtractor::new();
        let rest = fx.fit_transform("menu cuisine dining chef");
        let musm = fx.fit_transform("exhibition gallery collection paintings");
        let other = fx.fit_transform("random generic words website");
        let mut data = Dataset::new(3, fx.dim());
        for _ in 0..8 {
            data.push(rest.clone(), 0);
            data.push(musm.clone(), 1);
            data.push(other.clone(), 2);
        }
        let nb = NaiveBayes::train(&data, NaiveBayesConfig::default());
        SnippetClassifier::new(
            fx,
            AnyModel::Bayes(nb),
            TypeLabels::with_other(vec![EntityType::Restaurant, EntityType::Museum]),
        )
    }

    fn config() -> AnnotatorConfig {
        AnnotatorConfig {
            targets: vec![EntityType::Restaurant, EntityType::Museum],
            top_k: 10,
            ..AnnotatorConfig::default()
        }
    }

    fn table() -> Table {
        Table::builder(1)
            .row(vec!["Melisse"])
            .unwrap()
            .row(vec!["Louvre Gallery"])
            .unwrap()
            .row(vec!["Unknown Thing"])
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn majority_vote_annotates() {
        let engine = Scripted {
            rules: vec![
                (
                    "melisse",
                    vec![
                        "menu cuisine tonight",
                        "cuisine dining menu",
                        "menu chef dining",
                        "dining menu cuisine",
                        "chef menu cuisine",
                        "menu dining chef",
                        "cuisine chef menu",
                        "random generic words",
                        "random website",
                        "generic website words",
                    ],
                ),
                (
                    "louvre",
                    vec![
                        "exhibition gallery paintings",
                        "gallery collection exhibition",
                        "paintings exhibition gallery",
                        "collection gallery paintings",
                        "exhibition collection gallery",
                        "gallery paintings exhibition",
                        "exhibition gallery collection",
                        "random words",
                        "generic website",
                        "random generic",
                    ],
                ),
            ],
        };
        let clf = classifier();
        let t = table();
        let candidates: Vec<CellId> = t.cell_ids().collect();
        let anns = annotate_cells(&t, &candidates, &engine, &clf, None, &config());
        assert_eq!(anns.len(), 2);
        assert_eq!(anns[0].etype, EntityType::Restaurant);
        assert_eq!(anns[0].votes, 7);
        assert!((anns[0].score - 0.7).abs() < 1e-12, "Eq. 1: 7/10");
        assert_eq!(anns[1].etype, EntityType::Museum);
    }

    #[test]
    fn below_majority_abstains() {
        // Only 5 of 10 restaurant votes — "provided that s_tmax > k/2"
        // requires at least 6.
        let engine = Scripted {
            rules: vec![(
                "melisse",
                vec![
                    "menu cuisine",
                    "menu dining",
                    "cuisine chef",
                    "menu chef",
                    "dining cuisine",
                    "random words",
                    "generic website",
                    "random generic",
                    "website words",
                    "generic random",
                ],
            )],
        };
        let clf = classifier();
        let t = table();
        let anns = annotate_cells(&t, &[CellId::new(0, 0)], &engine, &clf, None, &config());
        assert!(anns.is_empty(), "5/10 must not annotate: {anns:?}");
    }

    #[test]
    fn clustering_recovers_a_split_sense() {
        // "Melisse" returns 5 restaurant-sense and 5 junk/label-sense
        // snippets: the plain rule sees 5/10 and abstains; the clustered
        // rule finds the pure restaurant cluster and annotates.
        let engine = Scripted {
            rules: vec![(
                "melisse",
                vec![
                    "menu cuisine tonight",
                    "cuisine dining menu",
                    "menu chef dining",
                    "dining menu cuisine",
                    "chef menu cuisine",
                    "random generic words",
                    "random website generic",
                    "generic website words",
                    "words random website",
                    "website generic random",
                ],
            )],
        };
        let t = table();
        let plain_cfg = config();
        let clf = classifier();
        let plain = annotate_cells(&t, &[CellId::new(0, 0)], &engine, &clf, None, &plain_cfg);
        assert!(plain.is_empty(), "plain rule must abstain on 5/10");

        let cluster_cfg = AnnotatorConfig {
            use_clustering: true,
            ..config()
        };
        let clf = classifier();
        let clustered = annotate_cells(&t, &[CellId::new(0, 0)], &engine, &clf, None, &cluster_cfg);
        assert_eq!(clustered.len(), 1, "clustered rule recovers the sense");
        assert_eq!(clustered[0].etype, EntityType::Restaurant);
        assert_eq!(clustered[0].votes, 5);
    }

    #[test]
    fn no_results_abstains() {
        let engine = Scripted { rules: vec![] };
        let clf = classifier();
        let t = table();
        let anns = annotate_cells(&t, &[CellId::new(2, 0)], &engine, &clf, None, &config());
        assert!(anns.is_empty());
    }

    #[test]
    fn non_target_votes_dont_count() {
        // Classifier knows Museum, but config targets only Restaurant.
        let engine = Scripted {
            rules: vec![(
                "louvre",
                vec![
                    "exhibition gallery paintings",
                    "gallery collection exhibition",
                    "paintings exhibition gallery",
                    "collection gallery paintings",
                    "exhibition collection gallery",
                    "gallery paintings exhibition",
                    "exhibition gallery collection",
                    "gallery exhibition paintings",
                    "paintings gallery exhibition",
                    "collection exhibition gallery",
                ],
            )],
        };
        let clf = classifier();
        let t = table();
        let cfg = AnnotatorConfig {
            targets: vec![EntityType::Restaurant],
            ..config()
        };
        let anns = annotate_cells(&t, &[CellId::new(1, 0)], &engine, &clf, None, &cfg);
        assert!(anns.is_empty(), "museum votes are outside Γ");
    }
}
