//! Classifier training (§5.2.1).
//!
//! The training pipeline, exactly as the paper describes it:
//!
//! 1. For each type `t`, build the positive entity set `P` from the
//!    category network: root at ρ, visit all subcategories, and apply the
//!    heuristic that "consists of removing from Cpos all categories whose
//!    names do not contain the name of type t".
//! 2. For each positive entity, query the search engine with the phrase
//!    "`<name> <type>`" ("Melisse restaurant") — "the name of the type
//!    disambiguates the query" — and keep up to 10 snippets.
//! 3. Split 75% / 25% into training and test sets.
//!
//! Snippets of the world's distractor types are harvested the same way to
//! populate the `Other` class, so the classifier has a reject option.

use rand::seq::SliceRandom;

use teda_classifier::cv::{fold_splits, stratified_folds};
use teda_classifier::naive_bayes::{NaiveBayes, NaiveBayesConfig};
use teda_classifier::split::stratified_split;
use teda_classifier::svm::pegasos::{PegasosConfig, PegasosSvm};
use teda_classifier::svm::smo::{SmoConfig, SmoSvm};
use teda_classifier::{Classifier, ConfusionMatrix, Dataset, OneVsRest, Prf};
use teda_kb::{CategoryId, CategoryNetwork, EntityId, EntityType, World};
use teda_simkit::{derive_seed, rng_from_seed};
use teda_text::FeatureExtractor;
use teda_websim::SearchEngine;

use crate::model::{AnyModel, SnippetClassifier, TypeLabels};

/// Configuration of the harvesting process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Snippets collected per entity ("Up to 10 snippets are collected").
    pub snippets_per_entity: usize,
    /// Cap on positive entities per type (`None` = all of them).
    pub max_entities_per_type: Option<usize>,
    /// Test fraction ("75% … training … 25% … test").
    pub test_frac: f64,
    /// Whether to add an `Other` reject class trained on distractor-type
    /// snippets. `false` is the paper's closed-Γ setup; `true` is the
    /// extension evaluated as an ablation.
    pub include_other_class: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            snippets_per_entity: 10,
            max_entities_per_type: None,
            test_frac: 0.25,
            include_other_class: false,
            seed: 0x7ea1,
        }
    }
}

/// Per-type harvest statistics (the |TR| / |TE| columns of Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarvestStat {
    pub etype: EntityType,
    /// Positive entities used.
    pub n_entities: usize,
    /// Training snippets.
    pub n_train: usize,
    /// Test snippets.
    pub n_test: usize,
}

/// The harvested corpus: datasets, labels, extractor, stats.
#[derive(Debug, Clone)]
pub struct TrainingCorpus {
    pub train: Dataset,
    pub test: Dataset,
    pub labels: TypeLabels,
    pub extractor: FeatureExtractor,
    pub stats: Vec<HarvestStat>,
}

/// The §5.2.1 positive-entity selection: category traversal from ρ plus
/// the category-name filtering heuristic.
pub fn positive_entities(net: &CategoryNetwork, world: &World, etype: EntityType) -> Vec<EntityId> {
    let Some(root) = net.root_for(etype) else {
        return Vec::new();
    };
    // Match on the Porter stem of the type word, not the literal word:
    // "Universities in USA" does not contain "university" (y → ies), but
    // both share the stem "univers". The paper's prose says "the name of
    // type t"; a literal-string reading would silently drop every plural
    // category of y-final types.
    let stem = teda_text::porter::stem(&etype.type_word().to_lowercase());
    let mut out: Vec<EntityId> = Vec::new();
    for cat in net.descendants(root) {
        if !net.name(cat).to_lowercase().contains(&stem) {
            continue; // the heuristic: drop "Curators" under "Museums"
        }
        out.extend_from_slice(net.entities_in(cat));
    }
    out.sort();
    out.dedup();
    let _ = world;
    out
}

/// Automatic root-category selection — the paper's scalability
/// future work (§6.4):
///
/// > "if we intended to use our algorithm for annotating entities of any
/// > type in Probase, which includes up to two million types, we would
/// > need a way to automatically select the category that best represents
/// > a type."
///
/// Scores every category as a root candidate for `etype`: the stem of the
/// type word must appear in the category name; among matches, the one
/// that reaches the most entities wins (the root is the most general
/// container), with shorter names breaking ties ("Museums" over "Museums
/// by country" when both reach everything). Returns `None` when no
/// category mentions the type at all.
pub fn auto_select_root(net: &CategoryNetwork, etype: EntityType) -> Option<CategoryId> {
    let stem = teda_text::porter::stem(&etype.type_word().to_lowercase());
    let mut best: Option<(CategoryId, usize, usize)> = None; // (cat, reach, name_len)
    for cat in net.all_categories() {
        let name = net.name(cat).to_lowercase();
        if !name.contains(&stem) {
            continue;
        }
        let reach: usize = net
            .descendants(cat)
            .iter()
            .map(|&c| net.entities_in(c).len())
            .sum();
        if reach == 0 {
            continue;
        }
        let better = match best {
            None => true,
            Some((_, breach, blen)) => reach > breach || (reach == breach && name.len() < blen),
        };
        if better {
            best = Some((cat, reach, name.len()));
        }
    }
    best.map(|(cat, _, _)| cat)
}

/// Harvests the training corpus for `targets` over the given engine.
pub fn harvest<E: SearchEngine + ?Sized>(
    world: &World,
    net: &CategoryNetwork,
    engine: &E,
    targets: &[EntityType],
    config: TrainerConfig,
) -> TrainingCorpus {
    let labels = if config.include_other_class {
        TypeLabels::with_other(targets.to_vec())
    } else {
        TypeLabels::new(targets.to_vec())
    };
    let mut rng = rng_from_seed(derive_seed(config.seed, "harvest"));

    // (snippet text, class) pairs, per class for stats.
    let mut snippets: Vec<(String, usize)> = Vec::new();
    let mut entities_per_class: Vec<usize> = vec![0; labels.n_classes()];

    let collect = |snippets: &mut Vec<(String, usize)>,
                   rng: &mut rand::rngs::StdRng,
                   ids: &[EntityId],
                   class: usize,
                   phrase: &str| {
        let mut ids = ids.to_vec();
        ids.shuffle(rng);
        if let Some(cap) = config.max_entities_per_type {
            ids.truncate(cap);
        }
        let mut used = 0usize;
        for id in &ids {
            let e = world.entity(*id);
            let query = format!("{} {}", e.name, phrase);
            let results = engine.search(&query, config.snippets_per_entity);
            if results.is_empty() {
                continue;
            }
            used += 1;
            for r in results {
                snippets.push((r.snippet, class));
            }
        }
        used
    };

    for (class, &etype) in targets.iter().enumerate() {
        let positives = positive_entities(net, world, etype);
        let used = collect(
            &mut snippets,
            &mut rng,
            &positives,
            class,
            etype.query_phrase(),
        );
        entities_per_class[class] = used;
    }
    // Optional Other class: the distractor types, harvested identically.
    if let Some(other) = labels.other_class() {
        for &etype in &EntityType::DISTRACTORS {
            let ids = world.entities_of(etype);
            entities_per_class[other] +=
                collect(&mut snippets, &mut rng, ids, other, etype.query_phrase());
        }
    }

    // 75/25 stratified split, then vocabulary fitted on training text only.
    let ys: Vec<usize> = snippets.iter().map(|&(_, c)| c).collect();
    let (train_idx, test_idx) =
        stratified_split(&ys, config.test_frac, derive_seed(config.seed, "split"));

    let mut extractor = FeatureExtractor::new();
    let mut train = Dataset::new(labels.n_classes(), 0);
    for &i in &train_idx {
        let (text, class) = &snippets[i];
        let x = extractor.fit_transform(text);
        train.push(x, *class);
    }
    train.set_dim(extractor.dim());
    let mut test = Dataset::new(labels.n_classes(), extractor.dim());
    for &i in &test_idx {
        let (text, class) = &snippets[i];
        let x = extractor.transform(text);
        test.push(x, *class);
    }

    let mut stats = Vec::with_capacity(targets.len());
    for (class, &etype) in targets.iter().enumerate() {
        let n_train = train.ys().iter().filter(|&&y| y == class).count();
        let n_test = test.ys().iter().filter(|&&y| y == class).count();
        stats.push(HarvestStat {
            etype,
            n_entities: entities_per_class[class],
            n_train,
            n_test,
        });
    }

    TrainingCorpus {
        train,
        test,
        labels,
        extractor,
        stats,
    }
}

/// Trains the Naive Bayes snippet classifier (the paper's LingPipe
/// configuration: prior counts 1.0, no length normalization).
pub fn train_bayes(corpus: &TrainingCorpus, config: NaiveBayesConfig) -> SnippetClassifier {
    let nb = NaiveBayes::train(&corpus.train, config);
    SnippetClassifier::new(
        corpus.extractor.clone(),
        AnyModel::Bayes(nb),
        corpus.labels.clone(),
    )
}

/// Trains the linear SVM (Pegasos) snippet classifier — the scale-friendly
/// counterpart of the paper's C-SVC, used for full-size corpora.
pub fn train_svm_linear(corpus: &TrainingCorpus, config: PegasosConfig) -> SnippetClassifier {
    let dim = corpus.train.dim();
    let ovr = OneVsRest::train(&corpus.train, |class, xs, ys| {
        PegasosSvm::train(
            xs,
            ys,
            dim,
            PegasosConfig {
                seed: config.seed ^ (class as u64).wrapping_mul(0x9e37_79b9),
                ..config
            },
        )
    });
    SnippetClassifier::new(
        corpus.extractor.clone(),
        AnyModel::SvmLinear(ovr),
        corpus.labels.clone(),
    )
}

/// Trains the RBF C-SVC via SMO — the paper's exact configuration
/// (C = 8, γ = 8). Panics if the corpus exceeds the SMO size cap; use a
/// `max_entities_per_type` cap or [`train_svm_linear`] for large corpora.
pub fn train_svm_rbf(corpus: &TrainingCorpus, config: SmoConfig) -> SnippetClassifier {
    let ovr = OneVsRest::train(&corpus.train, |class, xs, ys| {
        SmoSvm::train(
            xs,
            ys,
            SmoConfig {
                seed: config.seed ^ class as u64,
                ..config
            },
        )
    });
    SnippetClassifier::new(
        corpus.extractor.clone(),
        AnyModel::SvmRbf(ovr),
        corpus.labels.clone(),
    )
}

/// Per-type one-vs-rest PRF of `model` over the held-out test set — the
/// Bayes/SVM columns of Table 2.
pub fn test_prf(corpus: &TrainingCorpus, model: &AnyModel) -> Vec<(EntityType, Prf)> {
    let mut cm = ConfusionMatrix::new(corpus.labels.n_classes());
    for i in 0..corpus.test.len() {
        let (x, y) = corpus.test.get(i);
        cm.observe(y, model.predict(x));
    }
    corpus
        .labels
        .types()
        .iter()
        .enumerate()
        .map(|(class, &etype)| (etype, cm.prf(class)))
        .collect()
}

/// Cross-validated accuracy of the training set at a given fold count —
/// the inner loop of the grid-search reproduction.
pub fn cv_accuracy(corpus: &TrainingCorpus, folds: usize, seed: u64) -> f64 {
    let fold_of = stratified_folds(corpus.train.ys(), folds, seed);
    let mut correct = 0usize;
    let mut total = 0usize;
    for (train_idx, test_idx) in fold_splits(&fold_of, folds) {
        if train_idx.is_empty() || test_idx.is_empty() {
            continue;
        }
        let fold_train = corpus.train.subset(&train_idx);
        let nb = NaiveBayes::train(&fold_train, NaiveBayesConfig::default());
        for &i in &test_idx {
            let (x, y) = corpus.train.get(i);
            if nb.predict(x) == y {
                correct += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use teda_kb::WorldSpec;
    use teda_websim::{BingSim, WebCorpus, WebCorpusSpec};

    fn fixture() -> (World, CategoryNetwork, BingSim) {
        let world = World::generate(WorldSpec::tiny(), 42);
        let net = CategoryNetwork::build(&world, 42);
        let web = WebCorpus::build(&world, WebCorpusSpec::tiny(), 42);
        (world, net, BingSim::instant(Arc::new(web)))
    }

    #[test]
    fn positive_entities_are_clean() {
        let (world, net, _) = fixture();
        for etype in [EntityType::Museum, EntityType::Restaurant] {
            let pos = positive_entities(&net, &world, etype);
            assert!(!pos.is_empty(), "{etype}");
            for id in pos {
                assert_eq!(
                    world.entity(id).etype,
                    etype,
                    "noise leaked into {etype} positives"
                );
            }
        }
    }

    #[test]
    fn auto_root_selection_matches_the_manual_choice() {
        // §6.4 future work: for every target type, the automatic selector
        // must land on the same root a human picked.
        let (world, net, _) = fixture();
        let _ = &world;
        for etype in EntityType::TARGETS {
            assert_eq!(
                auto_select_root(&net, etype),
                net.root_for(etype),
                "{etype}"
            );
        }
    }

    #[test]
    fn harvest_produces_both_splits_and_stats() {
        let (world, net, engine) = fixture();
        let targets = vec![EntityType::Restaurant, EntityType::Museum];
        let corpus = harvest(
            &world,
            &net,
            &engine,
            &targets,
            TrainerConfig {
                max_entities_per_type: Some(8),
                include_other_class: true,
                ..TrainerConfig::default()
            },
        );
        assert!(corpus.train.len() > corpus.test.len());
        assert_eq!(corpus.stats.len(), 2);
        for s in &corpus.stats {
            assert!(s.n_train > 0, "{:?}", s);
            assert!(s.n_test > 0, "{:?}", s);
            // ~75/25
            let frac = s.n_test as f64 / (s.n_train + s.n_test) as f64;
            assert!((0.15..=0.35).contains(&frac), "{frac}");
        }
        // the Other class is populated from distractors
        let other = corpus.labels.other_class().expect("other enabled");
        assert!(corpus.train.ys().contains(&other));
    }

    #[test]
    fn trained_classifiers_beat_chance_on_test() {
        let (world, net, engine) = fixture();
        let targets = vec![EntityType::Restaurant, EntityType::Museum];
        let corpus = harvest(
            &world,
            &net,
            &engine,
            &targets,
            TrainerConfig {
                max_entities_per_type: Some(10),
                ..TrainerConfig::default()
            },
        );
        let nb = train_bayes(&corpus, NaiveBayesConfig::snippet_default());
        let svm = train_svm_linear(&corpus, PegasosConfig::default());
        for (name, model) in [("nb", nb.model()), ("svm", svm.model())] {
            let prfs = test_prf(&corpus, model);
            for (etype, prf) in prfs {
                assert!(prf.f1 > 0.6, "{name} {etype}: test F {:.2} too low", prf.f1);
            }
        }
    }

    #[test]
    fn harvest_is_deterministic() {
        let (world, net, engine) = fixture();
        let targets = vec![EntityType::Hotel];
        let cfg = TrainerConfig {
            max_entities_per_type: Some(6),
            ..TrainerConfig::default()
        };
        let a = harvest(&world, &net, &engine, &targets, cfg);
        let b = harvest(&world, &net, &engine, &targets, cfg);
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.test.len(), b.test.len());
        assert_eq!(a.train.ys(), b.train.ys());
    }

    #[test]
    fn cv_accuracy_is_sane() {
        let (world, net, engine) = fixture();
        let corpus = harvest(
            &world,
            &net,
            &engine,
            &[EntityType::Restaurant, EntityType::Museum],
            TrainerConfig {
                max_entities_per_type: Some(8),
                ..TrainerConfig::default()
            },
        );
        let acc = cv_accuracy(&corpus, 3, 1);
        assert!(acc > 0.5, "cv accuracy {acc}");
    }
}
