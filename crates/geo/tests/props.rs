//! Property tests for the geographic substrate.

use proptest::prelude::*;

use teda_geo::disambiguate::{disambiguate, DisambiguationConfig};
use teda_geo::gazetteer::LocationKind;
use teda_geo::synthetic::{generate, GazetteerSpec};
use teda_geo::Gazetteer;
use teda_tabular::CellId;

proptest! {
    /// The containment hierarchy is acyclic and bounded: every chain ends
    /// at a country in ≤ 3 steps.
    #[test]
    fn container_chains_terminate(seed in 0u64..50) {
        let g = generate(GazetteerSpec {
            countries: 2,
            states_per_country: 2,
            cities_per_state: 3,
            streets_per_city: 2,
            city_name_pool: 5,
            street_name_pool: 5,
        }, seed);
        for id in (0..g.len() as u32).map(teda_geo::LocationId) {
            let chain = g.container_chain(id);
            prop_assert!(chain.len() <= 3);
            if let Some(&root) = chain.last() {
                prop_assert_eq!(g.location(root).kind, LocationKind::Country);
            } else {
                prop_assert_eq!(g.location(id).kind, LocationKind::Country);
            }
        }
    }

    /// Disambiguation always chooses an interpretation for every cell with
    /// candidates, scores stay normalized per cell, and it never panics on
    /// random candidate layouts.
    #[test]
    fn disambiguation_total_and_normalized(
        layout in proptest::collection::vec(
            (0usize..4, 0usize..3, 1usize..4),
            1..8
        ),
        seed in 0u64..100
    ) {
        let g = Gazetteer::figure7();
        let cities: Vec<_> = g.of_kind(LocationKind::City).collect();
        // Contract: one entry per cell, candidates distinct within a cell.
        let mut seen_cells = std::collections::HashSet::new();
        let cells: Vec<(CellId, Vec<teda_geo::LocationId>)> = layout
            .iter()
            .enumerate()
            .filter_map(|(idx, &(row, col, n))| {
                if !seen_cells.insert((row, col)) {
                    return None;
                }
                let mut cands: Vec<_> = (0..n)
                    .map(|k| cities[(idx * 3 + k + seed as usize) % cities.len()])
                    .collect();
                cands.sort();
                cands.dedup();
                Some((CellId::new(row, col), cands))
            })
            .collect();
        let res = disambiguate(&g, &cells, DisambiguationConfig::default());
        for (cell, cands) in &cells {
            prop_assert!(res.interpretation(*cell).is_some());
            let sum: f64 = cands
                .iter()
                .map(|&c| res.scores.get(&(*cell, c)).copied().unwrap_or(0.0))
                .sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "cell {cell}: {sum}");
            // the chosen candidate is from the candidate set
            prop_assert!(cands.contains(&res.interpretation(*cell).unwrap()));
        }
    }
}
