//! The gazetteer: a containment hierarchy of geographic locations.
//!
//! §5.2.2: "Such geographic locations are in a containment relationship
//! defined as follows: streets are contained by cities, which are contained
//! by states which in turn are contained by countries. Since the
//! containment is a hierarchical relationship, any geographic location
//! (e.g. a street) has a direct or most specific container (e.g. a city)
//! and indirect or less specific containers (e.g. states and countries)."

use std::collections::HashMap;
use std::fmt;

/// Index of a location inside a [`Gazetteer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocationId(pub u32);

/// The level of a location in the containment hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LocationKind {
    Country,
    State,
    City,
    Street,
}

/// One geographic location.
#[derive(Debug, Clone, PartialEq)]
pub struct Location {
    /// Display name, e.g. "Paris" or "Pennsylvania Avenue".
    pub name: String,
    /// Hierarchy level.
    pub kind: LocationKind,
    /// The direct (most specific) container; `None` only for countries.
    pub parent: Option<LocationId>,
}

/// An immutable containment hierarchy with name lookup.
///
/// Names are *not* unique — ambiguity is the point (Paris, TX vs Paris,
/// France). [`Gazetteer::lookup`] returns every location bearing a name.
#[derive(Debug, Clone, Default)]
pub struct Gazetteer {
    locations: Vec<Location>,
    by_name: HashMap<String, Vec<LocationId>>,
}

impl Gazetteer {
    /// Creates an empty gazetteer.
    pub fn new() -> Self {
        Gazetteer::default()
    }

    /// Adds a country.
    pub fn add_country(&mut self, name: &str) -> LocationId {
        self.add(name, LocationKind::Country, None)
    }

    /// Adds a state inside `country`.
    pub fn add_state(&mut self, name: &str, country: LocationId) -> LocationId {
        debug_assert_eq!(
            self.locations[country.0 as usize].kind,
            LocationKind::Country
        );
        self.add(name, LocationKind::State, Some(country))
    }

    /// Adds a city inside `state`.
    pub fn add_city(&mut self, name: &str, state: LocationId) -> LocationId {
        debug_assert_eq!(self.locations[state.0 as usize].kind, LocationKind::State);
        self.add(name, LocationKind::City, Some(state))
    }

    /// Adds a street inside `city`.
    pub fn add_street(&mut self, name: &str, city: LocationId) -> LocationId {
        debug_assert_eq!(self.locations[city.0 as usize].kind, LocationKind::City);
        self.add(name, LocationKind::Street, Some(city))
    }

    fn add(&mut self, name: &str, kind: LocationKind, parent: Option<LocationId>) -> LocationId {
        let id = LocationId(u32::try_from(self.locations.len()).expect("gazetteer too large"));
        self.locations.push(Location {
            name: name.to_owned(),
            kind,
            parent,
        });
        self.by_name
            .entry(name.to_lowercase())
            .or_default()
            .push(id);
        id
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// Whether the gazetteer is empty.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// The location with id `id`.
    pub fn location(&self, id: LocationId) -> &Location {
        &self.locations[id.0 as usize]
    }

    /// All locations named `name` (case-insensitive).
    pub fn lookup(&self, name: &str) -> &[LocationId] {
        self.by_name
            .get(&name.to_lowercase())
            .map_or(&[], Vec::as_slice)
    }

    /// All locations of a given kind named `name`.
    pub fn lookup_kind(&self, name: &str, kind: LocationKind) -> Vec<LocationId> {
        self.lookup(name)
            .iter()
            .copied()
            .filter(|&id| self.location(id).kind == kind)
            .collect()
    }

    /// The direct container of `id` (`None` for countries).
    pub fn direct_container(&self, id: LocationId) -> Option<LocationId> {
        self.location(id).parent
    }

    /// The chain of containers from `id` (exclusive) to the root country.
    pub fn container_chain(&self, id: LocationId) -> Vec<LocationId> {
        let mut chain = Vec::new();
        let mut cur = self.location(id).parent;
        while let Some(p) = cur {
            chain.push(p);
            cur = self.location(p).parent;
        }
        chain
    }

    /// Whether `inner` is (transitively) contained in `outer`.
    pub fn contains(&self, outer: LocationId, inner: LocationId) -> bool {
        self.container_chain(inner).contains(&outer)
    }

    /// The §5.2.2 edge condition: two interpretations "share the same
    /// direct geographic container". The paper's own example pairs a street
    /// with the very city that contains it ("Pennsylvania Ave, Washington,
    /// D.C." ↔ "Washington, D.C., USA"), so the relation also holds when
    /// one location *is* the other's direct container.
    pub fn shares_direct_container(&self, a: LocationId, b: LocationId) -> bool {
        if a == b {
            return false;
        }
        let pa = self.direct_container(a);
        let pb = self.direct_container(b);
        (pa.is_some() && pa == pb) || pa == Some(b) || pb == Some(a)
    }

    /// Fully qualified display name: "Pennsylvania Avenue, Washington,
    /// D.C., USA".
    pub fn full_name(&self, id: LocationId) -> String {
        let mut parts = vec![self.location(id).name.clone()];
        for c in self.container_chain(id) {
            parts.push(self.location(c).name.clone());
        }
        parts.join(", ")
    }

    /// The city containing `id` (or `id` itself when it is a city).
    pub fn city_of(&self, id: LocationId) -> Option<LocationId> {
        if self.location(id).kind == LocationKind::City {
            return Some(id);
        }
        self.container_chain(id)
            .into_iter()
            .find(|&c| self.location(c).kind == LocationKind::City)
    }

    /// Iterates all locations of a kind.
    pub fn of_kind(&self, kind: LocationKind) -> impl Iterator<Item = LocationId> + '_ {
        self.locations
            .iter()
            .enumerate()
            .filter(move |(_, l)| l.kind == kind)
            .map(|(i, _)| LocationId(i as u32))
    }

    /// The streets directly contained in `city`.
    pub fn streets_in(&self, city: LocationId) -> Vec<LocationId> {
        self.of_kind(LocationKind::Street)
            .filter(|&s| self.location(s).parent == Some(city))
            .collect()
    }

    /// Builds the paper's Figure 7 micro-world: Pennsylvania Avenue in both
    /// Baltimore and Washington D.C.; Wofford Lane in College Park MD,
    /// Lockhart FL and Conway AR; Clarksville Street in Paris TX, Bogata TX
    /// and Trenton KY; the cities Washington GA, College Park GA, Paris TN
    /// and Paris, France. Used by tests and by the `exp_fig7` experiment.
    ///
    /// ```
    /// use teda_geo::{Gazetteer, LocationKind};
    ///
    /// let g = Gazetteer::figure7();
    /// assert_eq!(g.lookup_kind("Paris", LocationKind::City).len(), 3);
    /// assert_eq!(g.lookup_kind("Pennsylvania Avenue", LocationKind::Street).len(), 2);
    /// ```
    pub fn figure7() -> Gazetteer {
        let mut g = Gazetteer::new();
        let usa = g.add_country("USA");
        let france = g.add_country("France");

        let md = g.add_state("MD", usa);
        let dc = g.add_state("D.C.", usa);
        let ga = g.add_state("GA", usa);
        let fl = g.add_state("FL", usa);
        let ar = g.add_state("AR", usa);
        let tx = g.add_state("TX", usa);
        let ky = g.add_state("KY", usa);
        let tn = g.add_state("TN", usa);
        let idf = g.add_state("Île-de-France", france);

        let baltimore = g.add_city("Baltimore", md);
        let washington_dc = g.add_city("Washington", dc);
        let washington_ga = g.add_city("Washington", ga);
        let college_park_md = g.add_city("College Park", md);
        let college_park_ga = g.add_city("College Park", ga);
        let lockhart = g.add_city("Lockhart", fl);
        let conway = g.add_city("Conway", ar);
        let paris_tx = g.add_city("Paris", tx);
        let bogata = g.add_city("Bogata", tx);
        let trenton = g.add_city("Trenton", ky);
        let paris_tn = g.add_city("Paris", tn);
        let paris_fr = g.add_city("Paris", idf);

        g.add_street("Pennsylvania Avenue", baltimore);
        g.add_street("Pennsylvania Avenue", washington_dc);
        g.add_street("Wofford Lane", college_park_md);
        g.add_street("Wofford Lane", lockhart);
        g.add_street("Wofford Lane", conway);
        g.add_street("Clarksville Street", paris_tx);
        g.add_street("Clarksville Street", bogata);
        g.add_street("Clarksville Street", trenton);

        let _ = (washington_ga, college_park_ga, paris_tn, paris_fr);
        g
    }
}

impl fmt::Display for LocationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LocationKind::Country => "country",
            LocationKind::State => "state",
            LocationKind::City => "city",
            LocationKind::Street => "street",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_and_chains() {
        let g = Gazetteer::figure7();
        let penn = g.lookup_kind("Pennsylvania Avenue", LocationKind::Street);
        assert_eq!(penn.len(), 2, "Pennsylvania Avenue is ambiguous");
        let chain = g.container_chain(penn[0]);
        assert_eq!(chain.len(), 3); // city, state, country
        assert_eq!(g.location(chain[2]).kind, LocationKind::Country);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let g = Gazetteer::figure7();
        assert_eq!(g.lookup("paris").len(), 3);
        assert_eq!(g.lookup("PARIS").len(), 3);
        assert!(g.lookup("atlantis").is_empty());
    }

    #[test]
    fn full_names_read_like_the_figure() {
        let g = Gazetteer::figure7();
        let washington: Vec<LocationId> = g.lookup_kind("Washington", LocationKind::City);
        let names: Vec<String> = washington.iter().map(|&id| g.full_name(id)).collect();
        assert!(
            names.contains(&"Washington, D.C., USA".to_owned()),
            "{names:?}"
        );
        assert!(names.contains(&"Washington, GA, USA".to_owned()));
    }

    #[test]
    fn shares_direct_container_cases() {
        let g = Gazetteer::figure7();
        // two cities in Georgia share the state
        let wash_ga = g
            .lookup_kind("Washington", LocationKind::City)
            .into_iter()
            .find(|&id| g.full_name(id).contains("GA"))
            .unwrap();
        let cp_ga = g
            .lookup_kind("College Park", LocationKind::City)
            .into_iter()
            .find(|&id| g.full_name(id).contains("GA"))
            .unwrap();
        assert!(g.shares_direct_container(wash_ga, cp_ga));

        // a street and its containing city share (asymmetric case)
        let penn_dc = g
            .lookup_kind("Pennsylvania Avenue", LocationKind::Street)
            .into_iter()
            .find(|&id| g.full_name(id).contains("D.C."))
            .unwrap();
        let wash_dc = g
            .lookup_kind("Washington", LocationKind::City)
            .into_iter()
            .find(|&id| g.full_name(id).contains("D.C."))
            .unwrap();
        assert!(g.shares_direct_container(penn_dc, wash_dc));
        assert!(g.shares_direct_container(wash_dc, penn_dc), "symmetric");

        // unrelated locations do not share
        let paris_fr = g
            .lookup_kind("Paris", LocationKind::City)
            .into_iter()
            .find(|&id| g.full_name(id).contains("France"))
            .unwrap();
        assert!(!g.shares_direct_container(paris_fr, wash_dc));

        // a location does not share with itself
        assert!(!g.shares_direct_container(wash_dc, wash_dc));
    }

    #[test]
    fn contains_is_transitive() {
        let g = Gazetteer::figure7();
        let penn_dc = g
            .lookup_kind("Pennsylvania Avenue", LocationKind::Street)
            .into_iter()
            .find(|&id| g.full_name(id).contains("D.C."))
            .unwrap();
        let usa = g.of_kind(LocationKind::Country).next().unwrap();
        assert!(g.contains(usa, penn_dc));
        assert!(!g.contains(penn_dc, usa));
    }

    #[test]
    fn city_of_resolves_streets_and_cities() {
        let g = Gazetteer::figure7();
        let penn = g.lookup_kind("Pennsylvania Avenue", LocationKind::Street)[0];
        let city = g.city_of(penn).unwrap();
        assert_eq!(g.location(city).kind, LocationKind::City);
        assert_eq!(g.city_of(city), Some(city));
        let country = g.of_kind(LocationKind::Country).next().unwrap();
        assert_eq!(g.city_of(country), None);
    }

    #[test]
    fn streets_in_city() {
        let g = Gazetteer::figure7();
        let paris_tx = g
            .lookup_kind("Paris", LocationKind::City)
            .into_iter()
            .find(|&id| g.full_name(id).contains("TX"))
            .unwrap();
        let streets = g.streets_in(paris_tx);
        assert_eq!(streets.len(), 1);
        assert_eq!(g.location(streets[0]).name, "Clarksville Street");
    }
}
