//! Toponym disambiguation: the §5.2.2 voting graph.
//!
//! Given cells `T(i,j)` whose addresses geocode to candidate sets `L_{i,j}`,
//! build a graph with one node per (cell, candidate interpretation) and a
//! directed edge `n_{l1} → n_{l2}` iff
//!
//! 1. the two candidates belong to cells in the same row or the same column
//!    (but not the same cell), and
//! 2. `l1` and `l2` share the same direct geographic container (including
//!    the case where one *is* the other's container — the paper's
//!    "Pennsylvania Ave, Washington, D.C." ↔ "Washington, D.C., USA"
//!    example).
//!
//! Scores start at `1/|L_{i,j}|` and are iterated with
//! `S(n_l) = Σ_{v ∈ IN(n_l)} S(v)` until a fixed point.
//!
//! **Deviation from the paper, documented:** the raw in-sum iteration has
//! no normalization and diverges on any graph with a cycle (scores grow
//! without bound). We renormalize the candidate scores of each cell to sum
//! to 1 after every sweep (Jacobi style). This preserves the *ranking*
//! fixed point the paper relies on while guaranteeing convergence; cells
//! whose candidates receive no votes at all keep their uniform prior.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use teda_tabular::CellId;

use crate::gazetteer::{Gazetteer, LocationId};

/// Configuration for [`disambiguate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisambiguationConfig {
    /// Maximum Jacobi sweeps.
    pub max_iterations: usize,
    /// Convergence threshold on the max absolute score change.
    pub tolerance: f64,
    /// Seed for random tie-breaking (the paper: "If the nodes corresponding
    /// to two or more locations in Li,j have the same score, we choose one
    /// randomly").
    pub seed: u64,
}

impl Default for DisambiguationConfig {
    fn default() -> Self {
        DisambiguationConfig {
            max_iterations: 50,
            tolerance: 1e-9,
            seed: 0x9e0,
        }
    }
}

/// The outcome of a disambiguation run.
#[derive(Debug, Clone)]
pub struct DisambiguationResult {
    /// The chosen interpretation per cell (cells with empty candidate sets
    /// are absent).
    pub chosen: HashMap<CellId, LocationId>,
    /// Final normalized score of every (cell, candidate) node.
    pub scores: HashMap<(CellId, LocationId), f64>,
    /// Sweeps executed before convergence (or the cap).
    pub iterations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

impl DisambiguationResult {
    /// The chosen interpretation for `cell`, if it had candidates.
    pub fn interpretation(&self, cell: CellId) -> Option<LocationId> {
        self.chosen.get(&cell).copied()
    }
}

/// Flattened per-cell ranking of candidate indices by descending score
/// (stable within ties), used for the ranking-stability convergence check.
fn cell_ranking(cells: &[(CellId, Vec<LocationId>)], score: &[f64]) -> Vec<usize> {
    let mut ranking = Vec::with_capacity(score.len());
    let mut idx = 0usize;
    for (_, cands) in cells {
        let m = cands.len();
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| score[idx + b].total_cmp(&score[idx + a]));
        ranking.extend(order);
        idx += m;
    }
    ranking
}

/// Runs the voting-graph disambiguation over `cells`: each entry is a cell
/// id and its geocoded candidate set `L_{i,j}`.
///
/// Contract: at most one entry per cell id, and candidates distinct within
/// a cell (the geocoder guarantees both — it sorts and dedups).
pub fn disambiguate(
    gazetteer: &Gazetteer,
    cells: &[(CellId, Vec<LocationId>)],
    config: DisambiguationConfig,
) -> DisambiguationResult {
    // Node table: (cell index, candidate index) → flat node id.
    let mut nodes: Vec<(usize, usize)> = Vec::new();
    for (ci, (_, cands)) in cells.iter().enumerate() {
        for k in 0..cands.len() {
            nodes.push((ci, k));
        }
    }
    let n = nodes.len();

    // In-edges per node, built from the same-row/same-column +
    // shared-container condition.
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, &(ca, ka)) in nodes.iter().enumerate() {
        let (cell_a, cands_a) = &cells[ca];
        let la = cands_a[ka];
        for (b, &(cb, kb)) in nodes.iter().enumerate() {
            if ca == cb {
                continue; // same cell — condition 1 excludes it
            }
            let (cell_b, cands_b) = &cells[cb];
            if cell_a.row != cell_b.row && cell_a.col != cell_b.col {
                continue;
            }
            let lb = cands_b[kb];
            if gazetteer.shares_direct_container(la, lb) {
                // a votes for b
                in_edges[b].push(a);
            }
        }
    }

    // Initial scores: uniform within each cell.
    let mut score: Vec<f64> = nodes
        .iter()
        .map(|&(ci, _)| 1.0 / cells[ci].1.len() as f64)
        .collect();

    let mut iterations = 0;
    let mut converged = false;
    let mut next = vec![0.0f64; n];
    // Ranking-stability criterion: the output only depends on the per-cell
    // ordering of candidate scores, and some vote cycles decay harmonically
    // (Θ(1/n) toward zero), so a tight absolute-delta fixed point would
    // need tens of thousands of sweeps while the ranking is already frozen.
    let mut prev_ranking: Vec<usize> = Vec::new();
    let mut stable_sweeps = 0usize;
    while iterations < config.max_iterations {
        iterations += 1;
        // Jacobi sweep: raw in-sums from the previous iteration's scores.
        for (b, slot) in next.iter_mut().enumerate() {
            *slot = in_edges[b].iter().map(|&a| score[a]).sum();
        }
        // Per-cell renormalization; vote-less cells keep their prior.
        let mut delta = 0.0f64;
        let mut idx = 0usize;
        for (ci, (_, cands)) in cells.iter().enumerate() {
            let m = cands.len();
            let slice = &mut next[idx..idx + m];
            let sum: f64 = slice.iter().sum();
            if sum <= 0.0 {
                for (k, s) in slice.iter_mut().enumerate() {
                    *s = score[idx + k];
                }
            } else {
                for s in slice.iter_mut() {
                    *s /= sum;
                }
            }
            for (k, &s) in slice.iter().enumerate() {
                delta = delta.max((s - score[idx + k]).abs());
            }
            idx += m;
            let _ = ci;
        }
        score.copy_from_slice(&next);
        if delta < config.tolerance {
            converged = true;
            break;
        }
        // Per-cell score ranking; if it holds for 3 consecutive sweeps the
        // argmax output can no longer change.
        let ranking = cell_ranking(cells, &score);
        if ranking == prev_ranking {
            stable_sweeps += 1;
            if stable_sweeps >= 3 {
                converged = true;
                break;
            }
        } else {
            stable_sweeps = 0;
            prev_ranking = ranking;
        }
    }

    // Argmax per cell with seeded random tie-breaking.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut chosen = HashMap::new();
    let mut scores = HashMap::new();
    let mut idx = 0usize;
    for (cell, cands) in cells {
        let m = cands.len();
        if m == 0 {
            continue;
        }
        let slice = &score[idx..idx + m];
        let best = slice.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut best_ks: Vec<usize> = (0..m)
            .filter(|&k| (slice[k] - best).abs() < 1e-12)
            .collect();
        best_ks.shuffle(&mut rng);
        chosen.insert(*cell, cands[best_ks[0]]);
        for (k, &s) in slice.iter().enumerate() {
            scores.insert((*cell, cands[k]), s);
        }
        idx += m;
    }

    DisambiguationResult {
        chosen,
        scores,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gazetteer::LocationKind;

    #[test]
    fn cell_ranking_orders_by_descending_score_stably() {
        let cells = vec![(
            CellId::new(0, 0),
            (0..4).map(LocationId).collect::<Vec<_>>(),
        )];
        // Candidates 1 and 3 tie; the sort is stable, so their original
        // order (1 before 3) survives.
        let ranking = cell_ranking(&cells, &[0.1, 0.4, 0.9, 0.4]);
        assert_eq!(ranking, vec![2, 1, 3, 0]);
    }

    #[test]
    fn cell_ranking_survives_nan_scores() {
        // A NaN score must not panic the convergence check; under
        // total_cmp it ranks above every finite score.
        let cells = vec![(
            CellId::new(0, 0),
            (0..3).map(LocationId).collect::<Vec<_>>(),
        )];
        let ranking = cell_ranking(&cells, &[0.5, f64::NAN, 0.9]);
        assert_eq!(ranking, vec![1, 2, 0]);
    }

    /// Builds the exact candidate layout of Figure 7a over the Figure 7
    /// gazetteer. Cell coordinates follow the paper (1-based there,
    /// 0-based here): rows 12, 13, 20 and columns 1, 2 become (11,0),
    /// (11,1), (12,0), (12,1), (19,0), (19,1).
    fn figure7_cells(g: &Gazetteer) -> Vec<(CellId, Vec<LocationId>)> {
        let find_city = |name: &str, mark: &str| {
            g.lookup_kind(name, LocationKind::City)
                .into_iter()
                .find(|&id| g.full_name(id).contains(mark))
                .unwrap()
        };
        let streets = |name: &str| g.lookup_kind(name, LocationKind::Street);

        vec![
            (CellId::new(11, 0), streets("Pennsylvania Avenue")),
            (
                CellId::new(11, 1),
                vec![
                    find_city("Washington", "D.C."),
                    find_city("Washington", "GA"),
                ],
            ),
            (CellId::new(12, 0), streets("Wofford Lane")),
            (
                CellId::new(12, 1),
                vec![
                    find_city("College Park", "MD"),
                    find_city("College Park", "GA"),
                ],
            ),
            (CellId::new(19, 0), streets("Clarksville Street")),
            (
                CellId::new(19, 1),
                vec![
                    find_city("Paris", "TX"),
                    find_city("Paris", "France"),
                    find_city("Paris", "TN"),
                ],
            ),
        ]
    }

    #[test]
    fn figure7_resolves_as_in_the_paper() {
        let g = Gazetteer::figure7();
        let cells = figure7_cells(&g);
        let res = disambiguate(&g, &cells, DisambiguationConfig::default());
        assert!(res.converged, "figure 7 graph must converge");

        let full = |cell: CellId| g.full_name(res.interpretation(cell).unwrap());
        assert!(
            full(CellId::new(11, 0)).contains("D.C."),
            "{}",
            full(CellId::new(11, 0))
        );
        assert!(full(CellId::new(11, 1)).contains("D.C."));
        assert!(full(CellId::new(12, 0)).contains("College Park, MD"));
        assert!(full(CellId::new(12, 1)).contains("MD"));
        assert!(full(CellId::new(19, 0)).contains("Paris, TX"));
        assert!(full(CellId::new(19, 1)).contains("TX"));
    }

    #[test]
    fn scores_are_normalized_per_cell() {
        let g = Gazetteer::figure7();
        let cells = figure7_cells(&g);
        let res = disambiguate(&g, &cells, DisambiguationConfig::default());
        for (cell, cands) in &cells {
            let sum: f64 = cands
                .iter()
                .map(|&l| res.scores.get(&(*cell, l)).copied().unwrap_or(0.0))
                .sum();
            assert!((sum - 1.0).abs() < 1e-9, "cell {cell} scores sum to {sum}");
        }
    }

    #[test]
    fn isolated_cells_keep_uniform_prior() {
        let g = Gazetteer::figure7();
        // One lonely ambiguous cell: no row/column partners, no votes.
        let paris = g.lookup_kind("Paris", LocationKind::City);
        let cells = vec![(CellId::new(0, 0), paris.clone())];
        let res = disambiguate(&g, &cells, DisambiguationConfig::default());
        for &p in &paris {
            let s = res.scores[&(CellId::new(0, 0), p)];
            assert!((s - 1.0 / 3.0).abs() < 1e-9);
        }
        // A choice is still made (random among ties, seeded).
        assert!(res.interpretation(CellId::new(0, 0)).is_some());
    }

    #[test]
    fn tie_breaking_is_deterministic_per_seed() {
        let g = Gazetteer::figure7();
        let paris = g.lookup_kind("Paris", LocationKind::City);
        let cells = vec![(CellId::new(0, 0), paris)];
        let a = disambiguate(&g, &cells, DisambiguationConfig::default());
        let b = disambiguate(&g, &cells, DisambiguationConfig::default());
        assert_eq!(
            a.interpretation(CellId::new(0, 0)),
            b.interpretation(CellId::new(0, 0))
        );
    }

    #[test]
    fn unambiguous_cell_votes_with_full_weight() {
        let g = Gazetteer::figure7();
        let wash_dc = g
            .lookup_kind("Washington", LocationKind::City)
            .into_iter()
            .find(|&id| g.full_name(id).contains("D.C."))
            .unwrap();
        let penn = g.lookup_kind("Pennsylvania Avenue", LocationKind::Street);
        // Row 0: unambiguous city next to the ambiguous street.
        let cells = vec![
            (CellId::new(0, 0), penn.clone()),
            (CellId::new(0, 1), vec![wash_dc]),
        ];
        let res = disambiguate(&g, &cells, DisambiguationConfig::default());
        let street = res.interpretation(CellId::new(0, 0)).unwrap();
        assert!(g.full_name(street).contains("D.C."));
        let s = res.scores[&(CellId::new(0, 0), street)];
        assert!(s > 0.99, "city vote should dominate: {s}");
    }

    #[test]
    fn same_column_city_votes_propagate() {
        let g = Gazetteer::figure7();
        // Column of cities: "Washington" (ambiguous DC/GA) above
        // "College Park" (ambiguous MD/GA). Only the GA pair shares a
        // container, so both resolve to Georgia.
        let find_city = |name: &str, mark: &str| {
            g.lookup_kind(name, LocationKind::City)
                .into_iter()
                .find(|&id| g.full_name(id).contains(mark))
                .unwrap()
        };
        let cells = vec![
            (
                CellId::new(0, 0),
                vec![
                    find_city("Washington", "D.C."),
                    find_city("Washington", "GA"),
                ],
            ),
            (
                CellId::new(1, 0),
                vec![
                    find_city("College Park", "MD"),
                    find_city("College Park", "GA"),
                ],
            ),
        ];
        let res = disambiguate(&g, &cells, DisambiguationConfig::default());
        assert!(g
            .full_name(res.interpretation(CellId::new(0, 0)).unwrap())
            .contains("GA"));
        assert!(g
            .full_name(res.interpretation(CellId::new(1, 0)).unwrap())
            .contains("GA"));
    }

    #[test]
    fn empty_input_is_fine() {
        let g = Gazetteer::figure7();
        let res = disambiguate(&g, &[], DisambiguationConfig::default());
        assert!(res.chosen.is_empty());
        assert!(res.converged);
    }

    #[test]
    fn cells_with_no_candidates_are_skipped() {
        let g = Gazetteer::figure7();
        let cells = vec![(CellId::new(0, 0), vec![])];
        let res = disambiguate(&g, &cells, DisambiguationConfig::default());
        assert!(res.interpretation(CellId::new(0, 0)).is_none());
    }
}
