//! The simulated geocoding service.
//!
//! Stands in for the Google Geocoding API of §5.2.2: given a (possibly
//! partial) address string, returns *every* candidate interpretation from
//! the gazetteer — the set `L_{i,j}` that the disambiguation graph
//! consumes. "If the address is partial, the API can still retrieve the
//! name of the city or cities to which the address may refer; therefore,
//! we are left with the problem of resolving the ambiguities."
//!
//! Each call charges virtual latency into the shared [`VirtualClock`] so
//! the §6.4 efficiency experiment accounts for geocoding round-trips.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::SeedableRng;

use teda_simkit::{LatencyModel, VirtualClock};

use crate::address::parse_address;
use crate::gazetteer::{Gazetteer, LocationId, LocationKind};

/// A geocoding service: address text → candidate interpretations.
pub trait Geocoder {
    /// All candidate locations the address may denote, most specific kind
    /// first (streets before cities). Empty when nothing matches.
    fn geocode(&self, address: &str) -> Vec<LocationId>;
}

/// The simulated Google Geocoding API.
pub struct SimGeocoder {
    gazetteer: Arc<Gazetteer>,
    clock: VirtualClock,
    latency: LatencyModel,
    rng: Mutex<StdRng>,
    queries: AtomicU64,
}

impl SimGeocoder {
    /// Creates a geocoder over `gazetteer`, charging `latency` per query
    /// into `clock`.
    pub fn new(gazetteer: Arc<Gazetteer>, clock: VirtualClock, latency: LatencyModel) -> Self {
        SimGeocoder {
            gazetteer,
            clock,
            latency,
            rng: Mutex::new(StdRng::seed_from_u64(0x6e0c0de)),
            queries: AtomicU64::new(0),
        }
    }

    /// A zero-latency geocoder for tests.
    pub fn instant(gazetteer: Arc<Gazetteer>) -> Self {
        SimGeocoder::new(gazetteer, VirtualClock::new(), LatencyModel::zero())
    }

    /// Number of geocoding calls served.
    pub fn query_count(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// The underlying gazetteer.
    pub fn gazetteer(&self) -> &Gazetteer {
        &self.gazetteer
    }

    fn charge(&self) {
        let d = {
            let mut rng = self.rng.lock().expect("geocoder rng poisoned");
            self.latency.sample(&mut *rng)
        };
        self.clock.advance(d);
        self.queries.fetch_add(1, Ordering::Relaxed);
    }
}

impl Geocoder for SimGeocoder {
    fn geocode(&self, address: &str) -> Vec<LocationId> {
        self.charge();
        let parsed = parse_address(address);
        let g = &*self.gazetteer;
        let mut out: Vec<LocationId> = Vec::new();

        if let Some(street) = &parsed.street_name {
            let mut streets = g.lookup_kind(street, LocationKind::Street);
            // A city (and/or state) narrows the street candidates.
            if let Some(city) = &parsed.city {
                let cities = g.lookup_kind(city, LocationKind::City);
                streets.retain(|&s| {
                    g.direct_container(s)
                        .map(|c| cities.contains(&c))
                        .unwrap_or(false)
                });
            }
            if let Some(state) = &parsed.state {
                let states = g.lookup_kind(state, LocationKind::State);
                streets.retain(|&s| states.iter().any(|&st| g.contains(st, s)));
            }
            out.extend(streets);
        }

        if out.is_empty() {
            if let Some(city) = &parsed.city {
                let mut cities = g.lookup_kind(city, LocationKind::City);
                if let Some(state) = &parsed.state {
                    let states = g.lookup_kind(state, LocationKind::State);
                    let narrowed: Vec<LocationId> = cities
                        .iter()
                        .copied()
                        .filter(|&c| states.iter().any(|&st| g.contains(st, c)))
                        .collect();
                    if !narrowed.is_empty() {
                        cities = narrowed;
                    }
                }
                out.extend(cities);
            }
        }

        // Last resort: the raw string may itself be a known toponym of any
        // kind (state names, etc.).
        if out.is_empty() {
            out.extend(g.lookup(address.trim()).iter().copied());
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn fixture() -> SimGeocoder {
        SimGeocoder::instant(Arc::new(Gazetteer::figure7()))
    }

    #[test]
    fn ambiguous_street_returns_all_interpretations() {
        let gc = fixture();
        let cands = gc.geocode("1600 Pennsylvania Avenue");
        assert_eq!(cands.len(), 2, "Baltimore and Washington D.C.");
        let names: Vec<String> = cands
            .iter()
            .map(|&id| gc.gazetteer().full_name(id))
            .collect();
        assert!(names.iter().any(|n| n.contains("Baltimore")));
        assert!(names.iter().any(|n| n.contains("D.C.")));
    }

    #[test]
    fn city_narrows_street() {
        let gc = fixture();
        let cands = gc.geocode("1600 Pennsylvania Avenue, Washington");
        assert_eq!(cands.len(), 1);
        assert!(gc.gazetteer().full_name(cands[0]).contains("D.C."));
    }

    #[test]
    fn state_narrows_street() {
        let gc = fixture();
        let cands = gc.geocode("Clarksville Street, TX");
        assert_eq!(cands.len(), 2, "Paris TX and Bogata TX");
    }

    #[test]
    fn bare_city_is_ambiguous() {
        let gc = fixture();
        let cands = gc.geocode("Paris");
        assert_eq!(cands.len(), 3, "TX, TN, France");
    }

    #[test]
    fn city_plus_state() {
        let gc = fixture();
        let cands = gc.geocode("College Park, GA");
        assert_eq!(cands.len(), 1);
        assert!(gc.gazetteer().full_name(cands[0]).contains("GA"));
    }

    #[test]
    fn unknown_address_is_empty() {
        let gc = fixture();
        assert!(gc.geocode("Atlantis Boulevard, Atlantis").is_empty());
        assert!(gc.geocode("").is_empty());
    }

    #[test]
    fn latency_is_charged() {
        let clock = VirtualClock::new();
        let gc = SimGeocoder::new(
            Arc::new(Gazetteer::figure7()),
            clock.clone(),
            LatencyModel::Fixed(Duration::from_millis(120)),
        );
        gc.geocode("Paris");
        gc.geocode("Washington");
        assert_eq!(clock.now(), Duration::from_millis(240));
        assert_eq!(gc.query_count(), 2);
    }
}
