//! Loose postal-address parsing.
//!
//! §5.2.2: "spatial information in GFT tables often comes as postal
//! addresses, which are difficult to parse because their format depends on
//! the country. … in many tables we came across, addresses are incomplete,
//! and just report the street number and name and, possibly, the zip code."
//!
//! The parser is therefore deliberately forgiving: comma-separated
//! segments, the first of which may carry a street number + street name;
//! later segments are city / state / zip candidates. Anything it cannot
//! classify is kept as an extra token so the geocoder can still try name
//! lookup on it.

/// A decomposed (possibly partial) postal address.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedAddress {
    /// Leading house number of the first segment, if any.
    pub street_number: Option<String>,
    /// Street name (first segment minus the number), if it looks like one.
    pub street_name: Option<String>,
    /// City name candidate (second-to-last comma segment, typically).
    pub city: Option<String>,
    /// State / region candidate (short trailing alpha segment).
    pub state: Option<String>,
    /// Zip / postal code (trailing digit group).
    pub zip: Option<String>,
}

impl ParsedAddress {
    /// Whether nothing at all was recognized.
    pub fn is_empty(&self) -> bool {
        self.street_number.is_none()
            && self.street_name.is_none()
            && self.city.is_none()
            && self.state.is_none()
            && self.zip.is_none()
    }
}

const STREET_MARKERS: [&str; 20] = [
    "street",
    "st",
    "avenue",
    "ave",
    "road",
    "rd",
    "boulevard",
    "blvd",
    "lane",
    "ln",
    "drive",
    "dr",
    "way",
    "court",
    "ct",
    "place",
    "pl",
    "highway",
    "hwy",
    "square",
];

fn looks_like_street(segment: &str) -> bool {
    segment
        .split_whitespace()
        .map(|t| {
            t.trim_matches(|c: char| c.is_ascii_punctuation())
                .to_lowercase()
        })
        .any(|t| STREET_MARKERS.contains(&t.as_str()))
}

fn looks_like_zip(tok: &str) -> bool {
    let digits: Vec<&str> = tok.split('-').collect();
    digits
        .iter()
        .all(|d| !d.is_empty() && d.chars().all(|c| c.is_ascii_digit()))
        && (4..=6).contains(&digits[0].len())
}

fn looks_like_state(tok: &str) -> bool {
    // Two-to-four uppercase letters ("MD", "D.C." stripped of dots), or a
    // known long-form region is accepted via the city fallback anyway.
    let stripped: String = tok.chars().filter(|c| c.is_ascii_alphabetic()).collect();
    !stripped.is_empty()
        && stripped.len() <= 4
        && tok
            .chars()
            .filter(|c| c.is_ascii_alphabetic())
            .all(|c| c.is_ascii_uppercase())
}

/// Parses `raw` into components. Never fails; unrecognized inputs yield a
/// mostly-empty [`ParsedAddress`] whose `city` holds the raw text when it
/// is a plausible bare toponym (single segment, no digits).
pub fn parse_address(raw: &str) -> ParsedAddress {
    let mut out = ParsedAddress::default();
    let segments: Vec<&str> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if segments.is_empty() {
        return out;
    }

    let mut rest_start = 0;
    let first = segments[0];
    let mut first_tokens = first.split_whitespace().peekable();
    let leading_number = first_tokens
        .peek()
        .map(|t| t.chars().all(|c| c.is_ascii_digit()) && !t.is_empty())
        .unwrap_or(false);
    if leading_number {
        out.street_number = first_tokens.next().map(str::to_owned);
        let name: Vec<&str> = first_tokens.collect();
        if !name.is_empty() {
            out.street_name = Some(name.join(" "));
        }
        rest_start = 1;
    } else if looks_like_street(first) {
        out.street_name = Some(first.to_owned());
        rest_start = 1;
    }

    // Remaining segments: zip / state / city, scanned from the right.
    let mut remaining: Vec<&str> = segments[rest_start..].to_vec();
    while let Some(last) = remaining.last().copied() {
        // A lone state-like segment is accepted as a state when a street
        // was already parsed ("Clarksville Street, TX"); otherwise a
        // single remaining segment is better treated as a city candidate.
        let have_street = out.street_name.is_some() || out.street_number.is_some();
        if looks_like_zip(last) {
            out.zip = Some(last.to_owned());
            remaining.pop();
        } else if out.state.is_none()
            && looks_like_state(last)
            && (remaining.len() > 1 || have_street)
        {
            out.state = Some(last.to_owned());
            remaining.pop();
        } else {
            break;
        }
    }
    // Trailing "City ST" or "City ST zip" inside one segment.
    if let Some(last) = remaining.last().copied() {
        let mut toks: Vec<&str> = last.split_whitespace().collect();
        while let Some(t) = toks.last().copied() {
            if out.zip.is_none() && looks_like_zip(t) {
                out.zip = Some(t.to_owned());
                toks.pop();
            } else if out.state.is_none() && toks.len() > 1 && looks_like_state(t) {
                out.state = Some(t.to_owned());
                toks.pop();
            } else {
                break;
            }
        }
        if !toks.is_empty() {
            out.city = Some(toks.join(" "));
            remaining.pop();
        }
    }
    // Any leftover middle segment: prefer it as city if none found.
    if out.city.is_none() {
        if let Some(seg) = remaining.last() {
            out.city = Some((*seg).to_owned());
        }
    }
    // Bare toponym: "Paris" with no digits, no street → treat as city.
    if out.street_name.is_none()
        && out.street_number.is_none()
        && out.city.is_none()
        && segments.len() == 1
        && !first.chars().any(|c| c.is_ascii_digit())
    {
        out.city = Some(first.to_owned());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_address() {
        let a = parse_address("1104 Wilshire Blvd, Santa Monica, CA, 90401");
        assert_eq!(a.street_number.as_deref(), Some("1104"));
        assert_eq!(a.street_name.as_deref(), Some("Wilshire Blvd"));
        assert_eq!(a.city.as_deref(), Some("Santa Monica"));
        assert_eq!(a.state.as_deref(), Some("CA"));
        assert_eq!(a.zip.as_deref(), Some("90401"));
    }

    #[test]
    fn partial_address_street_only() {
        // the paper's own partial example
        let a = parse_address("1600 Pennsylvania Avenue");
        assert_eq!(a.street_number.as_deref(), Some("1600"));
        assert_eq!(a.street_name.as_deref(), Some("Pennsylvania Avenue"));
        assert_eq!(a.city, None);
        assert_eq!(a.state, None);
    }

    #[test]
    fn city_state_in_one_segment() {
        let a = parse_address("College Park, GA");
        assert_eq!(a.city.as_deref(), Some("College Park"));
        assert_eq!(a.state.as_deref(), Some("GA"));
        assert_eq!(a.street_name, None);
    }

    #[test]
    fn city_state_without_comma() {
        let a = parse_address("Washington GA");
        assert_eq!(a.city.as_deref(), Some("Washington"));
        assert_eq!(a.state.as_deref(), Some("GA"));
    }

    #[test]
    fn bare_city() {
        let a = parse_address("Paris");
        assert_eq!(a.city.as_deref(), Some("Paris"));
        assert!(a.street_name.is_none());
    }

    #[test]
    fn street_with_city() {
        let a = parse_address("12 Main St, Springfield");
        assert_eq!(a.street_name.as_deref(), Some("Main St"));
        assert_eq!(a.city.as_deref(), Some("Springfield"));
    }

    #[test]
    fn zip_only_tail() {
        let a = parse_address("42 Oak Avenue, 75460");
        assert_eq!(a.zip.as_deref(), Some("75460"));
        assert_eq!(a.street_name.as_deref(), Some("Oak Avenue"));
        assert_eq!(a.city, None);
    }

    #[test]
    fn empty_and_garbage() {
        assert!(parse_address("").is_empty());
        assert!(parse_address("   ").is_empty());
        let a = parse_address("12345");
        // a bare number: recognized as street number with no name
        assert_eq!(a.street_number.as_deref(), Some("12345"));
        assert!(a.street_name.is_none());
    }

    #[test]
    fn multi_word_city_survives() {
        let a = parse_address("1 Museum Way, New York City, NY");
        assert_eq!(a.city.as_deref(), Some("New York City"));
        assert_eq!(a.state.as_deref(), Some("NY"));
    }
}
