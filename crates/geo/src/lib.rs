//! `teda-geo` — the geographic substrate.
//!
//! §5.2.2 of the paper disambiguates search-engine queries with spatial
//! information taken from the table itself: addresses are geocoded through
//! "online geocoding services such as the Google Geocoding API", which
//! "parses an address and breaks it down into different components, such as
//! street, city, state and country", each a geographic location in a
//! containment hierarchy. Ambiguous (partial) addresses yield several
//! candidate interpretations, which the paper resolves with a
//! PageRank-style voting graph over same-row/same-column candidates
//! sharing a geographic container.
//!
//! This crate provides all of it, offline:
//!
//! * [`gazetteer`] — the containment hierarchy (country ⊃ state ⊃ city ⊃
//!   street) with deliberately ambiguous toponyms, including every worked
//!   example from the paper's Figure 7 (Paris TX/TN/France, Washington
//!   DC/GA, College Park MD/GA, Pennsylvania Avenue in two cities);
//! * [`synthetic`] — a seeded generator for larger gazetteers with
//!   controlled name-collision rates;
//! * [`address`] — a loose postal-address parser (partial addresses are
//!   the norm in GFT tables, as the paper observes);
//! * [`geocoder`] — the [`geocoder::Geocoder`] trait and the simulated
//!   Google-Geocoding implementation charging virtual latency;
//! * [`mod@disambiguate`] — the §5.2.2 voting-graph algorithm;
//! * [`memo`] — batch-aware geocoding: a sharded single-flight memo so a
//!   corpus geocodes each distinct address once (the `QueryCache` trick
//!   applied to the geocoder).

pub mod address;
pub mod disambiguate;
pub mod gazetteer;
pub mod geocoder;
pub mod memo;
pub mod synthetic;

pub use address::ParsedAddress;
pub use disambiguate::{disambiguate, DisambiguationConfig, DisambiguationResult};
pub use gazetteer::{Gazetteer, Location, LocationId, LocationKind};
pub use geocoder::{Geocoder, SimGeocoder};
pub use memo::{GeocodeCache, GeocodeStats};
