//! Batch-aware geocoding: a sharded, single-flight memo of
//! `address → candidate locations`.
//!
//! Spatial disambiguation (§5.2.2) geocodes every address cell, and a
//! table corpus repeats addresses the same way it repeats entity names —
//! the same street across listings, the same city column value down a
//! table. [`GeocodeCache`] is the `QueryCache` trick applied to the
//! geocoder: distinct addresses are geocoded once per corpus, duplicate
//! addresses are answered from the memo, and concurrent workers racing
//! on the *same* address share one geocoder call (single flight) while
//! distinct addresses never wait on each other.
//!
//! Determinism: the simulated geocoder is a pure function of the address
//! string (latency aside), so memoization changes the number of geocoder
//! round-trips — the §6.4 cost — never a candidate set.
//!
//! The single-flight machinery — [`Flight`](teda_memo::Flight),
//! [`Slot`](teda_memo::Slot), shard routing, leader execution — lives in
//! [`teda_memo`], shared with `teda-core`'s query cache; this module
//! keeps only the geocoding-specific parts: the flat address map and the
//! flush-the-shard eviction policy.

use std::collections::HashMap;
use std::sync::Arc;

use teda_memo::{lead, Counters, Flight, Shards, Slot};

use crate::gazetteer::LocationId;
use crate::geocoder::Geocoder;

/// Hit/miss accounting of a [`GeocodeCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeocodeStats {
    /// Addresses answered from the memo (geocoder calls saved).
    pub hits: u64,
    /// Addresses that went to the geocoder.
    pub misses: u64,
    /// Entries dropped by shard flushes of a bounded memo.
    pub evictions: u64,
}

impl GeocodeStats {
    /// Hit fraction in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The memoized value: one shared candidate set per address.
type Candidates = Arc<[LocationId]>;

/// A sharded, thread-safe memo of geocoder responses, keyed by the raw
/// address string.
///
/// [`new`](Self::new) is unbounded — right for a one-shot corpus run,
/// which holds at most one entry per *distinct* address and then drops
/// the whole memo. A long-running service should use
/// [`bounded`](Self::bounded): when a shard fills, it is flushed
/// (cheap wholesale reset — addresses are cheap to re-geocode and the
/// memo's value is within-burst deduplication, so LRU bookkeeping buys
/// little here). Flushing only ever costs extra geocoder calls; the
/// geocoder is a pure function of the address, so candidates never
/// change.
#[derive(Debug)]
pub struct GeocodeCache {
    shards: Shards<HashMap<String, Slot<Candidates>>>,
    /// `Ready` entries allowed per shard before it is flushed;
    /// `usize::MAX` when unbounded.
    per_shard_capacity: usize,
    counters: Counters,
}

impl Default for GeocodeCache {
    fn default() -> Self {
        GeocodeCache::new(16)
    }
}

impl GeocodeCache {
    /// Creates an unbounded cache with `shards` lock shards (rounded up
    /// to 1).
    pub fn new(shards: usize) -> Self {
        GeocodeCache::with_capacity(shards, usize::MAX)
    }

    /// Creates a cache bounded to ~`capacity` memoized addresses, split
    /// across `shards` (clamped so the split cannot inflate the bound).
    pub fn bounded(shards: usize, capacity: usize) -> Self {
        let n = shards.clamp(1, capacity.max(1));
        GeocodeCache::with_capacity(n, capacity.div_ceil(n).max(1))
    }

    fn with_capacity(shards: usize, per_shard_capacity: usize) -> Self {
        GeocodeCache {
            shards: Shards::new(shards),
            per_shard_capacity,
            counters: Counters::default(),
        }
    }

    /// The effective total capacity (`None` when unbounded).
    pub fn capacity(&self) -> Option<usize> {
        if self.per_shard_capacity == usize::MAX {
            None
        } else {
            Some(self.per_shard_capacity * self.shards.len())
        }
    }

    /// Returns the memoized candidate set for `address`, consulting
    /// `geocoder` exactly once per distinct address across all threads.
    pub fn get_or_geocode<G: Geocoder + ?Sized>(
        &self,
        geocoder: &G,
        address: &str,
    ) -> Arc<[LocationId]> {
        loop {
            let flight = {
                let mut map = self.shards.lock(address.as_bytes());
                match map.get(address) {
                    Some(Slot::Ready(cands)) => {
                        self.counters.hit();
                        return Arc::clone(cands);
                    }
                    Some(Slot::Pending(flight)) => Arc::clone(flight),
                    None => {
                        self.counters.miss();
                        let flight = Flight::new();
                        map.insert(address.to_owned(), Slot::Pending(Arc::clone(&flight)));
                        drop(map);
                        // Leader: geocode outside the shard lock; on
                        // unwind the slot is removed so followers retry.
                        return lead(
                            || geocoder.geocode(address).into(),
                            |cands| self.resolve(address, &flight, cands),
                        );
                    }
                }
            };
            if let Some(cands) = flight.wait() {
                self.counters.hit();
                return cands;
            }
        }
    }

    /// Publishes a flight's outcome if the slot still holds this flight,
    /// flushing the shard first when the capacity bound is reached
    /// (in-flight entries survive the flush).
    fn resolve(&self, address: &str, flight: &Arc<Flight<Candidates>>, cands: Option<&Candidates>) {
        let mut map = self.shards.lock(address.as_bytes());
        let held = map.get(address).is_some_and(|slot| slot.holds(flight));
        if held {
            match cands {
                Some(c) => {
                    let ready = map.values().filter(|s| s.is_ready()).count();
                    if ready >= self.per_shard_capacity {
                        map.retain(|_, slot| !slot.is_ready());
                        self.counters.evicted(ready as u64);
                    }
                    map.insert(address.to_owned(), Slot::Ready(Arc::clone(c)));
                }
                None => {
                    map.remove(address);
                }
            }
        }
        drop(map);
        flight.finish(cands.map(Arc::clone));
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> GeocodeStats {
        let snap = self.counters.snapshot();
        GeocodeStats {
            hits: snap.hits,
            misses: snap.misses,
            evictions: snap.evictions,
        }
    }

    /// Number of memoized addresses.
    pub fn len(&self) -> usize {
        let mut total = 0;
        self.shards
            .for_each(|map| total += map.values().filter(|slot| slot.is_ready()).count());
        total
    }

    /// Whether nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and zeroes the counters.
    pub fn clear(&self) {
        self.shards.for_each(|map| map.clear());
        self.counters.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gazetteer::Gazetteer;
    use crate::geocoder::SimGeocoder;

    fn geocoder() -> SimGeocoder {
        SimGeocoder::instant(Arc::new(Gazetteer::figure7()))
    }

    #[test]
    fn distinct_addresses_geocode_once() {
        let gc = geocoder();
        let cache = GeocodeCache::default();
        let a = cache.get_or_geocode(&gc, "Paris");
        let b = cache.get_or_geocode(&gc, "Paris");
        let c = cache.get_or_geocode(&gc, "Washington");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(gc.query_count(), 2, "one geocoder call per address");
        assert_eq!(
            cache.stats(),
            GeocodeStats {
                hits: 1,
                misses: 2,
                ..GeocodeStats::default()
            }
        );
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.capacity(), None, "new() stays unbounded");
    }

    #[test]
    fn bounded_memo_flushes_but_never_changes_candidates() {
        let gc = geocoder();
        let cache = GeocodeCache::bounded(1, 2);
        assert_eq!(cache.capacity(), Some(2));
        let addresses = ["Paris", "Washington", "College Park, GA", "Paris"];
        for addr in addresses {
            let direct = gc.geocode(addr);
            assert_eq!(
                &*cache.get_or_geocode(&gc, addr),
                &direct[..],
                "flush changed candidates: {addr}"
            );
        }
        assert!(cache.stats().evictions > 0, "capacity 2 must flush");
        assert!(cache.len() <= 2, "bound exceeded: {}", cache.len());
    }

    #[test]
    fn memoized_candidates_match_direct_geocoding() {
        let gc = geocoder();
        let cache = GeocodeCache::new(4);
        for addr in [
            "1600 Pennsylvania Avenue",
            "Paris",
            "College Park, GA",
            "nowhere at all",
        ] {
            let direct = gc.geocode(addr);
            let memod = cache.get_or_geocode(&gc, addr);
            assert_eq!(&*memod, &direct[..], "memo changed candidates: {addr}");
            // and the memoized re-read is identical too
            assert_eq!(&*cache.get_or_geocode(&gc, addr), &direct[..]);
        }
    }

    #[test]
    fn concurrent_duplicate_addresses_single_flight() {
        let gc = Arc::new(geocoder());
        let cache = Arc::new(GeocodeCache::new(8));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let gc = Arc::clone(&gc);
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for addr in ["Paris", "Washington", "College Park, GA"] {
                        cache.get_or_geocode(gc.as_ref(), addr);
                    }
                });
            }
        });
        assert_eq!(gc.query_count(), 3, "single flight per distinct address");
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 21);
    }

    #[test]
    fn clear_forces_regeocoding() {
        let gc = geocoder();
        let cache = GeocodeCache::default();
        cache.get_or_geocode(&gc, "Paris");
        cache.clear();
        assert!(cache.is_empty());
        cache.get_or_geocode(&gc, "Paris");
        assert_eq!(gc.query_count(), 2);
    }
}
