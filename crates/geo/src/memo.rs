//! Batch-aware geocoding: a sharded, single-flight memo of
//! `address → candidate locations`.
//!
//! Spatial disambiguation (§5.2.2) geocodes every address cell, and a
//! table corpus repeats addresses the same way it repeats entity names —
//! the same street across listings, the same city column value down a
//! table. [`GeocodeCache`] is the `QueryCache` trick applied to the
//! geocoder: distinct addresses are geocoded once per corpus, duplicate
//! addresses are answered from the memo, and concurrent workers racing
//! on the *same* address share one geocoder call (single flight) while
//! distinct addresses never wait on each other.
//!
//! Determinism: the simulated geocoder is a pure function of the address
//! string (latency aside), so memoization changes the number of geocoder
//! round-trips — the §6.4 cost — never a candidate set.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::gazetteer::LocationId;
use crate::geocoder::Geocoder;

/// Hit/miss accounting of a [`GeocodeCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeocodeStats {
    /// Addresses answered from the memo (geocoder calls saved).
    pub hits: u64,
    /// Addresses that went to the geocoder.
    pub misses: u64,
    /// Entries dropped by shard flushes of a bounded memo.
    pub evictions: u64,
}

impl GeocodeStats {
    /// Hit fraction in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One memo slot: a finished candidate set, or a geocode in flight.
#[derive(Debug, Clone)]
enum Slot {
    Ready(Arc<[LocationId]>),
    Pending(Arc<Flight>),
}

/// Rendezvous for workers waiting on another worker's in-flight geocode.
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

#[derive(Debug, Clone)]
enum FlightState {
    Geocoding,
    Done(Arc<[LocationId]>),
    /// The geocoding worker unwound; waiters retry.
    Abandoned,
}

impl Flight {
    fn new() -> Arc<Self> {
        Arc::new(Flight {
            state: Mutex::new(FlightState::Geocoding),
            done: Condvar::new(),
        })
    }

    fn finish(&self, state: FlightState) {
        *self.state.lock().expect("geocode flight poisoned") = state;
        self.done.notify_all();
    }

    fn wait(&self) -> Option<Arc<[LocationId]>> {
        let mut state = self.state.lock().expect("geocode flight poisoned");
        loop {
            match &*state {
                FlightState::Geocoding => {
                    state = self.done.wait(state).expect("geocode flight poisoned");
                }
                FlightState::Done(cands) => return Some(Arc::clone(cands)),
                FlightState::Abandoned => return None,
            }
        }
    }
}

/// A sharded, thread-safe memo of geocoder responses, keyed by the raw
/// address string.
///
/// [`new`](Self::new) is unbounded — right for a one-shot corpus run,
/// which holds at most one entry per *distinct* address and then drops
/// the whole memo. A long-running service should use
/// [`bounded`](Self::bounded): when a shard fills, it is flushed
/// (cheap wholesale reset — addresses are cheap to re-geocode and the
/// memo's value is within-burst deduplication, so LRU bookkeeping buys
/// little here). Flushing only ever costs extra geocoder calls; the
/// geocoder is a pure function of the address, so candidates never
/// change.
#[derive(Debug)]
pub struct GeocodeCache {
    shards: Vec<Mutex<HashMap<String, Slot>>>,
    /// `Ready` entries allowed per shard before it is flushed;
    /// `usize::MAX` when unbounded.
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for GeocodeCache {
    fn default() -> Self {
        GeocodeCache::new(16)
    }
}

impl GeocodeCache {
    /// Creates an unbounded cache with `shards` lock shards (rounded up
    /// to 1).
    pub fn new(shards: usize) -> Self {
        GeocodeCache::with_capacity(shards, usize::MAX)
    }

    /// Creates a cache bounded to ~`capacity` memoized addresses, split
    /// across `shards` (clamped so the split cannot inflate the bound).
    pub fn bounded(shards: usize, capacity: usize) -> Self {
        let n = shards.clamp(1, capacity.max(1));
        GeocodeCache::with_capacity(n, capacity.div_ceil(n).max(1))
    }

    fn with_capacity(shards: usize, per_shard_capacity: usize) -> Self {
        let n = shards.max(1);
        GeocodeCache {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The effective total capacity (`None` when unbounded).
    pub fn capacity(&self) -> Option<usize> {
        if self.per_shard_capacity == usize::MAX {
            None
        } else {
            Some(self.per_shard_capacity * self.shards.len())
        }
    }

    /// Stable FNV-1a shard selection (same scheme as the query cache).
    fn shard_of(&self, address: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in address.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Returns the memoized candidate set for `address`, consulting
    /// `geocoder` exactly once per distinct address across all threads.
    pub fn get_or_geocode<G: Geocoder + ?Sized>(
        &self,
        geocoder: &G,
        address: &str,
    ) -> Arc<[LocationId]> {
        loop {
            let flight = {
                let shard = &self.shards[self.shard_of(address)];
                let mut map = shard.lock().expect("geocode cache shard poisoned");
                match map.get(address) {
                    Some(Slot::Ready(cands)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Arc::clone(cands);
                    }
                    Some(Slot::Pending(flight)) => Arc::clone(flight),
                    None => {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        let flight = Flight::new();
                        map.insert(address.to_owned(), Slot::Pending(Arc::clone(&flight)));
                        drop(map);
                        return self.geocode_as_leader(geocoder, address, &flight);
                    }
                }
            };
            if let Some(cands) = flight.wait() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return cands;
            }
        }
    }

    /// Runs the geocoder call for an installed flight and publishes the
    /// outcome; on unwind the slot is removed so followers retry.
    fn geocode_as_leader<G: Geocoder + ?Sized>(
        &self,
        geocoder: &G,
        address: &str,
        flight: &Arc<Flight>,
    ) -> Arc<[LocationId]> {
        struct Abort<'a> {
            cache: &'a GeocodeCache,
            flight: &'a Arc<Flight>,
            address: &'a str,
            armed: bool,
        }
        impl Drop for Abort<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.cache.resolve(self.address, self.flight, None);
                }
            }
        }
        let mut guard = Abort {
            cache: self,
            flight,
            address,
            armed: true,
        };
        let cands: Arc<[LocationId]> = geocoder.geocode(address).into();
        guard.armed = false;
        self.resolve(address, flight, Some(Arc::clone(&cands)));
        cands
    }

    /// Publishes a flight's outcome if the slot still holds this flight,
    /// flushing the shard first when the capacity bound is reached
    /// (in-flight entries survive the flush).
    fn resolve(&self, address: &str, flight: &Arc<Flight>, cands: Option<Arc<[LocationId]>>) {
        let shard = &self.shards[self.shard_of(address)];
        let mut map = shard.lock().expect("geocode cache shard poisoned");
        let held = matches!(
            map.get(address),
            Some(Slot::Pending(f)) if Arc::ptr_eq(f, flight)
        );
        if held {
            match &cands {
                Some(c) => {
                    let ready = map.values().filter(|s| matches!(s, Slot::Ready(_))).count();
                    if ready >= self.per_shard_capacity {
                        map.retain(|_, slot| matches!(slot, Slot::Pending(_)));
                        self.evictions.fetch_add(ready as u64, Ordering::Relaxed);
                    }
                    map.insert(address.to_owned(), Slot::Ready(Arc::clone(c)));
                }
                None => {
                    map.remove(address);
                }
            }
        }
        drop(map);
        flight.finish(match cands {
            Some(c) => FlightState::Done(c),
            None => FlightState::Abandoned,
        });
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> GeocodeStats {
        GeocodeStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized addresses.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("geocode cache shard poisoned")
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Whether nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and zeroes the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("geocode cache shard poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gazetteer::Gazetteer;
    use crate::geocoder::SimGeocoder;

    fn geocoder() -> SimGeocoder {
        SimGeocoder::instant(Arc::new(Gazetteer::figure7()))
    }

    #[test]
    fn distinct_addresses_geocode_once() {
        let gc = geocoder();
        let cache = GeocodeCache::default();
        let a = cache.get_or_geocode(&gc, "Paris");
        let b = cache.get_or_geocode(&gc, "Paris");
        let c = cache.get_or_geocode(&gc, "Washington");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(gc.query_count(), 2, "one geocoder call per address");
        assert_eq!(
            cache.stats(),
            GeocodeStats {
                hits: 1,
                misses: 2,
                ..GeocodeStats::default()
            }
        );
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.capacity(), None, "new() stays unbounded");
    }

    #[test]
    fn bounded_memo_flushes_but_never_changes_candidates() {
        let gc = geocoder();
        let cache = GeocodeCache::bounded(1, 2);
        assert_eq!(cache.capacity(), Some(2));
        let addresses = ["Paris", "Washington", "College Park, GA", "Paris"];
        for addr in addresses {
            let direct = gc.geocode(addr);
            assert_eq!(
                &*cache.get_or_geocode(&gc, addr),
                &direct[..],
                "flush changed candidates: {addr}"
            );
        }
        assert!(cache.stats().evictions > 0, "capacity 2 must flush");
        assert!(cache.len() <= 2, "bound exceeded: {}", cache.len());
    }

    #[test]
    fn memoized_candidates_match_direct_geocoding() {
        let gc = geocoder();
        let cache = GeocodeCache::new(4);
        for addr in [
            "1600 Pennsylvania Avenue",
            "Paris",
            "College Park, GA",
            "nowhere at all",
        ] {
            let direct = gc.geocode(addr);
            let memod = cache.get_or_geocode(&gc, addr);
            assert_eq!(&*memod, &direct[..], "memo changed candidates: {addr}");
            // and the memoized re-read is identical too
            assert_eq!(&*cache.get_or_geocode(&gc, addr), &direct[..]);
        }
    }

    #[test]
    fn concurrent_duplicate_addresses_single_flight() {
        let gc = Arc::new(geocoder());
        let cache = Arc::new(GeocodeCache::new(8));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let gc = Arc::clone(&gc);
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for addr in ["Paris", "Washington", "College Park, GA"] {
                        cache.get_or_geocode(gc.as_ref(), addr);
                    }
                });
            }
        });
        assert_eq!(gc.query_count(), 3, "single flight per distinct address");
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 21);
    }

    #[test]
    fn clear_forces_regeocoding() {
        let gc = geocoder();
        let cache = GeocodeCache::default();
        cache.get_or_geocode(&gc, "Paris");
        cache.clear();
        assert!(cache.is_empty());
        cache.get_or_geocode(&gc, "Paris");
        assert_eq!(gc.query_count(), 2);
    }
}
