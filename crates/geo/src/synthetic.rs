//! Seeded synthetic gazetteer generation.
//!
//! The benchmark world needs many more places than the Figure 7 fixture,
//! with the same essential property: **toponym ambiguity**. Real U.S.
//! geography reuses city names across states (there are dozens of
//! Springfields) and street names across cities (every town has a Main
//! Street); the generator draws from bounded name pools so the collision
//! rate is controlled by pool size relative to entity count.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use crate::gazetteer::{Gazetteer, LocationId, LocationKind};

/// Shape parameters for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GazetteerSpec {
    /// Number of countries.
    pub countries: usize,
    /// States per country.
    pub states_per_country: usize,
    /// Cities per state.
    pub cities_per_state: usize,
    /// Streets per city.
    pub streets_per_city: usize,
    /// Size of the city-name pool; smaller pools mean more ambiguous city
    /// names. Must be ≥ 1.
    pub city_name_pool: usize,
    /// Size of the street-name pool.
    pub street_name_pool: usize,
}

impl Default for GazetteerSpec {
    fn default() -> Self {
        GazetteerSpec {
            countries: 3,
            states_per_country: 6,
            cities_per_state: 6,
            streets_per_city: 8,
            city_name_pool: 60, // 108 cities from 60 names → ~45% reuse
            street_name_pool: 40,
        }
    }
}

const CITY_STEMS: [&str; 40] = [
    "Spring", "Clar", "Green", "Fair", "Mill", "River", "Oak", "George", "Frank", "Madi", "Jack",
    "Harri", "Lex", "Bright", "Ash", "Wood", "Stone", "Maple", "Cedar", "Hill", "Lake", "North",
    "West", "East", "Glen", "Brook", "Kings", "Queens", "Salem", "Dover", "Milan", "Paris", "Troy",
    "Rome", "Vernon", "Marion", "Newport", "Auburn", "Camden", "Bristol",
];

const CITY_SUFFIXES: [&str; 10] = [
    "field", "ton", "ville", "burg", "port", "view", "wood", "dale", " City", " Park",
];

const STREET_NAMES: [&str; 24] = [
    "Main",
    "Oak",
    "Pine",
    "Maple",
    "Cedar",
    "Elm",
    "Washington",
    "Lake",
    "Hill",
    "Park",
    "Church",
    "Mill",
    "Spring",
    "River",
    "Franklin",
    "Highland",
    "Union",
    "Center",
    "Prospect",
    "Pennsylvania",
    "Jefferson",
    "Madison",
    "Walnut",
    "Chestnut",
];

const STREET_SUFFIXES: [&str; 6] = ["Street", "Avenue", "Road", "Boulevard", "Lane", "Drive"];

const STATE_CODES: [&str; 24] = [
    "AL", "AR", "CA", "CO", "FL", "GA", "IL", "KS", "KY", "LA", "MD", "MI", "MN", "MO", "NC", "NY",
    "OH", "OK", "OR", "PA", "TN", "TX", "VA", "WA",
];

const COUNTRY_NAMES: [&str; 6] = ["USA", "France", "Italy", "Germany", "Spain", "Australia"];

/// Builds the city-name pool deterministically from the seed.
fn city_name_pool(rng: &mut StdRng, size: usize) -> Vec<String> {
    let mut pool = Vec::with_capacity(size);
    let mut seen = std::collections::HashSet::new();
    while pool.len() < size {
        let stem = CITY_STEMS[rng.gen_range(0..CITY_STEMS.len())];
        // Some bare stems (Paris, Troy, Rome...) are city names on their own.
        let name = if rng.gen_bool(0.25) {
            stem.to_owned()
        } else {
            format!(
                "{stem}{}",
                CITY_SUFFIXES[rng.gen_range(0..CITY_SUFFIXES.len())]
            )
        };
        if seen.insert(name.clone()) {
            pool.push(name);
        }
        if seen.len() >= CITY_STEMS.len() * (CITY_SUFFIXES.len() + 1) {
            break; // pool exhausted; accept fewer
        }
    }
    pool
}

fn street_name_pool(rng: &mut StdRng, size: usize) -> Vec<String> {
    let mut pool = Vec::with_capacity(size);
    let mut seen = std::collections::HashSet::new();
    while pool.len() < size {
        let name = format!(
            "{} {}",
            STREET_NAMES[rng.gen_range(0..STREET_NAMES.len())],
            STREET_SUFFIXES[rng.gen_range(0..STREET_SUFFIXES.len())]
        );
        if seen.insert(name.clone()) {
            pool.push(name);
        }
        if seen.len() >= STREET_NAMES.len() * STREET_SUFFIXES.len() {
            break;
        }
    }
    pool
}

/// Generates a gazetteer per `spec`, deterministic in `seed`.
pub fn generate(spec: GazetteerSpec, seed: u64) -> Gazetteer {
    assert!(spec.countries >= 1 && spec.city_name_pool >= 1 && spec.street_name_pool >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let cities_pool = city_name_pool(&mut rng, spec.city_name_pool);
    let streets_pool = street_name_pool(&mut rng, spec.street_name_pool);

    let mut g = Gazetteer::new();
    let mut state_counter = 0usize;
    for ci in 0..spec.countries {
        let cname = COUNTRY_NAMES
            .get(ci)
            .map(|s| (*s).to_owned())
            .unwrap_or_else(|| format!("Country{ci}"));
        let country = g.add_country(&cname);
        for _ in 0..spec.states_per_country {
            let sname = STATE_CODES
                .get(state_counter % STATE_CODES.len())
                .map(|s| {
                    if state_counter < STATE_CODES.len() {
                        (*s).to_owned()
                    } else {
                        format!("{s}{}", state_counter / STATE_CODES.len())
                    }
                })
                .expect("state codes non-empty");
            state_counter += 1;
            let state = g.add_state(&sname, country);
            for _ in 0..spec.cities_per_state {
                let city_name = cities_pool.choose(&mut rng).expect("non-empty pool");
                let city = g.add_city(city_name, state);
                for _ in 0..spec.streets_per_city {
                    let street_name = streets_pool.choose(&mut rng).expect("non-empty pool");
                    g.add_street(street_name, city);
                }
            }
        }
    }
    g
}

/// Formats a (street, number) pair as a postal address with optional
/// city/state qualifiers — what the table generator writes into
/// `Location` columns.
pub fn format_address(
    g: &Gazetteer,
    street: LocationId,
    number: u32,
    include_city: bool,
    include_state: bool,
) -> String {
    let mut s = format!("{} {}", number, g.location(street).name);
    if include_city {
        if let Some(city) = g.city_of(street) {
            s.push_str(", ");
            s.push_str(&g.location(city).name);
            if include_state {
                if let Some(state) = g.direct_container(city) {
                    s.push_str(", ");
                    s.push_str(&g.location(state).name);
                }
            }
        }
    }
    s
}

/// Picks a uniformly random city.
pub fn random_city(g: &Gazetteer, rng: &mut StdRng) -> LocationId {
    let cities: Vec<LocationId> = g.of_kind(LocationKind::City).collect();
    *cities.choose(rng).expect("gazetteer has cities")
}

/// Picks a uniformly random street inside `city`; `None` when the city has
/// no streets.
pub fn random_street_in(g: &Gazetteer, city: LocationId, rng: &mut StdRng) -> Option<LocationId> {
    let streets = g.streets_in(city);
    streets.choose(rng).copied()
}

/// The fraction of city names shared by more than one city — the ambiguity
/// statistic reported by the corpus audit.
pub fn city_name_ambiguity(g: &Gazetteer) -> f64 {
    use std::collections::HashMap;
    let mut by_name: HashMap<&str, usize> = HashMap::new();
    let mut total = 0usize;
    for id in g.of_kind(LocationKind::City) {
        *by_name.entry(g.location(id).name.as_str()).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return 0.0;
    }
    // teda-lint: allow(nondeterministic_iteration) -- integer count/sum is order-insensitive
    let ambiguous: usize = by_name.values().filter(|&&c| c > 1).copied().sum();
    ambiguous as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(GazetteerSpec::default(), 7);
        let b = generate(GazetteerSpec::default(), 7);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() as u32 {
            assert_eq!(
                a.location(LocationId(i)).name,
                b.location(LocationId(i)).name
            );
        }
    }

    #[test]
    fn counts_match_spec() {
        let spec = GazetteerSpec {
            countries: 2,
            states_per_country: 3,
            cities_per_state: 4,
            streets_per_city: 5,
            city_name_pool: 10,
            street_name_pool: 10,
        };
        let g = generate(spec, 1);
        assert_eq!(g.of_kind(LocationKind::Country).count(), 2);
        assert_eq!(g.of_kind(LocationKind::State).count(), 6);
        assert_eq!(g.of_kind(LocationKind::City).count(), 24);
        assert_eq!(g.of_kind(LocationKind::Street).count(), 120);
    }

    #[test]
    fn small_pool_forces_ambiguity() {
        let spec = GazetteerSpec {
            city_name_pool: 5, // 108 cities from 5 names
            ..GazetteerSpec::default()
        };
        let g = generate(spec, 2);
        assert!(
            city_name_ambiguity(&g) > 0.9,
            "ambiguity {}",
            city_name_ambiguity(&g)
        );
    }

    #[test]
    fn formatted_addresses_parse_back() {
        let g = generate(GazetteerSpec::default(), 3);
        let mut rng = StdRng::seed_from_u64(4);
        let city = random_city(&g, &mut rng);
        let street = random_street_in(&g, city, &mut rng).unwrap();
        let addr = format_address(&g, street, 42, true, true);
        let parsed = crate::address::parse_address(&addr);
        assert_eq!(parsed.street_number.as_deref(), Some("42"));
        assert_eq!(
            parsed.street_name.as_deref(),
            Some(g.location(street).name.as_str())
        );
        assert_eq!(parsed.city.as_deref(), Some(g.location(city).name.as_str()));
    }

    #[test]
    fn every_street_has_a_city() {
        let g = generate(GazetteerSpec::default(), 5);
        for s in g.of_kind(LocationKind::Street) {
            assert!(g.city_of(s).is_some());
        }
    }
}
