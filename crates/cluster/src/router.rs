//! The stateless router: scatter a query to every shard's replica
//! group, gather each shard's local top-`k`, merge under the shared
//! tie rules ([`merge_topk`]).
//!
//! The router holds no index — only pooled wire connections and the
//! topology. Correctness rests on two facts proven elsewhere and merely
//! *preserved* here: each shard's scores are bit-identical to the
//! single node's (manifest-carried global statistics, see
//! `shard.rs`), and any global top-`k` document beats all but fewer
//! than `k` documents globally, hence fewer than `k` in its own shard —
//! so it appears in that shard's local top-`k` and survives the merge.
//! The merge itself is `flatten → sort_by(rank_order) → truncate(k)`,
//! the same comparator as every single-node ranking.
//!
//! Failover: each shard is a replica group. A query rotates through the
//! group's replicas (round-robin start, healthy replicas first),
//! retries transport failures on a bounded backoff schedule, and only
//! when the whole schedule runs dry declares the shard down. A dead
//! shard never panics and never silently shrinks the answer: the typed
//! path returns [`ClusterError::PartialResults`] naming the dead
//! shards, and the [`SearchBackend`] path bumps the `partial_results`
//! telemetry counter that [`ServiceStats`](teda_service::ServiceStats)
//! surfaces.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use teda_obs::{stage, Histogram, Registry, StageTimer, Trace, TraceCtx};
use teda_service::ClusterTelemetry;
use teda_websim::scoring::{merge_topk, rank_order};
use teda_websim::{PageId, SearchBackend, SearchResult};
use teda_wire::{SearchHit, WireClient, WireError};

use crate::error::ClusterError;

/// A replica considered unhealthy after this many consecutive failures;
/// unhealthy replicas are tried last (never skipped — a group whose
/// every replica is unhealthy still gets the full schedule, which is
/// also how a recovered replica earns its health back).
const UNHEALTHY_AFTER: u32 = 3;

/// Router knobs. The defaults suit loopback tests and small clusters;
/// production deployments mostly tune the timeouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Full passes over a replica group before the shard is declared
    /// down (each pass tries every replica once).
    pub attempts: u32,
    /// Base backoff between passes: pass `i` sleeps `backoff * i`.
    pub backoff: Duration,
    /// TCP connect deadline when dialling a replica.
    pub connect_timeout: Duration,
    /// Read/write deadline on every round-trip (a half-dead replica
    /// errors out instead of stalling the whole scatter).
    pub io_timeout: Duration,
    /// Idle connections kept pooled per replica.
    pub pool_per_replica: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            attempts: 3,
            backoff: Duration::from_millis(20),
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(2),
            pool_per_replica: 4,
        }
    }
}

/// One read-only replica of a shard: its address, a consecutive-failure
/// counter, and a small pool of idle connections.
struct Replica {
    addr: SocketAddr,
    failures: AtomicU32,
    pool: Mutex<Vec<WireClient>>,
}

impl Replica {
    fn new(addr: SocketAddr) -> Replica {
        Replica {
            addr,
            failures: AtomicU32::new(0),
            pool: Mutex::new(Vec::new()),
        }
    }
}

/// One shard's replica group with its round-robin cursor.
struct ReplicaGroup {
    shard: u32,
    replicas: Vec<Replica>,
    rr: AtomicUsize,
}

/// The scatter-gather router. Implements [`SearchBackend`], so anything
/// that searches a single node — [`BatchAnnotator`](teda_core) included
/// — searches the cluster unchanged.
pub struct ClusterRouter {
    groups: Vec<ReplicaGroup>,
    global_docs: u64,
    config: RouterConfig,
    telemetry: Arc<ClusterTelemetry>,
    /// The router's observability surface: `shard_scatter`/`merge`
    /// histograms and one trace per routed search. All timing goes
    /// through `teda-obs` types — this is a scoring/merge module, and
    /// the no-wallclock invariant (`wallclock_in_scoring`) still holds:
    /// observation never feeds back into ranking.
    obs: Arc<Registry>,
    hist_scatter: Arc<Histogram>,
    hist_merge: Arc<Histogram>,
}

impl std::fmt::Debug for ClusterRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterRouter")
            .field("shards", &self.groups.len())
            .field("global_docs", &self.global_docs)
            .field("config", &self.config)
            .finish()
    }
}

impl ClusterRouter {
    /// Connects to a cluster: `topology[shard]` lists that shard's
    /// replica addresses. Validates the topology against what the
    /// shards themselves report (`SHARD-STATS`): every group's replica
    /// must identify as the expected shard index, agree on the shard
    /// count, and all groups must agree on the global document count —
    /// a router wired to a stale or shuffled deployment is a typed
    /// [`ClusterError::Config`], not a wrong ranking.
    pub fn connect(
        topology: &[Vec<SocketAddr>],
        config: RouterConfig,
    ) -> Result<ClusterRouter, ClusterError> {
        if topology.is_empty() {
            return Err(ClusterError::Config("topology lists no shards".into()));
        }
        if config.attempts == 0 {
            return Err(ClusterError::Config("attempts must be positive".into()));
        }
        let groups = topology
            .iter()
            .enumerate()
            .map(|(shard, addrs)| {
                if addrs.is_empty() {
                    return Err(ClusterError::Config(format!(
                        "shard {shard} has no replicas"
                    )));
                }
                Ok(ReplicaGroup {
                    shard: shard as u32,
                    replicas: addrs.iter().copied().map(Replica::new).collect(),
                    rr: AtomicUsize::new(0),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let obs = Registry::new("router");
        let hist_scatter = obs.histogram(stage::SHARD_SCATTER);
        let hist_merge = obs.histogram(stage::MERGE);
        let router = ClusterRouter {
            groups,
            global_docs: 0,
            config,
            telemetry: Arc::new(ClusterTelemetry::default()),
            obs,
            hist_scatter,
            hist_merge,
        };
        let mut router = router;
        router.global_docs = router.validate_topology()?;
        Ok(router)
    }

    /// Fetches `SHARD-STATS` from every group and cross-checks the
    /// reported identities; returns the agreed global document count.
    fn validate_topology(&self) -> Result<u64, ClusterError> {
        let n_shards = self.groups.len() as u32;
        let mut global_docs: Option<u64> = None;
        for group in &self.groups {
            let report = self.on_group(group, &|c| c.shard_stats())?;
            if report.shard != group.shard || report.n_shards != n_shards {
                return Err(ClusterError::Config(format!(
                    "replica group {} serves shard {}/{} (expected {}/{n_shards})",
                    group.shard, report.shard, report.n_shards, group.shard
                )));
            }
            match global_docs {
                None => global_docs = Some(report.global_docs),
                Some(g) if g != report.global_docs => {
                    return Err(ClusterError::Config(format!(
                        "shard {} reports {} global docs, shard 0 reported {g} \
                         (mixed corpus versions?)",
                        group.shard, report.global_docs
                    )));
                }
                Some(_) => {}
            }
        }
        Ok(global_docs.expect("topology has at least one shard"))
    }

    /// The telemetry handle — pass it to
    /// [`AnnotationService::attach_cluster_telemetry`](teda_service::AnnotationService::attach_cluster_telemetry)
    /// so `STATS` surfaces the fan-out/partial/retry counters.
    pub fn telemetry(&self) -> Arc<ClusterTelemetry> {
        Arc::clone(&self.telemetry)
    }

    /// The router's observability registry: `shard_scatter` and `merge`
    /// stage histograms, plus one completed trace per routed search
    /// (deterministic ids 1, 2, 3, …). `METRICS`-style exposition and
    /// `BENCH_obs.json` read from here.
    pub fn obs(&self) -> Arc<Registry> {
        Arc::clone(&self.obs)
    }

    /// Reassembles the cross-node span tree of one routed search: the
    /// router's own trace for `id`, with every live shard's tree (its
    /// `TRACE-DUMP <id>` over the wire) grafted under the root. `None`
    /// when the router never completed a trace with this id; shards
    /// that no longer remember the id (ring eviction, restart) are
    /// skipped, dead shards are skipped — the tree spans whoever still
    /// answers.
    pub fn reconstruct_trace(&self, id: u64) -> Option<Trace> {
        let mut root = self.obs.trace(id)?;
        for group in &self.groups {
            if let Ok(shard_tree) = self.on_group(group, &|c| c.trace_dump(id)) {
                root.graft(&shard_tree);
            }
        }
        Some(root)
    }

    /// Shard count.
    pub fn n_shards(&self) -> usize {
        self.groups.len()
    }

    /// Pops a pooled connection or dials a fresh one.
    fn checkout(&self, replica: &Replica) -> Result<WireClient, WireError> {
        if let Some(client) = replica.pool.lock().unwrap().pop() {
            return Ok(client);
        }
        let mut client = WireClient::connect_timeout(&replica.addr, self.config.connect_timeout)
            .map_err(|e| WireError::Transport(format!("connect {}: {e}", replica.addr)))?;
        client
            .set_io_timeout(Some(self.config.io_timeout))
            .map_err(|e| WireError::Transport(e.to_string()))?;
        Ok(client)
    }

    /// Returns a healthy connection to the pool (bounded; extras drop).
    fn checkin(&self, replica: &Replica, client: WireClient) {
        let mut pool = replica.pool.lock().unwrap();
        if pool.len() < self.config.pool_per_replica {
            pool.push(client);
        }
    }

    /// Runs one operation against a replica group with rotation, health
    /// ordering and bounded retry. Transport failures (and a server
    /// mid-shutdown) move on to the next replica / next pass; a typed
    /// server error fails fast — every replica would answer the same.
    fn on_group<T>(
        &self,
        group: &ReplicaGroup,
        op: &(dyn Fn(&mut WireClient) -> Result<T, WireError> + Sync),
    ) -> Result<T, ClusterError> {
        let n = group.replicas.len();
        // Rotate the starting replica per call, then bring healthy
        // replicas to the front (stable sort keeps the rotation order
        // within each health class).
        let start = group.rr.fetch_add(1, Ordering::Relaxed);
        let mut order: Vec<usize> = (0..n).map(|i| (start + i) % n).collect();
        order.sort_by_key(|&i| {
            group.replicas[i].failures.load(Ordering::Relaxed) >= UNHEALTHY_AFTER
        });

        let mut tries: u32 = 0;
        let mut last = WireError::Transport("no replica tried".into());
        for pass in 0..self.config.attempts {
            if pass > 0 {
                std::thread::sleep(self.config.backoff * pass);
            }
            for &i in &order {
                let replica = &group.replicas[i];
                tries += 1;
                if tries > 1 {
                    self.telemetry.record_retry();
                }
                let mut client = match self.checkout(replica) {
                    Ok(c) => c,
                    Err(e) => {
                        replica.failures.fetch_add(1, Ordering::Relaxed);
                        last = e;
                        continue;
                    }
                };
                match op(&mut client) {
                    Ok(value) => {
                        replica.failures.store(0, Ordering::Relaxed);
                        self.checkin(replica, client);
                        return Ok(value);
                    }
                    Err(e @ (WireError::Transport(_) | WireError::ShuttingDown)) => {
                        // The connection may be desynchronized — drop it.
                        replica.failures.fetch_add(1, Ordering::Relaxed);
                        last = e;
                    }
                    Err(e) => {
                        // Typed server answer over a healthy connection.
                        replica.failures.store(0, Ordering::Relaxed);
                        self.checkin(replica, client);
                        return Err(ClusterError::Wire {
                            shard: group.shard,
                            error: e,
                        });
                    }
                }
            }
        }
        Err(ClusterError::ShardDown {
            shard: group.shard,
            error: last,
        })
    }

    /// Fans `op` out to every shard concurrently (one thread per group —
    /// the scatter is latency-bound on the slowest shard, and shard
    /// counts are small). Returns per-group outcomes in shard order.
    /// The whole fan-out records into the `shard_scatter` histogram and
    /// each group stamps a `shard<i>` child span on `trace` — pass a
    /// disabled context to observe nothing.
    fn scatter<T: Send>(
        &self,
        op: &(dyn Fn(&mut WireClient) -> Result<T, WireError> + Sync),
        trace: &TraceCtx,
    ) -> Vec<Result<T, ClusterError>> {
        self.telemetry.record_fanout(self.groups.len() as u64);
        let timer = StageTimer::start(Arc::clone(&self.hist_scatter));
        let outcomes = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .groups
                .iter()
                .map(|group| {
                    scope.spawn(move || {
                        let _span = trace.span(&format!("shard{}", group.shard));
                        self.on_group(group, op)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter worker panicked"))
                .collect()
        });
        timer.finish();
        outcomes
    }

    /// Splits scatter outcomes into live results and dead shards.
    /// Non-retryable wire errors propagate as hard errors; whole-group
    /// outages degrade to the partial path. Bumps `partial_results`
    /// once per degraded scatter.
    fn gather<T>(
        &self,
        outcomes: Vec<Result<T, ClusterError>>,
    ) -> Result<(Vec<T>, Vec<u32>), ClusterError> {
        let mut live = Vec::with_capacity(outcomes.len());
        let mut dead = Vec::new();
        for (shard, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(v) => live.push(v),
                Err(ClusterError::ShardDown { .. }) => dead.push(shard as u32),
                Err(e) => return Err(e),
            }
        }
        if !dead.is_empty() {
            self.telemetry.record_partial();
        }
        Ok((live, dead))
    }

    /// The cluster's top-`k` for `query`: bit-identical to the
    /// single-node index when every shard answers, and a typed
    /// [`ClusterError::PartialResults`] (carrying the exact merge over
    /// the live shards) when one or more whole replica groups are down.
    pub fn try_search(&self, query: &str, k: usize) -> Result<Vec<(PageId, f64)>, ClusterError> {
        // Trace the scatter under the router's deterministic id and
        // forward that id to every shard (`TRACE <id> SEARCH …`), so
        // the shard-side trees share it and `reconstruct_trace` can
        // reassemble the whole request.
        let trace = self.obs.start_trace("search");
        let outcomes = match trace.id() {
            Some(id) => self.scatter(&|c: &mut WireClient| c.search_traced(id, query, k), &trace),
            None => self.scatter(&|c: &mut WireClient| c.search(query, k), &trace),
        };
        let (live, dead) = self.gather(outcomes)?;
        let hits = {
            let timer = StageTimer::start(Arc::clone(&self.hist_merge));
            let _span = trace.span(stage::MERGE);
            let hits = merge_topk(live, k);
            timer.finish();
            hits
        };
        trace.finish();
        if dead.is_empty() {
            Ok(hits)
        } else {
            Err(ClusterError::PartialResults {
                dead_shards: dead,
                hits,
            })
        }
    }

    /// Like [`try_search`](Self::try_search) but with hydrated
    /// url/title/snippet fields on every hit (`SEARCH-FULL`). The
    /// partial-results error carries the scored ids of the degraded
    /// merge.
    pub fn try_search_full(&self, query: &str, k: usize) -> Result<Vec<SearchHit>, ClusterError> {
        let trace = self.obs.start_trace("search_full");
        let outcomes = self.scatter(&|c: &mut WireClient| c.search_full(query, k), &trace);
        let (live, dead) = self.gather(outcomes)?;
        let timer = StageTimer::start(Arc::clone(&self.hist_merge));
        let merge_span = trace.span(stage::MERGE);
        // Same comparator as `merge_topk`, applied through the hit's
        // (id, score) key — full hits rank exactly like scored pairs.
        let mut hits: Vec<SearchHit> = live.into_iter().flatten().collect();
        hits.sort_by(|a, b| rank_order(&(a.id, a.score), &(b.id, b.score)));
        hits.truncate(k);
        drop(merge_span);
        timer.finish();
        trace.finish();
        if dead.is_empty() {
            Ok(hits)
        } else {
            Err(ClusterError::PartialResults {
                dead_shards: dead,
                hits: hits.iter().map(|h| (h.id, h.score)).collect(),
            })
        }
    }
}

impl SearchBackend for ClusterRouter {
    /// The infallible trait path: a degraded scatter returns the merge
    /// over the live shards (observable via the `partial_results`
    /// counter), and a hard failure returns no hits — never a panic,
    /// and the telemetry always tells the two apart from "no matches".
    fn search(&self, query: &str, k: usize) -> Vec<(PageId, f64)> {
        match self.try_search(query, k) {
            Ok(hits) | Err(ClusterError::PartialResults { hits, .. }) => hits,
            Err(_) => Vec::new(),
        }
    }

    fn search_results(&self, query: &str, k: usize) -> Vec<SearchResult> {
        match self.try_search_full(query, k) {
            Ok(hits) => hits.into_iter().map(|h| h.result).collect(),
            Err(_) => Vec::new(),
        }
    }

    /// The corpus-wide document count, as agreed by every shard at
    /// connect time.
    fn n_docs(&self) -> usize {
        self.global_docs as usize
    }
}
