//! The shard process: a [`ShardBackend`] scoring its local pages with
//! the manifest's *global* BM25 statistics, served over the wire
//! protocol by a search-only [`WireServer`].
//!
//! The backend's scoring loop is a line-for-line mirror of
//! `InvertedIndex::score_query`, with two substitutions: `N` and each
//! term's document frequency come from the manifest (global), not the
//! local index, and `avg_len` is the manifest's exact global bit
//! pattern. Per document, the contributions are the same values added
//! in the same order as the single node — so every local score is
//! bit-identical to that document's global score, and the router's
//! merge can be bit-identical to the single-node ranking.

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;

use teda_store::{CorpusStore, ShardManifest, StoreError, ViewBackend};
use teda_text::tokenize;
use teda_websim::{scoring, BaseCorpus, PageId, SearchBackend, SearchResult};
use teda_wire::{SearchHit, ShardInfo, WireServer};

use crate::error::ClusterError;

/// One shard's search backend: any [`BaseCorpus`] (heap-loaded
/// [`WebCorpus`](teda_websim::WebCorpus) or mmap'd [`ViewBackend`])
/// plus the manifest that makes its scores globally comparable.
#[derive(Debug)]
pub struct ShardBackend {
    base: Arc<dyn BaseCorpus>,
    manifest: ShardManifest,
    /// `manifest.avg_len_bits` decoded once.
    avg_len: f64,
}

impl ShardBackend {
    /// Opens a shard image heap-resident: snapshot (plus any delta
    /// journal) through [`CorpusStore::load`], manifest validated
    /// against the loaded corpus.
    pub fn open(dir: &std::path::Path) -> Result<ShardBackend, ClusterError> {
        let store = CorpusStore::open(dir)?;
        let loaded = store.load()?;
        let manifest = ShardManifest::load(dir)?;
        Self::from_parts(Arc::new(loaded.corpus), manifest)
    }

    /// Opens a shard image mmap'd: queries walk postings in place and
    /// hydrate page text lazily, exactly like a single mapped node.
    pub fn open_mapped(dir: &std::path::Path) -> Result<ShardBackend, ClusterError> {
        let store = CorpusStore::open(dir)?;
        let snap = store.open_mapped()?;
        let view = ViewBackend::new(snap)?;
        let manifest = ShardManifest::load(dir)?;
        Self::from_parts(Arc::new(view), manifest)
    }

    /// Wraps an already-loaded base behind a manifest, enforcing the
    /// cross-checks that make later scoring panic-free: document counts
    /// agree, the df table covers exactly the local vocabulary, and no
    /// global df is below its local posting count. A mismatched pair is
    /// a corrupt (or mixed-up) shard image — a typed error, never a
    /// wrong ranking.
    pub fn from_parts(
        base: Arc<dyn BaseCorpus>,
        manifest: ShardManifest,
    ) -> Result<ShardBackend, ClusterError> {
        manifest.validate()?;
        let corrupt = |msg: String| {
            Err(ClusterError::Store(StoreError::Corrupt(format!(
                "shard image: {msg}"
            ))))
        };
        if base.n_docs() != manifest.global_ids.len() {
            return corrupt(format!(
                "corpus holds {} documents, manifest maps {}",
                base.n_docs(),
                manifest.global_ids.len()
            ));
        }
        if base.n_terms() != manifest.global_dfs.len() {
            return corrupt(format!(
                "corpus interns {} terms, manifest carries {} global dfs",
                base.n_terms(),
                manifest.global_dfs.len()
            ));
        }
        for tid in 0..base.n_terms() as u32 {
            let local = base.postings_len(tid);
            let global = manifest.global_dfs[tid as usize];
            if (local as u64) > global {
                return corrupt(format!(
                    "term {tid} has {local} local postings but global df {global}"
                ));
            }
        }
        let avg_len = f64::from_bits(manifest.avg_len_bits);
        Ok(ShardBackend {
            base,
            manifest,
            avg_len,
        })
    }

    /// The shard's manifest.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// The wire-level identity a server over this backend advertises.
    pub fn info(&self) -> ShardInfo {
        ShardInfo {
            shard: self.manifest.shard,
            n_shards: self.manifest.n_shards,
            global_docs: self.manifest.global_docs,
        }
    }

    /// Mirror of `InvertedIndex::score_query` with global statistics:
    /// dense local score array plus touched local ids in first-touch
    /// order. Same query-term iteration, same posting order, same
    /// accumulation order — only `N`, df and `avg_len` are replaced by
    /// the manifest's global values, which is exactly what makes each
    /// local score equal the global score bit for bit.
    fn score_query(&self, query: &str) -> (Vec<f64>, Vec<u32>) {
        let n_local = self.base.n_docs();
        let global_docs = self.manifest.global_docs as usize;
        let mut scores = vec![0.0f64; n_local];
        let mut touched: Vec<u32> = Vec::new();
        for term in tokenize(query) {
            let Some(tid) = self.base.term_id(&term) else {
                continue;
            };
            let idf = scoring::idf(global_docs, self.manifest.global_dfs[tid as usize] as usize);
            self.base.for_each_posting(tid, &mut |page, tf| {
                let i = page as usize;
                let contrib =
                    scoring::weight(idf, f64::from(tf), self.base.doc_len_of(i), self.avg_len);
                if scores[i] == 0.0 {
                    touched.push(page);
                }
                scores[i] += contrib;
            });
        }
        (scores, touched)
    }

    /// The shard's top-`k` in **local** ids. Because `global_ids` is
    /// strictly ascending, ranking local ids with the shared tie rules
    /// and translating afterwards gives the same order as ranking the
    /// global ids directly.
    fn search_local(&self, query: &str, k: usize) -> Vec<(PageId, f64)> {
        if k == 0 || self.base.n_docs() == 0 {
            return Vec::new();
        }
        let (scores, touched) = self.score_query(query);
        scoring::rank_top_k(&scores, &touched, k)
    }

    fn to_global(&self, local: PageId) -> PageId {
        PageId(self.manifest.global_ids[local.0 as usize])
    }

    /// The shard's top-`k` as `SEARCH-FULL` hits: global ids, exact
    /// score bits, hydrated fields.
    pub fn search_hits(&self, query: &str, k: usize) -> Vec<SearchHit> {
        self.search_local(query, k)
            .into_iter()
            .map(|(local, score)| SearchHit {
                id: self.to_global(local),
                score,
                result: self.base.page_fields(local).to_result(),
            })
            .collect()
    }
}

impl SearchBackend for ShardBackend {
    /// Global-id hits with globally comparable scores.
    fn search(&self, query: &str, k: usize) -> Vec<(PageId, f64)> {
        self.search_local(query, k)
            .into_iter()
            .map(|(local, score)| (self.to_global(local), score))
            .collect()
    }

    fn search_results(&self, query: &str, k: usize) -> Vec<SearchResult> {
        self.search_local(query, k)
            .into_iter()
            .map(|(local, _)| self.base.page_fields(local).to_result())
            .collect()
    }

    /// The **local** document count (what `SHARD-STATS` reports as
    /// `docs`; `global_docs` travels via [`ShardInfo`]).
    fn n_docs(&self) -> usize {
        self.base.n_docs()
    }
}

/// One shard process: a search-only [`WireServer`] over a
/// [`ShardBackend`], advertising the shard's identity on `SHARD-STATS`.
pub struct ShardServer {
    server: WireServer,
    info: ShardInfo,
}

impl ShardServer {
    /// Opens the shard image at `dir` (heap-resident when `mapped` is
    /// false, mmap'd when true) and serves it on `addr` (port 0 for an
    /// ephemeral port).
    pub fn start(
        dir: &std::path::Path,
        mapped: bool,
        addr: impl ToSocketAddrs,
    ) -> Result<ShardServer, ClusterError> {
        let backend = if mapped {
            ShardBackend::open_mapped(dir)?
        } else {
            ShardBackend::open(dir)?
        };
        Self::start_with(Arc::new(backend), addr)
    }

    /// Serves an already-opened backend (how replicas share one mmap'd
    /// image in-process, and how the tests inject in-memory shards).
    pub fn start_with(
        backend: Arc<ShardBackend>,
        addr: impl ToSocketAddrs,
    ) -> Result<ShardServer, ClusterError> {
        let info = backend.info();
        let server = WireServer::start_search_only(backend, Some(info), addr)
            .map_err(|e| ClusterError::Io(format!("bind shard server: {e}")))?;
        Ok(ShardServer { server, info })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The shard identity this server advertises.
    pub fn info(&self) -> ShardInfo {
        self.info
    }

    /// Stops accepting, closes every connection, joins every thread.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{build_shard, partition_pages};
    use teda_websim::{scoring, WebCorpus, WebPage};

    fn corpus() -> WebCorpus {
        WebCorpus::from_pages(
            (0..19)
                .map(|i| WebPage {
                    url: format!("http://web.sim/{i}"),
                    title: format!("page {i} storage"),
                    body: format!(
                        "distributed storage engine number {} with shared terms {}",
                        i,
                        ["alpha", "beta", "gamma"][i % 3]
                    ),
                })
                .collect(),
        )
    }

    fn shard_backends(c: &WebCorpus, n_shards: u32) -> Vec<ShardBackend> {
        let assignment = partition_pages(c.len(), n_shards);
        (0..n_shards)
            .map(|s| {
                let (local, manifest) = build_shard(c, s, n_shards, &assignment).unwrap();
                ShardBackend::from_parts(Arc::new(local), manifest).unwrap()
            })
            .collect()
    }

    #[test]
    fn shard_scores_are_bit_identical_to_the_global_index() {
        let c = corpus();
        let shards = shard_backends(&c, 3);
        for query in ["storage engine", "alpha", "beta gamma", "absent-term", ""] {
            // Global scores for every document, via a full-length search.
            let global = SearchBackend::search(&c, query, c.len());
            for shard in &shards {
                for (id, score) in SearchBackend::search(shard, query, c.len()) {
                    let oracle = global
                        .iter()
                        .find(|(gid, _)| *gid == id)
                        .unwrap_or_else(|| panic!("shard hit {id:?} unknown globally"));
                    assert_eq!(
                        score.to_bits(),
                        oracle.1.to_bits(),
                        "score of {id:?} for {query:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn merged_shard_topk_equals_single_node_topk() {
        let c = corpus();
        for n_shards in [1u32, 2, 3, 7] {
            let shards = shard_backends(&c, n_shards);
            for query in ["storage", "alpha storage", "gamma engine"] {
                for k in [1usize, 3, 10, 100] {
                    let expected = SearchBackend::search(&c, query, k);
                    let merged = scoring::merge_topk(
                        shards.iter().map(|s| SearchBackend::search(s, query, k)),
                        k,
                    );
                    assert_eq!(expected, merged, "{n_shards} shards, {query:?}, k={k}");
                }
            }
        }
    }

    #[test]
    fn mismatched_manifest_is_a_typed_error() {
        let c = corpus();
        let assignment = partition_pages(c.len(), 2);
        let (local, manifest) = build_shard(&c, 0, 2, &assignment).unwrap();

        // Manifest from the *other* shard: document counts disagree.
        let (_, other) = build_shard(&c, 1, 2, &assignment).unwrap();
        assert!(matches!(
            ShardBackend::from_parts(Arc::new(local.clone()), other),
            Err(ClusterError::Store(StoreError::Corrupt(_)))
        ));

        // Global df below the local posting count: impossible corpus.
        let mut broken = manifest.clone();
        broken.global_dfs[0] = 0;
        let err = ShardBackend::from_parts(Arc::new(local.clone()), broken);
        assert!(err.is_err());

        // The untouched pair is fine.
        assert!(ShardBackend::from_parts(Arc::new(local), manifest).is_ok());
    }

    #[test]
    fn shard_server_answers_search_and_stats_over_tcp() {
        let c = corpus();
        let shards = shard_backends(&c, 2);
        let backend = Arc::new(shards.into_iter().next().unwrap());
        let expected = SearchBackend::search(backend.as_ref(), "storage", 5);
        let server = ShardServer::start_with(Arc::clone(&backend), "127.0.0.1:0").unwrap();

        let mut client = teda_wire::WireClient::connect(server.local_addr()).unwrap();
        let hits = client.search("storage", 5).unwrap();
        assert_eq!(hits, expected, "wire transport must preserve score bits");

        let full = client.search_full("storage", 5).unwrap();
        assert_eq!(full.len(), expected.len());
        for (hit, (id, score)) in full.iter().zip(&expected) {
            assert_eq!(hit.id, *id);
            assert_eq!(hit.score.to_bits(), score.to_bits());
            assert!(!hit.result.url.is_empty());
        }

        let report = client.shard_stats().unwrap();
        assert_eq!(report.shard, 0);
        assert_eq!(report.n_shards, 2);
        assert_eq!(report.global_docs, 19);
        assert_eq!(report.docs, backend.n_docs() as u64);
        assert_eq!(report.searches, 2, "both search verbs counted");

        server.shutdown();
    }
}
