//! The deterministic partitioner: corpus → N shard images on disk.
//!
//! Placement is a pure function of the page id — a splitmix64-style
//! stable hash, **not** `std`'s randomly seeded `DefaultHasher` — so
//! the same corpus partitions identically on every machine and every
//! run. Within a shard, pages keep their ascending global-id order;
//! local id order therefore equals global id order, which is what lets
//! a shard rank on local ids and translate afterwards without
//! disturbing the tie-break order.
//!
//! Each shard image is an ordinary [`CorpusStore`] directory (the shard
//! process opens it heap-resident or mmap'd, exactly like a single
//! node) plus a [`ShardManifest`] carrying the global BM25 statistics:
//! the global document count, the exact average document length bits,
//! and — for every term in the shard's local vocabulary — that term's
//! *global* document frequency. With those three inputs, shard-local
//! scoring performs the identical float operations on the identical
//! bits as the single node, which is the whole bit-identity argument
//! (see `src/README.md`).

use std::path::{Path, PathBuf};

use teda_store::{shard_dir_name, CorpusStore, ShardManifest};
use teda_websim::{BaseCorpus, WebCorpus};

use crate::error::ClusterError;

/// A stable 64-bit mix (splitmix64 finalizer). Fixed here — placement
/// must never depend on a process-random hasher seed.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The shard that owns global page `page_id` in an `n_shards`-way
/// partition. Deterministic across machines and runs.
pub fn shard_of(page_id: u32, n_shards: u32) -> u32 {
    assert!(n_shards > 0, "n_shards must be positive");
    (splitmix64(u64::from(page_id)) % u64::from(n_shards)) as u32
}

/// The hash assignment for every page of an `n_docs`-page corpus.
pub fn partition_pages(n_docs: usize, n_shards: u32) -> Vec<u32> {
    (0..n_docs as u32)
        .map(|id| shard_of(id, n_shards))
        .collect()
}

/// Builds shard `shard`'s in-memory image from an explicit page
/// assignment: the shard corpus (pages in ascending global-id order)
/// and its manifest. Exposed separately from the on-disk writer so the
/// property tests can exercise *arbitrary* partitions — including empty
/// shards and adversarially skewed ones — without touching disk.
pub fn build_shard(
    corpus: &WebCorpus,
    shard: u32,
    n_shards: u32,
    assignment: &[u32],
) -> Result<(WebCorpus, ShardManifest), ClusterError> {
    if assignment.len() != corpus.len() {
        return Err(ClusterError::Config(format!(
            "assignment covers {} pages, corpus has {}",
            assignment.len(),
            corpus.len()
        )));
    }
    if let Some(&bad) = assignment.iter().find(|&&s| s >= n_shards) {
        return Err(ClusterError::Config(format!(
            "assignment names shard {bad} but n_shards is {n_shards}"
        )));
    }
    // Ascending scan ⇒ `global_ids` strictly ascending ⇒ local id order
    // equals global id order (the tie-break invariant).
    let global_ids: Vec<u32> = (0..corpus.len() as u32)
        .filter(|&id| assignment[id as usize] == shard)
        .collect();
    let pages = global_ids
        .iter()
        .map(|&id| corpus.page(teda_websim::PageId(id)).clone())
        .collect();
    let local = WebCorpus::from_pages(pages);

    // Local term → global document frequency. Every local term exists
    // globally (the shard's pages are a subset), with df at least the
    // local posting count — exactly what `ShardManifest::validate` and
    // the shard backend's open-time checks re-assert.
    let global_dfs = local
        .index()
        .terms()
        .iter()
        .map(|term| {
            let tid = BaseCorpus::term_id(corpus, term).ok_or_else(|| {
                ClusterError::Config(format!(
                    "shard term {term:?} missing from global vocabulary"
                ))
            })?;
            Ok(BaseCorpus::postings_len(corpus, tid) as u64)
        })
        .collect::<Result<Vec<u64>, ClusterError>>()?;

    let manifest = ShardManifest {
        shard,
        n_shards,
        global_docs: corpus.len() as u64,
        avg_len_bits: corpus.index().avg_len().to_bits(),
        global_ids,
        global_dfs,
    };
    manifest.validate()?;
    Ok((local, manifest))
}

/// Writes an `n_shards`-way partition of `corpus` under `root` using an
/// explicit page assignment (`assignment[global_id] = shard`). Returns
/// the shard directories in shard order. Each directory is a complete,
/// independently openable shard image: `corpus.snap` + `shard.manifest`.
pub fn write_partition(
    corpus: &WebCorpus,
    n_shards: u32,
    assignment: &[u32],
    root: &Path,
) -> Result<Vec<PathBuf>, ClusterError> {
    let mut dirs = Vec::with_capacity(n_shards as usize);
    for shard in 0..n_shards {
        let (local, manifest) = build_shard(corpus, shard, n_shards, assignment)?;
        let dir = root.join(shard_dir_name(shard as usize));
        let store = CorpusStore::open(&dir)?;
        store.save(&local)?;
        manifest.save(&dir)?;
        dirs.push(dir);
    }
    Ok(dirs)
}

/// Partitions `corpus` into `n_shards` images under `root` with the
/// stable hash placement ([`shard_of`]). The cluster's canonical
/// deployment step: run once, point one shard server at each returned
/// directory.
pub fn partition_corpus(
    corpus: &WebCorpus,
    n_shards: u32,
    root: &Path,
) -> Result<Vec<PathBuf>, ClusterError> {
    if n_shards == 0 {
        return Err(ClusterError::Config("n_shards must be positive".into()));
    }
    let assignment = partition_pages(corpus.len(), n_shards);
    write_partition(corpus, n_shards, &assignment, root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teda_websim::WebPage;

    fn corpus(n: usize) -> WebCorpus {
        WebCorpus::from_pages(
            (0..n)
                .map(|i| WebPage {
                    url: format!("http://web.sim/{i}"),
                    title: format!("page {i}"),
                    body: format!("word{} shared tokens here", i % 5),
                })
                .collect(),
        )
    }

    #[test]
    fn placement_is_stable_and_total() {
        for n_shards in [1u32, 2, 3, 7, 8] {
            let a = partition_pages(100, n_shards);
            let b = partition_pages(100, n_shards);
            assert_eq!(a, b, "placement must be deterministic");
            assert!(a.iter().all(|&s| s < n_shards));
        }
        // Regression-pin a few values: a change in the hash silently
        // re-partitions every deployed corpus.
        assert_eq!(shard_of(0, 4), splitmix64(0) as u32 % 4);
        assert_eq!(shard_of(1, 1), 0);
    }

    #[test]
    fn shards_cover_the_corpus_exactly_once() {
        let c = corpus(23);
        let assignment = partition_pages(c.len(), 3);
        let mut seen = vec![false; c.len()];
        for shard in 0..3 {
            let (local, manifest) = build_shard(&c, shard, 3, &assignment).unwrap();
            assert_eq!(local.len(), manifest.global_ids.len());
            for (lid, &gid) in manifest.global_ids.iter().enumerate() {
                assert!(!seen[gid as usize], "page {gid} in two shards");
                seen[gid as usize] = true;
                // Page content travels intact.
                assert_eq!(
                    local.page(teda_websim::PageId(lid as u32)).url,
                    c.page(teda_websim::PageId(gid)).url
                );
            }
        }
        assert!(seen.iter().all(|&s| s), "some page in no shard");
    }

    #[test]
    fn manifests_carry_the_exact_global_stats() {
        let c = corpus(17);
        let assignment = partition_pages(c.len(), 2);
        for shard in 0..2 {
            let (local, manifest) = build_shard(&c, shard, 2, &assignment).unwrap();
            assert_eq!(manifest.global_docs, 17);
            assert_eq!(manifest.avg_len_bits, c.index().avg_len().to_bits());
            for (tid, term) in local.index().terms().iter().enumerate() {
                let gtid = BaseCorpus::term_id(&c, term).unwrap();
                assert_eq!(
                    manifest.global_dfs[tid],
                    BaseCorpus::postings_len(&c, gtid) as u64,
                    "df of {term:?}"
                );
            }
        }
    }

    #[test]
    fn bad_assignments_are_typed_errors() {
        let c = corpus(5);
        assert!(matches!(
            build_shard(&c, 0, 2, &[0, 1, 0]),
            Err(ClusterError::Config(_))
        ));
        assert!(matches!(
            build_shard(&c, 0, 2, &[0, 1, 2, 0, 1]),
            Err(ClusterError::Config(_))
        ));
        let dir = std::env::temp_dir().join(format!("teda_part_zero_{}", std::process::id()));
        assert!(matches!(
            partition_corpus(&c, 0, &dir),
            Err(ClusterError::Config(_))
        ));
    }

    #[test]
    fn written_partition_round_trips_through_the_store() {
        let c = corpus(12);
        let root = std::env::temp_dir().join(format!("teda_part_rt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let dirs = partition_corpus(&c, 3, &root).unwrap();
        assert_eq!(dirs.len(), 3);
        let mut total = 0;
        for (shard, dir) in dirs.iter().enumerate() {
            let loaded = CorpusStore::open(dir).unwrap().load().unwrap();
            let manifest = ShardManifest::load(dir).unwrap();
            assert_eq!(manifest.shard as usize, shard);
            assert_eq!(loaded.corpus.len(), manifest.global_ids.len());
            total += loaded.corpus.len();
        }
        assert_eq!(total, c.len());
        let _ = std::fs::remove_dir_all(&root);
    }
}
