//! `teda-cluster` — the sharded scatter-gather serving tier.
//!
//! A single node serves the whole corpus from one index (heap-loaded or
//! mmap'd). This crate splits that corpus across N shard processes and
//! puts a stateless router in front, with one non-negotiable contract:
//! **the cluster's answer is bit-identical to the single node's** — the
//! same page ids, the same `f64` score bits, the same order, at every
//! `(query, k)`. The router passes the exact same conformance oracle
//! (`tests/backend_conformance.rs`) as every single-node backend.
//!
//! Three pieces:
//!
//! * [`partition_corpus`] — the deterministic partitioner: a stable
//!   hash of the page id ([`shard_of`]) assigns every page to a shard,
//!   and each shard image is written as an ordinary
//!   [`CorpusStore`](teda_store::CorpusStore) directory plus a
//!   [`ShardManifest`](teda_store::ShardManifest) carrying the *global*
//!   BM25 statistics (document count, exact average-length bits, and
//!   every local term's global document frequency).
//! * [`ShardServer`] / [`ShardBackend`] — one shard process: opens its
//!   image (mapped or heap), scores with the manifest's global
//!   statistics so every local score equals the global score bit for
//!   bit, and serves `SEARCH` / `SEARCH-FULL` / `SHARD-STATS` over the
//!   wire protocol.
//! * [`ClusterRouter`] — the stateless router: fans each query to all
//!   shards over pooled connections, merges the per-shard top-`k` under
//!   the one shared comparator ([`teda_websim::scoring::merge_topk`]),
//!   and fails over across read-only replicas with bounded
//!   retry-and-backoff. A whole replica group down is a typed
//!   [`ClusterError::PartialResults`] naming the dead shard — never a
//!   panic, never a silent wrong answer. It implements
//!   [`SearchBackend`](teda_websim::SearchBackend), so the annotation
//!   engine runs over a cluster unchanged.
//!
//! Why the merge is exact (and not just approximate): any document in
//! the global top-`k` beats all but fewer than `k` documents globally,
//! hence fewer than `k` in its own shard — so it is in its shard's
//! local top-`k`, and flatten-sort-truncate over the local lists
//! recovers the global list exactly. See `src/README.md` for the full
//! determinism argument.

pub mod error;
pub mod partition;
pub mod router;
pub mod shard;

pub use error::ClusterError;
pub use partition::{build_shard, partition_corpus, partition_pages, shard_of, write_partition};
pub use router::{ClusterRouter, RouterConfig};
pub use shard::{ShardBackend, ShardServer};
