//! Typed cluster failures. The serving tier's contract is "never a
//! panic, never a silent wrong answer": every degradation a caller can
//! observe is a variant here, and the one that loses data —
//! [`PartialResults`](ClusterError::PartialResults) — carries both the
//! shards that are down and the best answer the live shards could give.

use teda_store::StoreError;
use teda_websim::PageId;
use teda_wire::WireError;

/// Why a cluster operation failed (or, for
/// [`PartialResults`](ClusterError::PartialResults), degraded).
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The topology or an argument is structurally wrong (empty shard
    /// list, shard image built for a different shard count, replicas of
    /// one group disagreeing about the corpus).
    Config(String),
    /// A shard image could not be read or validated.
    Store(StoreError),
    /// Local I/O outside the store (binding a server socket).
    Io(String),
    /// A shard answered with a typed, non-retryable protocol error
    /// (bad request, oversized `k`). Retrying other replicas would get
    /// the same answer, so the router fails fast instead of burning the
    /// retry schedule.
    Wire {
        /// The shard that rejected the request.
        shard: u32,
        /// The server's typed error.
        error: WireError,
    },
    /// One shard's whole replica group is unreachable — the last wire
    /// error after the bounded retry schedule ran dry.
    ShardDown {
        /// The shard whose group is down.
        shard: u32,
        /// The final error of the last replica tried.
        error: WireError,
    },
    /// The query was answered without one or more shards: `hits` is the
    /// exact merge over the live shards (deterministic, but missing the
    /// dead shards' documents). The caller decides whether a degraded
    /// answer is acceptable; nothing is silently dropped.
    PartialResults {
        /// Shards whose whole replica group was down, ascending.
        dead_shards: Vec<u32>,
        /// The merged top-k over the shards that did answer.
        hits: Vec<(PageId, f64)>,
    },
}

impl From<StoreError> for ClusterError {
    fn from(e: StoreError) -> Self {
        ClusterError::Store(e)
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(msg) => write!(f, "cluster misconfigured: {msg}"),
            ClusterError::Store(e) => write!(f, "shard image: {e}"),
            ClusterError::Io(msg) => write!(f, "cluster i/o: {msg}"),
            ClusterError::Wire { shard, error } => {
                write!(f, "shard {shard} rejected the request: {error}")
            }
            ClusterError::ShardDown { shard, error } => {
                write!(f, "shard {shard}: every replica failed (last: {error})")
            }
            ClusterError::PartialResults { dead_shards, hits } => write!(
                f,
                "partial results: shard(s) {dead_shards:?} down, {} hits from live shards",
                hits.len()
            ),
        }
    }
}

impl std::error::Error for ClusterError {}
