//! The wire grammar: newline-delimited frames, backslash escaping,
//! typed errors mirroring [`Rejection`].
//!
//! Every request and every reply is exactly one `\n`-terminated line.
//! Payloads that themselves contain newlines (CSV documents, annotation
//! listings, stats reports) ride inside a frame with `\`-escaping:
//! `\\` ↔ `\`, `\n` ↔ newline, `\r` ↔ carriage return — so a quoted
//! POI address spanning lines is still one frame, and framing survives
//! arbitrary untrusted field content.
//!
//! ```text
//! request  = "CLIENT" SP name LF            ; set this connection's ClientId
//!          | "ANNOTATE" SP name SP csv LF   ; blocking submit (backpressure)
//!          | "TRY" SP name SP csv LF        ; non-blocking submit (sheds)
//!          | "STATS" LF                     ; ServiceStats snapshot
//!          | "BUDGET" LF                    ; remaining query pool
//!          | "SNAPSHOT" LF                  ; persist the query-cache snapshot
//!          | "QUIT" LF                      ; close the connection
//! name     = 1*VCHAR                        ; no spaces, ≤ 256 bytes
//! csv      = escaped CSV document, optionally led by a "#types" row
//!
//! reply    = "OK" [SP payload] LF
//!          | "ERR" SP code [SP detail] LF
//! code     = "queue-full" | "budget-exhausted" | "too-large"
//!          | "shutting-down" | "failed" | "bad-request"
//! ```
//!
//! `ANNOTATE`/`TRY` payloads parse through
//! [`teda_corpus::table_from_csv`], i.e. the exact format
//! `teda_corpus::export` writes; the `OK` payload is
//! [`render_annotations`] — a deterministic text rendering, so "wire
//! result bit-identical to the offline batch path" is a string
//! comparison.

use teda_core::pipeline::TableAnnotations;
use teda_service::{Rejection, ServiceStats};

/// Hard bound on one frame (request or reply), escape included. A line
/// longer than this is a `bad-request` and the connection is dropped —
/// the reader cannot resynchronize inside an oversized frame.
pub const MAX_FRAME: usize = 4 * 1024 * 1024;

/// Bound on client and table names.
pub const MAX_NAME: usize = 256;

/// Reads one bounded frame from a buffered stream — the one framing
/// routine both the server and the client use, so the [`MAX_FRAME`]
/// bound cannot drift between the two sides. `Ok(None)` is a clean
/// EOF; an over-long frame is a [`WireError::BadRequest`] and the
/// caller must drop the connection (there is no way to find the next
/// frame boundary inside an unterminated line).
pub fn read_frame<R: std::io::BufRead>(reader: &mut R) -> Result<Option<String>, WireError> {
    use std::io::{BufRead, Read};

    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_FRAME as u64 + 1)
        .read_line(&mut line)
        .map_err(|e| WireError::Transport(e.to_string()))?;
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') && line.len() > MAX_FRAME {
        return Err(WireError::BadRequest(format!(
            "frame longer than {MAX_FRAME} bytes"
        )));
    }
    Ok(Some(line))
}

/// Escapes a payload into single-line form (`\` → `\\`, newline →
/// `\n`, carriage return → `\r`).
pub fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + raw.len() / 8);
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`]. A dangling `\` or an unknown escape is a
/// [`WireError::BadRequest`] — untrusted input never panics.
pub fn unescape(line: &str) -> Result<String, WireError> {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                return Err(WireError::BadRequest(format!(
                    "unknown escape \\{other} in payload"
                )))
            }
            None => {
                return Err(WireError::BadRequest(
                    "dangling escape at end of payload".into(),
                ))
            }
        }
    }
    Ok(out)
}

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `CLIENT <name>` — all later submissions on this connection run
    /// as this [`teda_service::ClientId`].
    Client { name: String },
    /// `ANNOTATE <name> <csv>` — blocking admission (a full queue or a
    /// dry pool stalls this connection, never the others).
    Annotate { name: String, csv: String },
    /// `TRY <name> <csv>` — non-blocking admission; sheds with a typed
    /// error when the queue or the budget cannot take it.
    Try { name: String, csv: String },
    /// `STATS` — a [`ServiceStats`] snapshot.
    Stats,
    /// `BUDGET` — the remaining query pool.
    Budget,
    /// `SNAPSHOT` — persist the service's query-cache snapshot to its
    /// store directory now (`OK snapshot <entries>`); `ERR failed …`
    /// when the service runs without a store or the write fails.
    Snapshot,
    /// `QUIT` — orderly connection close.
    Quit,
}

impl Request {
    /// Parses one frame (trailing newline already stripped).
    pub fn parse(line: &str) -> Result<Request, WireError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, Some(r)),
            None => (line, None),
        };
        match (verb, rest) {
            ("STATS", None) => Ok(Request::Stats),
            ("BUDGET", None) => Ok(Request::Budget),
            ("SNAPSHOT", None) => Ok(Request::Snapshot),
            ("QUIT", None) => Ok(Request::Quit),
            ("CLIENT", Some(name)) => Ok(Request::Client {
                name: valid_name(name)?.to_owned(),
            }),
            ("ANNOTATE", Some(rest)) | ("TRY", Some(rest)) => {
                let (name, payload) = rest.split_once(' ').ok_or_else(|| {
                    WireError::BadRequest(format!("{verb} needs a name and a payload"))
                })?;
                let name = valid_name(name)?.to_owned();
                let csv = unescape(payload)?;
                if verb == "ANNOTATE" {
                    Ok(Request::Annotate { name, csv })
                } else {
                    Ok(Request::Try { name, csv })
                }
            }
            ("STATS" | "BUDGET" | "SNAPSHOT" | "QUIT", Some(_)) => {
                Err(WireError::BadRequest(format!("{verb} takes no arguments")))
            }
            ("CLIENT" | "ANNOTATE" | "TRY", None) => {
                Err(WireError::BadRequest(format!("{verb} needs arguments")))
            }
            ("", _) => Err(WireError::BadRequest("empty request".into())),
            (other, _) => Err(WireError::BadRequest(format!(
                "unknown verb {:?}",
                other.chars().take(32).collect::<String>()
            ))),
        }
    }

    /// Encodes the request as one frame, newline included.
    pub fn encode(&self) -> String {
        match self {
            Request::Client { name } => format!("CLIENT {name}\n"),
            Request::Annotate { name, csv } => format!("ANNOTATE {name} {}\n", escape(csv)),
            Request::Try { name, csv } => format!("TRY {name} {}\n", escape(csv)),
            Request::Stats => "STATS\n".into(),
            Request::Budget => "BUDGET\n".into(),
            Request::Snapshot => "SNAPSHOT\n".into(),
            Request::Quit => "QUIT\n".into(),
        }
    }
}

fn valid_name(name: &str) -> Result<&str, WireError> {
    if name.is_empty() {
        return Err(WireError::BadRequest("empty name".into()));
    }
    if name.len() > MAX_NAME {
        return Err(WireError::BadRequest(format!(
            "name longer than {MAX_NAME} bytes"
        )));
    }
    if name.chars().any(|c| c.is_whitespace() || c.is_control()) {
        return Err(WireError::BadRequest(
            "name must not contain whitespace or control characters".into(),
        ));
    }
    Ok(name)
}

/// A typed wire-level error. The first four variants mirror
/// [`Rejection`] one to one; `Failed` is a worker panic surfaced to the
/// caller; `BadRequest` covers framing/parse problems; `Transport` is
/// client-side I/O and never appears on the wire itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The submission queue was full (`TRY` only — `ANNOTATE` waits).
    QueueFull,
    /// The query pool cannot cover the request (`TRY` only).
    BudgetExhausted,
    /// The request alone exceeds the per-request budget.
    TooLarge {
        /// Worst-case queries the table may need.
        need: u64,
        /// The configured per-request bound.
        budget: u64,
    },
    /// The service is shutting down.
    ShuttingDown,
    /// The annotation worker failed (engine panic).
    Failed(String),
    /// The frame could not be parsed (bad verb, bad escape, bad CSV).
    BadRequest(String),
    /// Client-side transport failure (never encoded on the wire).
    Transport(String),
}

impl From<Rejection> for WireError {
    fn from(r: Rejection) -> Self {
        match r {
            Rejection::QueueFull => WireError::QueueFull,
            Rejection::BudgetExhausted => WireError::BudgetExhausted,
            Rejection::RequestTooLarge { need, budget } => WireError::TooLarge { need, budget },
            // A cancelled submission only happens when the server is
            // tearing the connection down — same story on the wire.
            Rejection::ShuttingDown | Rejection::Cancelled => WireError::ShuttingDown,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Transport(e.to_string())
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::QueueFull => write!(f, "submission queue full"),
            WireError::BudgetExhausted => write!(f, "query pool exhausted"),
            WireError::TooLarge { need, budget } => {
                write!(f, "request needs up to {need} queries, budget is {budget}")
            }
            WireError::ShuttingDown => write!(f, "service shutting down"),
            WireError::Failed(m) => write!(f, "annotation failed: {m}"),
            WireError::BadRequest(m) => write!(f, "bad request: {m}"),
            WireError::Transport(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One reply frame: `OK` with a payload, or a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Success; the payload is verb-specific (already unescaped).
    Ok(String),
    /// Failure with the typed reason.
    Err(WireError),
}

impl Reply {
    /// Encodes the reply as one frame, newline included.
    pub fn encode(&self) -> String {
        match self {
            Reply::Ok(payload) if payload.is_empty() => "OK\n".into(),
            Reply::Ok(payload) => format!("OK {}\n", escape(payload)),
            Reply::Err(e) => {
                let (code, detail) = match e {
                    WireError::QueueFull => ("queue-full", String::new()),
                    WireError::BudgetExhausted => ("budget-exhausted", String::new()),
                    WireError::TooLarge { need, budget } => {
                        ("too-large", format!("{need} {budget}"))
                    }
                    WireError::ShuttingDown => ("shutting-down", String::new()),
                    WireError::Failed(m) => ("failed", escape(m)),
                    WireError::BadRequest(m) => ("bad-request", escape(m)),
                    // Transport errors are local; encode defensively.
                    WireError::Transport(m) => ("failed", escape(m)),
                };
                if detail.is_empty() {
                    format!("ERR {code}\n")
                } else {
                    format!("ERR {code} {detail}\n")
                }
            }
        }
    }

    /// Parses one reply frame (trailing newline tolerated).
    pub fn parse(line: &str) -> Result<Reply, WireError> {
        let line = line.trim_end_matches(['\r', '\n']);
        if line == "OK" {
            return Ok(Reply::Ok(String::new()));
        }
        if let Some(payload) = line.strip_prefix("OK ") {
            return Ok(Reply::Ok(unescape(payload)?));
        }
        let Some(rest) = line.strip_prefix("ERR ") else {
            return Err(WireError::BadRequest(format!(
                "reply is neither OK nor ERR: {:?}",
                line.chars().take(32).collect::<String>()
            )));
        };
        let (code, detail) = match rest.split_once(' ') {
            Some((c, d)) => (c, d),
            None => (rest, ""),
        };
        let err = match code {
            "queue-full" => WireError::QueueFull,
            "budget-exhausted" => WireError::BudgetExhausted,
            "shutting-down" => WireError::ShuttingDown,
            "failed" => WireError::Failed(unescape(detail)?),
            "bad-request" => WireError::BadRequest(unescape(detail)?),
            "too-large" => {
                let (need, budget) = detail
                    .split_once(' ')
                    .ok_or_else(|| WireError::BadRequest("too-large needs `need budget`".into()))?;
                WireError::TooLarge {
                    need: need
                        .parse()
                        .map_err(|_| WireError::BadRequest("bad too-large need".into()))?,
                    budget: budget
                        .parse()
                        .map_err(|_| WireError::BadRequest("bad too-large budget".into()))?,
                }
            }
            other => {
                return Err(WireError::BadRequest(format!(
                    "unknown error code {other:?}"
                )))
            }
        };
        Ok(Reply::Err(err))
    }
}

/// Deterministic text rendering of a table's annotations — the
/// `ANNOTATE`/`TRY` success payload.
///
/// One header line, then one `row,col,type,score,votes` line per cell
/// annotation in pipeline order. `f64` scores print with Rust's
/// shortest-round-trip formatting, so two [`TableAnnotations`] render
/// identically iff they are bit-identical — the wire determinism check
/// is a string comparison against the offline batch path.
pub fn render_annotations(a: &TableAnnotations) -> String {
    use std::fmt::Write;

    let mut out = format!(
        "cells={} skipped={} queried={}\n",
        a.cells.len(),
        a.skipped_cells,
        a.queried_cells
    );
    for c in &a.cells {
        writeln!(
            out,
            "{},{},{},{},{}",
            c.cell.row, c.cell.col, c.etype, c.score, c.votes
        )
        .expect("string write");
    }
    out
}

/// Text rendering of a [`ServiceStats`] snapshot — the `STATS` payload.
/// One `key=value` summary line, then one `client …` line per client in
/// name order.
pub fn render_stats(s: &ServiceStats) -> String {
    use std::fmt::Write;

    let mut out = format!(
        "submitted={} completed={} failed={} shed_queue={} shed_budget={} \
         rejected_oversize={} stream_tables={} backpressure_waits={} \
         p50_us={} p99_us={} max_us={}\n",
        s.submitted,
        s.completed,
        s.failed,
        s.shed_queue,
        s.shed_budget,
        s.rejected_oversize,
        s.stream_tables,
        s.backpressure_waits,
        s.latency.p50.as_micros(),
        s.latency.p99.as_micros(),
        s.latency.max.as_micros(),
    );
    for c in &s.clients {
        writeln!(
            out,
            "client {} submitted={} completed={} failed={} shed={} granted={} bucket={} waiting={}",
            c.client, c.submitted, c.completed, c.failed, c.shed, c.granted, c.bucket, c.waiting
        )
        .expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_csv_with_quoted_newlines() {
        let csv = "#types,Text,Location\nname,addr\n\"Bar,\nGrill\",\"1 Main St\r\nSuite 2\"\n";
        let line = escape(csv);
        assert!(!line.contains('\n'), "escaped payload must be one line");
        assert!(!line.contains('\r'));
        assert_eq!(unescape(&line).unwrap(), csv);
    }

    #[test]
    fn bad_escapes_are_errors_not_panics() {
        assert!(matches!(unescape("a\\"), Err(WireError::BadRequest(_))));
        assert!(matches!(unescape("a\\x"), Err(WireError::BadRequest(_))));
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Client {
                name: "bulk".into(),
            },
            Request::Annotate {
                name: "t1".into(),
                csv: "a,b\n1,\"x\ny\"\n".into(),
            },
            Request::Try {
                name: "t2".into(),
                csv: "a\n1\n".into(),
            },
            Request::Stats,
            Request::Budget,
            Request::Snapshot,
            Request::Quit,
        ];
        for req in reqs {
            let line = req.encode();
            assert!(line.ends_with('\n'));
            assert_eq!(line.matches('\n').count(), 1, "one frame per request");
            assert_eq!(Request::parse(&line).unwrap(), req);
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for bad in [
            "",
            "NOPE",
            "NOPE x y",
            "CLIENT",
            "CLIENT two words",
            "ANNOTATE onlyname",
            "STATS extra",
            "SNAPSHOT now",
            "ANNOTATE t a\\qb",
        ] {
            assert!(
                matches!(Request::parse(bad), Err(WireError::BadRequest(_))),
                "{bad:?} must be a bad-request"
            );
        }
    }

    #[test]
    fn replies_round_trip_including_typed_errors() {
        let replies = [
            Reply::Ok(String::new()),
            Reply::Ok("cells=1\n0,0,Restaurant,0.75,3\n".into()),
            Reply::Err(WireError::QueueFull),
            Reply::Err(WireError::BudgetExhausted),
            Reply::Err(WireError::TooLarge {
                need: 20,
                budget: 10,
            }),
            Reply::Err(WireError::ShuttingDown),
            Reply::Err(WireError::Failed("engine panic".into())),
            Reply::Err(WireError::BadRequest("unknown verb \"X\"".into())),
        ];
        for reply in replies {
            let line = reply.encode();
            assert_eq!(line.matches('\n').count(), 1, "one frame per reply");
            assert_eq!(Reply::parse(&line).unwrap(), reply);
        }
    }

    #[test]
    fn wire_errors_mirror_rejections() {
        assert_eq!(WireError::from(Rejection::QueueFull), WireError::QueueFull);
        assert_eq!(
            WireError::from(Rejection::BudgetExhausted),
            WireError::BudgetExhausted
        );
        assert_eq!(
            WireError::from(Rejection::RequestTooLarge { need: 9, budget: 4 }),
            WireError::TooLarge { need: 9, budget: 4 }
        );
        assert_eq!(
            WireError::from(Rejection::ShuttingDown),
            WireError::ShuttingDown
        );
    }

    #[test]
    fn render_annotations_is_line_per_cell() {
        use teda_core::annotate::CellAnnotation;
        use teda_kb::EntityType;
        use teda_tabular::CellId;

        let a = TableAnnotations {
            cells: vec![CellAnnotation {
                cell: CellId::new(2, 1),
                etype: EntityType::Restaurant,
                score: 0.625,
                votes: 5,
            }],
            skipped_cells: 3,
            queried_cells: 4,
        };
        let text = render_annotations(&a);
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("cells=1 skipped=3 queried=4"));
        let cell = lines.next().unwrap();
        assert!(cell.starts_with("2,1,"));
        assert!(cell.ends_with(",0.625,5"));
        assert_eq!(lines.next(), None);
    }
}
