//! The wire grammar: newline-delimited frames, backslash escaping,
//! typed errors mirroring [`Rejection`].
//!
//! Every request and every reply is exactly one `\n`-terminated line.
//! Payloads that themselves contain newlines (CSV documents, annotation
//! listings, stats reports) ride inside a frame with `\`-escaping:
//! `\\` ↔ `\`, `\n` ↔ newline, `\r` ↔ carriage return, `\t` ↔ tab — so
//! a quoted POI address spanning lines is still one frame, tab-separated
//! result fields cannot be forged by field content, and framing survives
//! arbitrary untrusted input.
//!
//! ```text
//! request  = "CLIENT" SP name LF            ; set this connection's ClientId
//!          | "ANNOTATE" SP name SP csv LF   ; blocking submit (backpressure)
//!          | "TRY" SP name SP csv LF        ; non-blocking submit (sheds)
//!          | "STATS" LF                     ; ServiceStats snapshot
//!          | "BUDGET" LF                    ; remaining query pool
//!          | "SNAPSHOT" LF                  ; persist the query-cache snapshot
//!          | "SEARCH" SP k SP query LF      ; scored top-k page ids
//!          | "SEARCH-FULL" SP k SP query LF ; scored top-k with page fields
//!          | "SHARD-STATS" LF               ; shard identity + global stats
//!          | "STATS" SP "JSON" LF           ; ServiceStats as one JSON object
//!          | "METRICS" LF                   ; Prometheus-style exposition
//!          | "TRACE-DUMP" SP id LF          ; one completed span tree by id
//!          | "TRACE" SP id SP request LF    ; run request under trace id
//!          | "QUIT" LF                      ; close the connection
//! name     = 1*VCHAR                        ; no spaces, ≤ 256 bytes
//! k        = 1*DIGIT                        ; ≤ MAX_K
//! id       = 16HEXDIG                       ; a trace id, zero-padded hex
//! csv      = escaped CSV document, optionally led by a "#types" row
//!
//! reply    = "OK" [SP payload] LF
//!          | "ERR" SP code [SP detail] LF
//! code     = "queue-full" | "budget-exhausted" | "too-large"
//!          | "shutting-down" | "failed" | "bad-request"
//! ```
//!
//! `SEARCH` scores travel as 16-hex-digit IEEE-754 bit patterns
//! ([`render_scored`]), so cluster bit-identity is never at the mercy of
//! decimal formatting; `SEARCH-FULL` adds the assembled result fields as
//! tab-separated, field-escaped columns ([`render_hits`]).
//!
//! `ANNOTATE`/`TRY` payloads parse through
//! [`teda_corpus::table_from_csv`], i.e. the exact format
//! `teda_corpus::export` writes; the `OK` payload is
//! [`render_annotations`] — a deterministic text rendering, so "wire
//! result bit-identical to the offline batch path" is a string
//! comparison.

use teda_core::pipeline::TableAnnotations;
use teda_service::{Rejection, ServiceStats};
use teda_websim::{PageId, SearchResult};

/// Hard bound on one frame (request or reply), escape included. A line
/// longer than this is a `bad-request` and the connection is dropped —
/// the reader cannot resynchronize inside an oversized frame.
pub const MAX_FRAME: usize = 4 * 1024 * 1024;

/// Bound on client and table names.
pub const MAX_NAME: usize = 256;

/// Bound on `SEARCH`'s `k`, enforced at parse time so a hostile frame
/// cannot make the server pre-size unbounded result buffers.
pub const MAX_K: usize = 100_000;

/// Reads one bounded frame from a buffered stream — the one framing
/// routine both the server and the client use, so the [`MAX_FRAME`]
/// bound cannot drift between the two sides. `Ok(None)` is a clean
/// EOF; an over-long frame is a [`WireError::BadRequest`] and the
/// caller must drop the connection (there is no way to find the next
/// frame boundary inside an unterminated line).
pub fn read_frame<R: std::io::BufRead>(reader: &mut R) -> Result<Option<String>, WireError> {
    use std::io::{BufRead, Read};

    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_FRAME as u64 + 1)
        .read_line(&mut line)
        .map_err(|e| WireError::Transport(e.to_string()))?;
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') && line.len() > MAX_FRAME {
        return Err(WireError::BadRequest(format!(
            "frame longer than {MAX_FRAME} bytes"
        )));
    }
    Ok(Some(line))
}

/// Escapes a payload into single-line form (`\` → `\\`, newline →
/// `\n`, carriage return → `\r`, tab → `\t`). Tab is escaped so an
/// escaped field can never collide with the tab separators of
/// [`render_hits`] lines.
pub fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + raw.len() / 8);
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`]. A dangling `\` or an unknown escape is a
/// [`WireError::BadRequest`] — untrusted input never panics.
pub fn unescape(line: &str) -> Result<String, WireError> {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some(other) => {
                return Err(WireError::BadRequest(format!(
                    "unknown escape \\{other} in payload"
                )))
            }
            None => {
                return Err(WireError::BadRequest(
                    "dangling escape at end of payload".into(),
                ))
            }
        }
    }
    Ok(out)
}

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `CLIENT <name>` — all later submissions on this connection run
    /// as this [`teda_service::ClientId`].
    Client { name: String },
    /// `ANNOTATE <name> <csv>` — blocking admission (a full queue or a
    /// dry pool stalls this connection, never the others).
    Annotate { name: String, csv: String },
    /// `TRY <name> <csv>` — non-blocking admission; sheds with a typed
    /// error when the queue or the budget cannot take it.
    Try { name: String, csv: String },
    /// `STATS` — a [`ServiceStats`] snapshot.
    Stats,
    /// `BUDGET` — the remaining query pool.
    Budget,
    /// `SNAPSHOT` — persist the service's query-cache snapshot to its
    /// store directory now (`OK snapshot <entries>`); `ERR failed …`
    /// when the service runs without a store or the write fails.
    Snapshot,
    /// `SEARCH <k> <query>` (`full = false`) or `SEARCH-FULL <k>
    /// <query>` (`full = true`) — the node's top-`k` for the query:
    /// scored page ids ([`render_scored`]), or ids plus assembled
    /// result fields ([`render_hits`]).
    Search {
        /// How many hits to return (≤ [`MAX_K`]).
        k: usize,
        /// The raw query string (escaped on the wire).
        query: String,
        /// Whether to hydrate page fields (`SEARCH-FULL`).
        full: bool,
    },
    /// `SHARD-STATS` — this node's shard identity and the global corpus
    /// statistics it scores with ([`render_shard_stats`]).
    ShardStats,
    /// `STATS JSON` — the full [`ServiceStats`] snapshot (per-stage
    /// histograms included) as one JSON object ([`render_stats_json`]).
    StatsJson,
    /// `METRICS` — the node's stage histograms and counters in
    /// Prometheus text exposition format (stable ordering).
    Metrics,
    /// `TRACE-DUMP <id>` — one completed span tree from the node's
    /// trace ring, rendered by `teda_obs::Trace::render`.
    TraceDump {
        /// The trace id (16 zero-padded hex digits on the wire).
        id: u64,
    },
    /// `TRACE <id> <request>` — run the inner request under the
    /// caller's trace id, so a cross-node request reconstructs from one
    /// id. Only `SEARCH`/`SEARCH-FULL`/`ANNOTATE`/`TRY` can be traced.
    Traced {
        /// The caller-minted trace id.
        id: u64,
        /// The request to run under that id.
        inner: Box<Request>,
    },
    /// `QUIT` — orderly connection close.
    Quit,
}

impl Request {
    /// Parses one frame (trailing newline already stripped).
    pub fn parse(line: &str) -> Result<Request, WireError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, Some(r)),
            None => (line, None),
        };
        match (verb, rest) {
            ("STATS", None) => Ok(Request::Stats),
            ("STATS", Some("JSON")) => Ok(Request::StatsJson),
            ("BUDGET", None) => Ok(Request::Budget),
            ("SNAPSHOT", None) => Ok(Request::Snapshot),
            ("SHARD-STATS", None) => Ok(Request::ShardStats),
            ("METRICS", None) => Ok(Request::Metrics),
            ("TRACE-DUMP", Some(id)) => Ok(Request::TraceDump {
                id: parse_trace_id(id)?,
            }),
            ("TRACE", Some(rest)) => {
                let (id, inner_line) = rest.split_once(' ').ok_or_else(|| {
                    WireError::BadRequest("TRACE needs an id and a request".into())
                })?;
                let id = parse_trace_id(id)?;
                let inner = Request::parse(inner_line)?;
                if !matches!(
                    inner,
                    Request::Search { .. } | Request::Annotate { .. } | Request::Try { .. }
                ) {
                    return Err(WireError::BadRequest(
                        "TRACE only prefixes SEARCH/SEARCH-FULL/ANNOTATE/TRY".into(),
                    ));
                }
                Ok(Request::Traced {
                    id,
                    inner: Box::new(inner),
                })
            }
            ("QUIT", None) => Ok(Request::Quit),
            ("CLIENT", Some(name)) => Ok(Request::Client {
                name: valid_name(name)?.to_owned(),
            }),
            ("ANNOTATE", Some(rest)) | ("TRY", Some(rest)) => {
                let (name, payload) = rest.split_once(' ').ok_or_else(|| {
                    WireError::BadRequest(format!("{verb} needs a name and a payload"))
                })?;
                let name = valid_name(name)?.to_owned();
                let csv = unescape(payload)?;
                if verb == "ANNOTATE" {
                    Ok(Request::Annotate { name, csv })
                } else {
                    Ok(Request::Try { name, csv })
                }
            }
            ("SEARCH", Some(rest)) | ("SEARCH-FULL", Some(rest)) => {
                let (k, query) = rest.split_once(' ').ok_or_else(|| {
                    WireError::BadRequest(format!("{verb} needs a k and a query"))
                })?;
                let k: usize = k
                    .parse()
                    .map_err(|_| WireError::BadRequest(format!("bad k {k:?}")))?;
                if k > MAX_K {
                    return Err(WireError::BadRequest(format!("k {k} exceeds {MAX_K}")));
                }
                Ok(Request::Search {
                    k,
                    query: unescape(query)?,
                    full: verb == "SEARCH-FULL",
                })
            }
            ("STATS", Some(_)) => Err(WireError::BadRequest(
                "STATS takes no arguments (or the single word JSON)".into(),
            )),
            ("BUDGET" | "SNAPSHOT" | "SHARD-STATS" | "METRICS" | "QUIT", Some(_)) => {
                Err(WireError::BadRequest(format!("{verb} takes no arguments")))
            }
            (
                "CLIENT" | "ANNOTATE" | "TRY" | "SEARCH" | "SEARCH-FULL" | "TRACE-DUMP" | "TRACE",
                None,
            ) => Err(WireError::BadRequest(format!("{verb} needs arguments"))),
            ("", _) => Err(WireError::BadRequest("empty request".into())),
            (other, _) => Err(WireError::BadRequest(format!(
                "unknown verb {:?}",
                other.chars().take(32).collect::<String>()
            ))),
        }
    }

    /// Encodes the request as one frame, newline included.
    pub fn encode(&self) -> String {
        match self {
            Request::Client { name } => format!("CLIENT {name}\n"),
            Request::Annotate { name, csv } => format!("ANNOTATE {name} {}\n", escape(csv)),
            Request::Try { name, csv } => format!("TRY {name} {}\n", escape(csv)),
            Request::Stats => "STATS\n".into(),
            Request::Budget => "BUDGET\n".into(),
            Request::Snapshot => "SNAPSHOT\n".into(),
            Request::Search { k, query, full } => {
                let verb = if *full { "SEARCH-FULL" } else { "SEARCH" };
                format!("{verb} {k} {}\n", escape(query))
            }
            Request::ShardStats => "SHARD-STATS\n".into(),
            Request::StatsJson => "STATS JSON\n".into(),
            Request::Metrics => "METRICS\n".into(),
            Request::TraceDump { id } => format!("TRACE-DUMP {id:016x}\n"),
            Request::Traced { id, inner } => {
                let inner_line = inner.encode();
                format!("TRACE {id:016x} {}", inner_line)
            }
            Request::Quit => "QUIT\n".into(),
        }
    }

    /// Whether the request is read-only and idempotent — safe for a
    /// client to retry on a fresh connection after a transport failure.
    /// Submissions (`ANNOTATE`/`TRY`) and state changes (`CLIENT`,
    /// `SNAPSHOT`) are excluded: a retry could double-apply them. A
    /// `TRACE`-prefixed request inherits the inner request's answer —
    /// retrying a traced search re-records its trace, but telemetry is
    /// not service state.
    pub fn is_read_only(&self) -> bool {
        match self {
            Request::Stats
            | Request::Budget
            | Request::Search { .. }
            | Request::ShardStats
            | Request::StatsJson
            | Request::Metrics
            | Request::TraceDump { .. } => true,
            Request::Traced { inner, .. } => inner.is_read_only(),
            _ => false,
        }
    }
}

fn parse_trace_id(hex: &str) -> Result<u64, WireError> {
    if hex.len() != 16 {
        return Err(WireError::BadRequest(format!(
            "trace id must be 16 hex digits, got {:?}",
            hex.chars().take(20).collect::<String>()
        )));
    }
    u64::from_str_radix(hex, 16).map_err(|_| WireError::BadRequest(format!("bad trace id {hex:?}")))
}

fn valid_name(name: &str) -> Result<&str, WireError> {
    if name.is_empty() {
        return Err(WireError::BadRequest("empty name".into()));
    }
    if name.len() > MAX_NAME {
        return Err(WireError::BadRequest(format!(
            "name longer than {MAX_NAME} bytes"
        )));
    }
    if name.chars().any(|c| c.is_whitespace() || c.is_control()) {
        return Err(WireError::BadRequest(
            "name must not contain whitespace or control characters".into(),
        ));
    }
    Ok(name)
}

/// A typed wire-level error. The first four variants mirror
/// [`Rejection`] one to one; `Failed` is a worker panic surfaced to the
/// caller; `BadRequest` covers framing/parse problems; `Transport` is
/// client-side I/O and never appears on the wire itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The submission queue was full (`TRY` only — `ANNOTATE` waits).
    QueueFull,
    /// The query pool cannot cover the request (`TRY` only).
    BudgetExhausted,
    /// The request alone exceeds the per-request budget.
    TooLarge {
        /// Worst-case queries the table may need.
        need: u64,
        /// The configured per-request bound.
        budget: u64,
    },
    /// The service is shutting down.
    ShuttingDown,
    /// The annotation worker failed (engine panic).
    Failed(String),
    /// The frame could not be parsed (bad verb, bad escape, bad CSV).
    BadRequest(String),
    /// Client-side transport failure (never encoded on the wire).
    Transport(String),
}

impl From<Rejection> for WireError {
    fn from(r: Rejection) -> Self {
        match r {
            Rejection::QueueFull => WireError::QueueFull,
            Rejection::BudgetExhausted => WireError::BudgetExhausted,
            Rejection::RequestTooLarge { need, budget } => WireError::TooLarge { need, budget },
            // A cancelled submission only happens when the server is
            // tearing the connection down — same story on the wire.
            Rejection::ShuttingDown | Rejection::Cancelled => WireError::ShuttingDown,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Transport(e.to_string())
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::QueueFull => write!(f, "submission queue full"),
            WireError::BudgetExhausted => write!(f, "query pool exhausted"),
            WireError::TooLarge { need, budget } => {
                write!(f, "request needs up to {need} queries, budget is {budget}")
            }
            WireError::ShuttingDown => write!(f, "service shutting down"),
            WireError::Failed(m) => write!(f, "annotation failed: {m}"),
            WireError::BadRequest(m) => write!(f, "bad request: {m}"),
            WireError::Transport(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One reply frame: `OK` with a payload, or a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Success; the payload is verb-specific (already unescaped).
    Ok(String),
    /// Failure with the typed reason.
    Err(WireError),
}

impl Reply {
    /// Encodes the reply as one frame, newline included.
    pub fn encode(&self) -> String {
        match self {
            Reply::Ok(payload) if payload.is_empty() => "OK\n".into(),
            Reply::Ok(payload) => format!("OK {}\n", escape(payload)),
            Reply::Err(e) => {
                let (code, detail) = match e {
                    WireError::QueueFull => ("queue-full", String::new()),
                    WireError::BudgetExhausted => ("budget-exhausted", String::new()),
                    WireError::TooLarge { need, budget } => {
                        ("too-large", format!("{need} {budget}"))
                    }
                    WireError::ShuttingDown => ("shutting-down", String::new()),
                    WireError::Failed(m) => ("failed", escape(m)),
                    WireError::BadRequest(m) => ("bad-request", escape(m)),
                    // Transport errors are local; encode defensively.
                    WireError::Transport(m) => ("failed", escape(m)),
                };
                if detail.is_empty() {
                    format!("ERR {code}\n")
                } else {
                    format!("ERR {code} {detail}\n")
                }
            }
        }
    }

    /// Parses one reply frame (trailing newline tolerated).
    pub fn parse(line: &str) -> Result<Reply, WireError> {
        let line = line.trim_end_matches(['\r', '\n']);
        if line == "OK" {
            return Ok(Reply::Ok(String::new()));
        }
        if let Some(payload) = line.strip_prefix("OK ") {
            return Ok(Reply::Ok(unescape(payload)?));
        }
        let Some(rest) = line.strip_prefix("ERR ") else {
            return Err(WireError::BadRequest(format!(
                "reply is neither OK nor ERR: {:?}",
                line.chars().take(32).collect::<String>()
            )));
        };
        let (code, detail) = match rest.split_once(' ') {
            Some((c, d)) => (c, d),
            None => (rest, ""),
        };
        let err = match code {
            "queue-full" => WireError::QueueFull,
            "budget-exhausted" => WireError::BudgetExhausted,
            "shutting-down" => WireError::ShuttingDown,
            "failed" => WireError::Failed(unescape(detail)?),
            "bad-request" => WireError::BadRequest(unescape(detail)?),
            "too-large" => {
                let (need, budget) = detail
                    .split_once(' ')
                    .ok_or_else(|| WireError::BadRequest("too-large needs `need budget`".into()))?;
                WireError::TooLarge {
                    need: need
                        .parse()
                        .map_err(|_| WireError::BadRequest("bad too-large need".into()))?,
                    budget: budget
                        .parse()
                        .map_err(|_| WireError::BadRequest("bad too-large budget".into()))?,
                }
            }
            other => {
                return Err(WireError::BadRequest(format!(
                    "unknown error code {other:?}"
                )))
            }
        };
        Ok(Reply::Err(err))
    }
}

/// Deterministic text rendering of a table's annotations — the
/// `ANNOTATE`/`TRY` success payload.
///
/// One header line, then one `row,col,type,score,votes` line per cell
/// annotation in pipeline order. `f64` scores print with Rust's
/// shortest-round-trip formatting, so two [`TableAnnotations`] render
/// identically iff they are bit-identical — the wire determinism check
/// is a string comparison against the offline batch path.
pub fn render_annotations(a: &TableAnnotations) -> String {
    use std::fmt::Write;

    let mut out = format!(
        "cells={} skipped={} queried={}\n",
        a.cells.len(),
        a.skipped_cells,
        a.queried_cells
    );
    for c in &a.cells {
        writeln!(
            out,
            "{},{},{},{},{}",
            c.cell.row, c.cell.col, c.etype, c.score, c.votes
        )
        // teda-lint: allow(panic_on_untrusted) -- fmt::Write into String is infallible
        .expect("string write");
    }
    out
}

/// Text rendering of a [`ServiceStats`] snapshot — the `STATS` payload.
/// One `key=value` summary line, then one `client …` line per client in
/// name order.
pub fn render_stats(s: &ServiceStats) -> String {
    use std::fmt::Write;

    let mut out = format!(
        "submitted={} completed={} failed={} shed_queue={} shed_budget={} \
         rejected_oversize={} stream_tables={} backpressure_waits={} \
         p50_us={} p99_us={} max_us={} shard_fanouts={} partial_results={} \
         replica_retries={}\n",
        s.submitted,
        s.completed,
        s.failed,
        s.shed_queue,
        s.shed_budget,
        s.rejected_oversize,
        s.stream_tables,
        s.backpressure_waits,
        s.latency.p50.as_micros(),
        s.latency.p99.as_micros(),
        s.latency.max.as_micros(),
        s.shard_fanouts,
        s.partial_results,
        s.replica_retries,
    );
    for c in &s.clients {
        writeln!(
            out,
            "client {} submitted={} completed={} failed={} shed={} granted={} bucket={} waiting={}",
            c.client, c.submitted, c.completed, c.failed, c.shed, c.granted, c.bucket, c.waiting
        )
        // teda-lint: allow(panic_on_untrusted) -- fmt::Write into String is infallible
        .expect("string write");
    }
    out
}

fn json_str(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                // teda-lint: allow(panic_on_untrusted) -- fmt::Write into String is infallible
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a [`ServiceStats`] snapshot as one JSON object — the
/// `STATS JSON` payload. Every counter, the latency summary, the
/// per-stage histogram summaries, cache/geocode accounting and the
/// per-client table ride in a single machine-readable frame, so a
/// scraper never reassembles them from the `key=value` text form.
/// Key order is fixed (declaration order; stages and clients are
/// pre-sorted by name), so equal snapshots render identically.
pub fn render_stats_json(s: &ServiceStats) -> String {
    use std::fmt::Write;

    let mut out = String::with_capacity(1024);
    // teda-lint: allow(panic_on_untrusted) -- fmt::Write into String is infallible
    let mut put = |frag: std::fmt::Arguments<'_>| out.write_fmt(frag).expect("string write");
    put(format_args!(
        "{{\"submitted\":{},\"completed\":{},\"failed\":{},\"shed_queue\":{},\
         \"shed_budget\":{},\"rejected_oversize\":{},\"stream_tables\":{},\
         \"backpressure_waits\":{},\"restored_cache_entries\":{},\
         \"corpus_refreshes\":{},\"mapped_bytes\":{},\"resident_bytes\":{},\
         \"page_hydrations\":{},\"shard_fanouts\":{},\"partial_results\":{},\
         \"replica_retries\":{},\"inflight\":{},\"inflight_oldest_ms\":{}",
        s.submitted,
        s.completed,
        s.failed,
        s.shed_queue,
        s.shed_budget,
        s.rejected_oversize,
        s.stream_tables,
        s.backpressure_waits,
        s.restored_cache_entries,
        s.corpus_refreshes,
        s.mapped_bytes,
        s.resident_bytes,
        s.page_hydrations,
        s.shard_fanouts,
        s.partial_results,
        s.replica_retries,
        s.inflight,
        s.inflight_oldest_ms,
    ));
    put(format_args!(
        ",\"latency\":{{\"p50_us\":{},\"p99_us\":{},\"max_us\":{}}}",
        s.latency.p50.as_micros(),
        s.latency.p99.as_micros(),
        s.latency.max.as_micros(),
    ));
    put(format_args!(",\"stages\":["));
    for (i, st) in s.stages.iter().enumerate() {
        put(format_args!(
            "{}{{\"stage\":{},\"count\":{},\"p50_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            if i == 0 { "" } else { "," },
            json_str(&st.stage),
            st.count,
            st.p50_us,
            st.p99_us,
            st.max_us,
        ));
    }
    put(format_args!(
        "],\"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"expired\":{}}}",
        s.cache.hits, s.cache.misses, s.cache.evictions, s.cache.expired,
    ));
    put(format_args!(
        ",\"geocode\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}}",
        s.geocode.hits, s.geocode.misses, s.geocode.evictions,
    ));
    put(format_args!(",\"clients\":["));
    for (i, c) in s.clients.iter().enumerate() {
        put(format_args!(
            "{}{{\"client\":{},\"submitted\":{},\"completed\":{},\"failed\":{},\
             \"shed\":{},\"granted\":{},\"bucket\":{},\"waiting\":{}}}",
            if i == 0 { "" } else { "," },
            json_str(&c.client),
            c.submitted,
            c.completed,
            c.failed,
            c.shed,
            c.granted,
            c.bucket,
            c.waiting,
        ));
    }
    put(format_args!("]}}"));
    out
}

/// What a search-serving node knows about its place in a cluster: its
/// shard index, the shard count, and the whole corpus's document count
/// (the BM25 `N` it scores with). A single-node server uses
/// `shard = 0, n_shards = 1, global_docs = local docs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// This node's shard index in `0..n_shards`.
    pub shard: u32,
    /// How many shards the corpus is partitioned into.
    pub n_shards: u32,
    /// Documents in the whole corpus.
    pub global_docs: u64,
}

/// The `SHARD-STATS` payload: the node's [`ShardInfo`] plus its local
/// document count and lifetime `SEARCH` counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStatsReport {
    /// This node's shard index.
    pub shard: u32,
    /// Total shard count.
    pub n_shards: u32,
    /// Documents this node holds.
    pub docs: u64,
    /// Documents in the whole corpus.
    pub global_docs: u64,
    /// `SEARCH`/`SEARCH-FULL` requests served since start.
    pub searches: u64,
}

/// One fully hydrated hit on the wire: the global page id, the exact
/// score bits, and the assembled [`SearchResult`] fields.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Global page id.
    pub id: PageId,
    /// BM25 score (travels as exact bits).
    pub score: f64,
    /// Hydrated url/title/snippet.
    pub result: SearchResult,
}

fn score_hex(score: f64) -> String {
    format!("{:016x}", score.to_bits())
}

fn parse_score(hex: &str) -> Result<f64, WireError> {
    if hex.len() != 16 {
        return Err(WireError::BadRequest(format!(
            "score must be 16 hex digits, got {:?}",
            hex.chars().take(20).collect::<String>()
        )));
    }
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|_| WireError::BadRequest(format!("bad score hex {hex:?}")))
}

fn parse_hits_header(payload: &str) -> Result<(usize, std::str::Lines<'_>), WireError> {
    let mut lines = payload.lines();
    let header = lines
        .next()
        .ok_or_else(|| WireError::BadRequest("empty search payload".into()))?;
    let n: usize = header
        .strip_prefix("hits=")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| WireError::BadRequest(format!("bad search header {header:?}")))?;
    if n > MAX_K {
        return Err(WireError::BadRequest(format!(
            "search payload claims {n} hits (max {MAX_K})"
        )));
    }
    Ok((n, lines))
}

/// Renders a `SEARCH` success payload: a `hits=<n>` header, then one
/// `<id> <score-hex>` line per hit in rank order. Scores are IEEE-754
/// bit patterns, so [`parse_scored`]`(`[`render_scored`]`(h)) == h`
/// bit for bit — including NaNs and signed zeros.
pub fn render_scored(hits: &[(PageId, f64)]) -> String {
    use std::fmt::Write;

    let mut out = format!("hits={}\n", hits.len());
    for (id, score) in hits {
        // teda-lint: allow(panic_on_untrusted) -- fmt::Write into String is infallible
        writeln!(out, "{} {}", id.0, score_hex(*score)).expect("string write");
    }
    out
}

/// Reverses [`render_scored`]. Any malformed line, a hit count that
/// does not match the header, or a header past [`MAX_K`] is a
/// [`WireError::BadRequest`].
pub fn parse_scored(payload: &str) -> Result<Vec<(PageId, f64)>, WireError> {
    let (n, lines) = parse_hits_header(payload)?;
    let mut hits = Vec::with_capacity(n);
    for line in lines {
        let (id, hex) = line
            .split_once(' ')
            .ok_or_else(|| WireError::BadRequest(format!("bad hit line {line:?}")))?;
        let id: u32 = id
            .parse()
            .map_err(|_| WireError::BadRequest(format!("bad page id {id:?}")))?;
        hits.push((PageId(id), parse_score(hex)?));
    }
    if hits.len() != n {
        return Err(WireError::BadRequest(format!(
            "search payload promised {n} hits, carried {}",
            hits.len()
        )));
    }
    Ok(hits)
}

/// Renders a `SEARCH-FULL` success payload: a `hits=<n>` header, then
/// one `<id>\t<score-hex>\t<url>\t<title>\t<snippet>` line per hit with
/// each text field [`escape`]d — tabs in field content become `\t`, so
/// the five columns are unambiguous for arbitrary page text.
pub fn render_hits(hits: &[SearchHit]) -> String {
    use std::fmt::Write;

    let mut out = format!("hits={}\n", hits.len());
    for h in hits {
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}",
            h.id.0,
            score_hex(h.score),
            escape(&h.result.url),
            escape(&h.result.title),
            escape(&h.result.snippet),
        )
        // teda-lint: allow(panic_on_untrusted) -- fmt::Write into String is infallible
        .expect("string write");
    }
    out
}

/// Reverses [`render_hits`], with the same typed failure modes as
/// [`parse_scored`].
pub fn parse_hits(payload: &str) -> Result<Vec<SearchHit>, WireError> {
    let (n, lines) = parse_hits_header(payload)?;
    let mut hits = Vec::with_capacity(n);
    for line in lines {
        let mut cols = line.splitn(5, '\t');
        let mut col = |what: &'static str| {
            cols.next()
                .ok_or_else(|| WireError::BadRequest(format!("hit line missing {what}")))
        };
        let id: u32 = col("page id")?
            .parse()
            .map_err(|_| WireError::BadRequest(format!("bad page id in {line:?}")))?;
        let score = parse_score(col("score")?)?;
        let url = unescape(col("url")?)?;
        let title = unescape(col("title")?)?;
        let snippet = unescape(col("snippet")?)?;
        hits.push(SearchHit {
            id: PageId(id),
            score,
            result: SearchResult {
                url,
                title,
                snippet,
            },
        });
    }
    if hits.len() != n {
        return Err(WireError::BadRequest(format!(
            "search payload promised {n} hits, carried {}",
            hits.len()
        )));
    }
    Ok(hits)
}

/// Renders the `SHARD-STATS` payload: one
/// `shard=<s> shards=<n> docs=<d> global_docs=<g> searches=<c>` line.
pub fn render_shard_stats(r: &ShardStatsReport) -> String {
    format!(
        "shard={} shards={} docs={} global_docs={} searches={}",
        r.shard, r.n_shards, r.docs, r.global_docs, r.searches
    )
}

/// Reverses [`render_shard_stats`]; any missing or malformed field is a
/// [`WireError::BadRequest`].
pub fn parse_shard_stats(payload: &str) -> Result<ShardStatsReport, WireError> {
    let mut tokens = payload.split_whitespace();
    let mut field = |key: &'static str| -> Result<u64, WireError> {
        let token = tokens
            .next()
            .ok_or_else(|| WireError::BadRequest(format!("shard stats missing {key}")))?;
        token
            .strip_prefix(key)
            .and_then(|t| t.strip_prefix('='))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| WireError::BadRequest(format!("bad shard stats field {token:?}")))
    };
    let shard = field("shard")? as u32;
    let n_shards = field("shards")? as u32;
    let docs = field("docs")?;
    let global_docs = field("global_docs")?;
    let searches = field("searches")?;
    Ok(ShardStatsReport {
        shard,
        n_shards,
        docs,
        global_docs,
        searches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_csv_with_quoted_newlines() {
        let csv = "#types,Text,Location\nname,addr\n\"Bar,\nGrill\",\"1 Main\tSt\r\nSuite 2\"\n";
        let line = escape(csv);
        assert!(!line.contains('\n'), "escaped payload must be one line");
        assert!(!line.contains('\r'));
        assert!(!line.contains('\t'), "tabs must be escaped too");
        assert_eq!(unescape(&line).unwrap(), csv);
    }

    #[test]
    fn bad_escapes_are_errors_not_panics() {
        assert!(matches!(unescape("a\\"), Err(WireError::BadRequest(_))));
        assert!(matches!(unescape("a\\x"), Err(WireError::BadRequest(_))));
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Client {
                name: "bulk".into(),
            },
            Request::Annotate {
                name: "t1".into(),
                csv: "a,b\n1,\"x\ny\"\n".into(),
            },
            Request::Try {
                name: "t2".into(),
                csv: "a\n1\n".into(),
            },
            Request::Stats,
            Request::Budget,
            Request::Snapshot,
            Request::Search {
                k: 10,
                query: "french restaurant\tparis".into(),
                full: false,
            },
            Request::Search {
                k: 3,
                query: "multi\nline".into(),
                full: true,
            },
            Request::ShardStats,
            Request::StatsJson,
            Request::Metrics,
            Request::TraceDump { id: 0x2a },
            Request::Traced {
                id: u64::MAX,
                inner: Box::new(Request::Search {
                    k: 5,
                    query: "rome\ttrattoria".into(),
                    full: true,
                }),
            },
            Request::Traced {
                id: 7,
                inner: Box::new(Request::Annotate {
                    name: "t3".into(),
                    csv: "a\n1\n".into(),
                }),
            },
            Request::Quit,
        ];
        for req in reqs {
            let line = req.encode();
            assert!(line.ends_with('\n'));
            assert_eq!(line.matches('\n').count(), 1, "one frame per request");
            assert_eq!(Request::parse(&line).unwrap(), req);
        }
    }

    #[test]
    fn trace_prefix_is_bounded_to_traceable_verbs() {
        // A trace id is exactly 16 zero-padded hex digits.
        assert!(Request::parse("TRACE-DUMP 000000000000002a\n").is_ok());
        for bad in [
            "TRACE-DUMP 2a",
            "TRACE-DUMP 00000000000000zz",
            "TRACE-DUMP",
            "TRACE 000000000000002a",
            "TRACE 2a SEARCH 1 q",
        ] {
            assert!(
                matches!(Request::parse(bad), Err(WireError::BadRequest(_))),
                "{bad:?} must be a bad-request"
            );
        }
        // Only SEARCH/SEARCH-FULL/ANNOTATE/TRY can ride under TRACE —
        // in particular a nested TRACE cannot.
        for inner in [
            "STATS",
            "QUIT",
            "METRICS",
            "TRACE 0000000000000001 SEARCH 1 q",
        ] {
            let line = format!("TRACE 000000000000002a {inner}\n");
            assert!(
                matches!(Request::parse(&line), Err(WireError::BadRequest(_))),
                "{inner:?} must not be traceable"
            );
        }
        let ok = Request::parse("TRACE 000000000000002a SEARCH 3 pizza\n").unwrap();
        assert_eq!(
            ok,
            Request::Traced {
                id: 0x2a,
                inner: Box::new(Request::Search {
                    k: 3,
                    query: "pizza".into(),
                    full: false,
                }),
            }
        );
    }

    #[test]
    fn read_only_requests_are_exactly_the_retryable_ones() {
        let read_only = [
            Request::Stats,
            Request::Budget,
            Request::ShardStats,
            Request::Search {
                k: 1,
                query: "q".into(),
                full: true,
            },
            Request::StatsJson,
            Request::Metrics,
            Request::TraceDump { id: 1 },
            Request::Traced {
                id: 1,
                inner: Box::new(Request::Search {
                    k: 1,
                    query: "q".into(),
                    full: false,
                }),
            },
        ];
        assert!(read_only.iter().all(Request::is_read_only));
        let mutating = [
            Request::Client { name: "c".into() },
            Request::Annotate {
                name: "t".into(),
                csv: "a\n1\n".into(),
            },
            Request::Try {
                name: "t".into(),
                csv: "a\n1\n".into(),
            },
            Request::Snapshot,
            Request::Quit,
            // A traced submission is still a submission.
            Request::Traced {
                id: 1,
                inner: Box::new(Request::Annotate {
                    name: "t".into(),
                    csv: "a\n1\n".into(),
                }),
            },
        ];
        assert!(!mutating.iter().any(Request::is_read_only));
    }

    #[test]
    fn stats_json_renders_every_section_with_escaped_names() {
        use std::time::Duration;
        use teda_service::{ClientStats, LatencySummary, StageStats};

        let stats = ServiceStats {
            submitted: 3,
            completed: 2,
            inflight: 1,
            inflight_oldest_ms: 40,
            latency: LatencySummary {
                p50: Duration::from_micros(100),
                p99: Duration::from_micros(900),
                max: Duration::from_micros(1000),
            },
            stages: vec![StageStats {
                stage: "annotate".into(),
                count: 2,
                p50_us: 64,
                p99_us: 128,
                max_us: 128,
            }],
            clients: vec![ClientStats {
                client: "bulk \"loader\"\n".into(),
                submitted: 3,
                ..ClientStats::default()
            }],
            ..ServiceStats::default()
        };
        let json = render_stats_json(&stats);
        // One frame, structurally balanced, with every section present.
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        for key in [
            "\"submitted\":3",
            "\"inflight\":1",
            "\"inflight_oldest_ms\":40",
            "\"latency\":{\"p50_us\":100,\"p99_us\":900,\"max_us\":1000}",
            "\"stage\":\"annotate\"",
            "\"cache\":{",
            "\"geocode\":{",
            "\"client\":\"bulk \\\"loader\\\"\\n\"",
        ] {
            assert!(json.contains(key), "missing {key:?} in {json}");
        }
        // The hostile client name must not leak a raw quote or newline.
        assert!(!json.contains('\n'));
    }

    #[test]
    fn search_k_is_bounded_at_parse() {
        assert!(Request::parse(&format!("SEARCH {MAX_K} q\n")).is_ok());
        assert!(matches!(
            Request::parse(&format!("SEARCH {} q\n", MAX_K + 1)),
            Err(WireError::BadRequest(_))
        ));
        for bad in ["SEARCH", "SEARCH 5", "SEARCH x q", "SHARD-STATS now"] {
            assert!(
                matches!(Request::parse(bad), Err(WireError::BadRequest(_))),
                "{bad:?} must be a bad-request"
            );
        }
    }

    #[test]
    fn scored_hits_round_trip_exact_bits() {
        let hits = vec![
            (PageId(7), 1.5),
            (PageId(0), f64::from_bits(0x7ff8_0000_0000_0001)), // a NaN payload
            (PageId(42), -0.0),
            (PageId(9), 0.1 + 0.2), // not representable exactly in decimal
        ];
        let payload = render_scored(&hits);
        let back = parse_scored(&payload).unwrap();
        assert_eq!(back.len(), hits.len());
        for ((id, s), (bid, bs)) in hits.iter().zip(&back) {
            assert_eq!(id, bid);
            assert_eq!(s.to_bits(), bs.to_bits(), "score bits must survive");
        }
        assert!(parse_scored("hits=2\n1 0000000000000000\n").is_err());
        assert!(parse_scored(&format!("hits={}\n", MAX_K + 1)).is_err());
        assert!(parse_scored("hits=1\n1 xyz\n").is_err());
    }

    #[test]
    fn full_hits_round_trip_with_hostile_fields() {
        let hits = vec![SearchHit {
            id: PageId(3),
            score: 2.25,
            result: SearchResult {
                url: "http://web.sim/p\t3".into(),
                title: "Tab\there \\ and\nnewline".into(),
                snippet: "plain words".into(),
            },
        }];
        let payload = render_hits(&hits);
        assert_eq!(parse_hits(&payload).unwrap(), hits);
        // The whole payload survives a frame round-trip (the reply layer
        // escapes it once more).
        let framed = Reply::Ok(payload.clone()).encode();
        let Reply::Ok(unframed) = Reply::parse(&framed).unwrap() else {
            panic!("expected OK");
        };
        assert_eq!(parse_hits(&unframed).unwrap(), hits);
    }

    #[test]
    fn shard_stats_round_trip() {
        let r = ShardStatsReport {
            shard: 2,
            n_shards: 8,
            docs: 125,
            global_docs: 1000,
            searches: 31,
        };
        assert_eq!(parse_shard_stats(&render_shard_stats(&r)).unwrap(), r);
        assert!(parse_shard_stats("shard=1 shards=2").is_err());
        assert!(parse_shard_stats("shards=2 shard=1 docs=0 global_docs=0 searches=0").is_err());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for bad in [
            "",
            "NOPE",
            "NOPE x y",
            "CLIENT",
            "CLIENT two words",
            "ANNOTATE onlyname",
            "STATS extra",
            "SNAPSHOT now",
            "ANNOTATE t a\\qb",
        ] {
            assert!(
                matches!(Request::parse(bad), Err(WireError::BadRequest(_))),
                "{bad:?} must be a bad-request"
            );
        }
    }

    #[test]
    fn replies_round_trip_including_typed_errors() {
        let replies = [
            Reply::Ok(String::new()),
            Reply::Ok("cells=1\n0,0,Restaurant,0.75,3\n".into()),
            Reply::Err(WireError::QueueFull),
            Reply::Err(WireError::BudgetExhausted),
            Reply::Err(WireError::TooLarge {
                need: 20,
                budget: 10,
            }),
            Reply::Err(WireError::ShuttingDown),
            Reply::Err(WireError::Failed("engine panic".into())),
            Reply::Err(WireError::BadRequest("unknown verb \"X\"".into())),
        ];
        for reply in replies {
            let line = reply.encode();
            assert_eq!(line.matches('\n').count(), 1, "one frame per reply");
            assert_eq!(Reply::parse(&line).unwrap(), reply);
        }
    }

    #[test]
    fn wire_errors_mirror_rejections() {
        assert_eq!(WireError::from(Rejection::QueueFull), WireError::QueueFull);
        assert_eq!(
            WireError::from(Rejection::BudgetExhausted),
            WireError::BudgetExhausted
        );
        assert_eq!(
            WireError::from(Rejection::RequestTooLarge { need: 9, budget: 4 }),
            WireError::TooLarge { need: 9, budget: 4 }
        );
        assert_eq!(
            WireError::from(Rejection::ShuttingDown),
            WireError::ShuttingDown
        );
    }

    #[test]
    fn render_annotations_is_line_per_cell() {
        use teda_core::annotate::CellAnnotation;
        use teda_kb::EntityType;
        use teda_tabular::CellId;

        let a = TableAnnotations {
            cells: vec![CellAnnotation {
                cell: CellId::new(2, 1),
                etype: EntityType::Restaurant,
                score: 0.625,
                votes: 5,
            }],
            skipped_cells: 3,
            queried_cells: 4,
        };
        let text = render_annotations(&a);
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("cells=1 skipped=3 queried=4"));
        let cell = lines.next().unwrap();
        assert!(cell.starts_with("2,1,"));
        assert!(cell.ends_with(",0.625,5"));
        assert_eq!(lines.next(), None);
    }
}
