//! A minimal blocking client for the wire protocol — what the
//! experiments, tests and examples drive the server with, and a
//! reference implementation for clients in other languages.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use teda_websim::PageId;

use crate::protocol::{
    parse_hits, parse_scored, parse_shard_stats, read_frame, Reply, Request, SearchHit,
    ShardStatsReport, WireError,
};

/// One connection to a [`WireServer`](crate::WireServer): strict
/// request/response, one frame each way.
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The server's address, remembered so auto-reconnect can redial.
    addr: Option<SocketAddr>,
    /// The timeout to reinstall on a redialled socket.
    io_timeout: Option<Duration>,
    auto_reconnect: bool,
}

impl WireClient {
    /// Connects to a running wire server. No I/O deadline: a blocking
    /// `ANNOTATE` against a backpressured server may legitimately stall
    /// for as long as admission takes (see
    /// [`set_io_timeout`](Self::set_io_timeout) to bound it anyway).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<WireClient> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects with a deadline on the TCP handshake **and** installs
    /// the same deadline as the connection's I/O timeout — a server
    /// that accepts but never answers (half-dead process, partitioned
    /// network) errors the pending call out instead of blocking the
    /// caller forever.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> std::io::Result<WireClient> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        let mut client = Self::from_stream(stream)?;
        client.set_io_timeout(Some(timeout))?;
        Ok(client)
    }

    /// Sets (or with `None` clears) the read/write timeout of every
    /// later round-trip. A request whose reply does not arrive in time
    /// fails with [`WireError::Transport`]; the connection should be
    /// dropped afterwards — the late reply would desynchronize the
    /// strict request/response framing.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        // Reader and writer are clones of one socket: the timeouts are
        // per-fd, but set both halves explicitly so the intent survives
        // any future move away from `try_clone`.
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)?;
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.reader.get_ref().set_write_timeout(timeout)?;
        self.io_timeout = timeout;
        Ok(())
    }

    /// Opts this connection into transparent reconnection: when a
    /// **read-only** request ([`Request::is_read_only`]) fails with a
    /// transport error (server restarted, idle connection reaped), the
    /// client redials once and retries that one request. Mutating
    /// requests are never retried — a lost `ANNOTATE` reply leaves the
    /// submission's fate unknown, and a replay could double-apply it.
    pub fn set_auto_reconnect(&mut self, on: bool) {
        self.auto_reconnect = on;
    }

    fn from_stream(stream: TcpStream) -> std::io::Result<WireClient> {
        stream.set_nodelay(true).ok(); // request/response latency
        let addr = stream.peer_addr().ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(WireClient {
            reader,
            writer: stream,
            addr,
            io_timeout: None,
            auto_reconnect: false,
        })
    }

    /// Redials the remembered server address and swaps the socket in
    /// place, reinstalling the configured I/O timeout.
    fn reconnect(&mut self) -> Result<(), WireError> {
        let addr = self
            .addr
            .ok_or_else(|| WireError::Transport("no server address to reconnect to".into()))?;
        let stream = match self.io_timeout {
            Some(t) => TcpStream::connect_timeout(&addr, t),
            None => TcpStream::connect(addr),
        }
        .map_err(|e| WireError::Transport(format!("reconnect to {addr}: {e}")))?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(self.io_timeout).ok();
        stream.set_write_timeout(self.io_timeout).ok();
        self.reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| WireError::Transport(e.to_string()))?,
        );
        self.writer = stream;
        Ok(())
    }

    /// `CLIENT <name>`: attributes every later submission on this
    /// connection to `name` for fair admission and per-client stats.
    pub fn set_client(&mut self, name: &str) -> Result<String, WireError> {
        self.roundtrip(&Request::Client { name: name.into() })
    }

    /// `ANNOTATE`: blocking submission — stalls under backpressure,
    /// returns the deterministic annotation rendering
    /// ([`crate::protocol::render_annotations`]).
    pub fn annotate(&mut self, name: &str, csv: &str) -> Result<String, WireError> {
        self.roundtrip(&Request::Annotate {
            name: name.into(),
            csv: csv.into(),
        })
    }

    /// `TRY`: non-blocking submission — sheds with a typed error when
    /// the queue or the budget cannot take the table now.
    pub fn try_annotate(&mut self, name: &str, csv: &str) -> Result<String, WireError> {
        self.roundtrip(&Request::Try {
            name: name.into(),
            csv: csv.into(),
        })
    }

    /// `STATS`: the service counters, rendered
    /// ([`crate::protocol::render_stats`]).
    pub fn stats(&mut self) -> Result<String, WireError> {
        self.roundtrip(&Request::Stats)
    }

    /// `BUDGET`: `"budget <n>"` or `"budget unmetered"`.
    pub fn budget(&mut self) -> Result<String, WireError> {
        self.roundtrip(&Request::Budget)
    }

    /// `SNAPSHOT`: persist the service's query-cache snapshot now —
    /// `"snapshot <entries>"`, or `failed` when the service has no
    /// store directory or the write fails.
    pub fn snapshot(&mut self) -> Result<String, WireError> {
        self.roundtrip(&Request::Snapshot)
    }

    /// `SEARCH`: the node's scored top-`k` for `query` — global page
    /// ids with exact score bits, in rank order.
    pub fn search(&mut self, query: &str, k: usize) -> Result<Vec<(PageId, f64)>, WireError> {
        let payload = self.roundtrip(&Request::Search {
            k,
            query: query.into(),
            full: false,
        })?;
        parse_scored(&payload)
    }

    /// `SEARCH-FULL`: like [`search`](Self::search) but with the
    /// hydrated url/title/snippet fields on every hit.
    pub fn search_full(&mut self, query: &str, k: usize) -> Result<Vec<SearchHit>, WireError> {
        let payload = self.roundtrip(&Request::Search {
            k,
            query: query.into(),
            full: true,
        })?;
        parse_hits(&payload)
    }

    /// `SHARD-STATS`: the node's shard identity, document counts and
    /// lifetime search counter.
    pub fn shard_stats(&mut self) -> Result<ShardStatsReport, WireError> {
        let payload = self.roundtrip(&Request::ShardStats)?;
        parse_shard_stats(&payload)
    }

    /// `STATS JSON`: the full service counters — per-stage histograms
    /// included — as one JSON object
    /// ([`crate::protocol::render_stats_json`]).
    pub fn stats_json(&mut self) -> Result<String, WireError> {
        self.roundtrip(&Request::StatsJson)
    }

    /// `METRICS`: the node's stage histograms and counters in
    /// Prometheus text exposition format.
    pub fn metrics(&mut self) -> Result<String, WireError> {
        self.roundtrip(&Request::Metrics)
    }

    /// `TRACE-DUMP <id>`: one completed span tree from the node's trace
    /// ring, parsed back into a [`teda_obs::Trace`].
    pub fn trace_dump(&mut self, id: u64) -> Result<teda_obs::Trace, WireError> {
        let payload = self.roundtrip(&Request::TraceDump { id })?;
        teda_obs::Trace::parse(&payload).map_err(WireError::BadRequest)
    }

    /// `TRACE <id> SEARCH …`: a scored search run under the caller's
    /// trace id — the node records its span tree under `id`, ready for
    /// [`trace_dump`](Self::trace_dump) and cross-node grafting.
    pub fn search_traced(
        &mut self,
        id: u64,
        query: &str,
        k: usize,
    ) -> Result<Vec<(PageId, f64)>, WireError> {
        let payload = self.roundtrip(&Request::Traced {
            id,
            inner: Box::new(Request::Search {
                k,
                query: query.into(),
                full: false,
            }),
        })?;
        parse_scored(&payload)
    }

    /// `TRACE <id> ANNOTATE …`: a blocking submission run under the
    /// caller's trace id.
    pub fn annotate_traced(&mut self, id: u64, name: &str, csv: &str) -> Result<String, WireError> {
        self.roundtrip(&Request::Traced {
            id,
            inner: Box::new(Request::Annotate {
                name: name.into(),
                csv: csv.into(),
            }),
        })
    }

    /// `QUIT`: orderly close (the server answers `OK bye` first).
    pub fn quit(mut self) -> Result<String, WireError> {
        self.roundtrip(&Request::Quit)
    }

    /// Sends one request frame and reads one reply frame (through the
    /// same bounded [`read_frame`] the server uses). With
    /// [`set_auto_reconnect`](Self::set_auto_reconnect) on, a transport
    /// failure on a read-only request redials the server once and
    /// retries that request on the fresh connection.
    fn roundtrip(&mut self, request: &Request) -> Result<String, WireError> {
        match self.roundtrip_once(request) {
            Err(WireError::Transport(_)) if self.auto_reconnect && request.is_read_only() => {
                self.reconnect()?;
                self.roundtrip_once(request)
            }
            other => other,
        }
    }

    fn roundtrip_once(&mut self, request: &Request) -> Result<String, WireError> {
        self.writer.write_all(request.encode().as_bytes())?;
        self.writer.flush()?;
        let line = read_frame(&mut self.reader)?
            .ok_or_else(|| WireError::Transport("server closed the connection".into()))?;
        match Reply::parse(&line)? {
            Reply::Ok(payload) => Ok(payload),
            Reply::Err(e) => Err(e),
        }
    }
}
