//! A minimal blocking client for the wire protocol — what the
//! experiments, tests and examples drive the server with, and a
//! reference implementation for clients in other languages.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{read_frame, Reply, Request, WireError};

/// One connection to a [`WireServer`](crate::WireServer): strict
/// request/response, one frame each way.
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl WireClient {
    /// Connects to a running wire server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok(); // request/response latency
        let reader = BufReader::new(stream.try_clone()?);
        Ok(WireClient {
            reader,
            writer: stream,
        })
    }

    /// `CLIENT <name>`: attributes every later submission on this
    /// connection to `name` for fair admission and per-client stats.
    pub fn set_client(&mut self, name: &str) -> Result<String, WireError> {
        self.roundtrip(&Request::Client { name: name.into() })
    }

    /// `ANNOTATE`: blocking submission — stalls under backpressure,
    /// returns the deterministic annotation rendering
    /// ([`crate::protocol::render_annotations`]).
    pub fn annotate(&mut self, name: &str, csv: &str) -> Result<String, WireError> {
        self.roundtrip(&Request::Annotate {
            name: name.into(),
            csv: csv.into(),
        })
    }

    /// `TRY`: non-blocking submission — sheds with a typed error when
    /// the queue or the budget cannot take the table now.
    pub fn try_annotate(&mut self, name: &str, csv: &str) -> Result<String, WireError> {
        self.roundtrip(&Request::Try {
            name: name.into(),
            csv: csv.into(),
        })
    }

    /// `STATS`: the service counters, rendered
    /// ([`crate::protocol::render_stats`]).
    pub fn stats(&mut self) -> Result<String, WireError> {
        self.roundtrip(&Request::Stats)
    }

    /// `BUDGET`: `"budget <n>"` or `"budget unmetered"`.
    pub fn budget(&mut self) -> Result<String, WireError> {
        self.roundtrip(&Request::Budget)
    }

    /// `QUIT`: orderly close (the server answers `OK bye` first).
    pub fn quit(mut self) -> Result<String, WireError> {
        self.roundtrip(&Request::Quit)
    }

    /// Sends one request frame and reads one reply frame (through the
    /// same bounded [`read_frame`] the server uses).
    fn roundtrip(&mut self, request: &Request) -> Result<String, WireError> {
        self.writer.write_all(request.encode().as_bytes())?;
        self.writer.flush()?;
        let line = read_frame(&mut self.reader)?
            .ok_or_else(|| WireError::Transport("server closed the connection".into()))?;
        match Reply::parse(&line)? {
            Reply::Ok(payload) => Ok(payload),
            Reply::Err(e) => Err(e),
        }
    }
}
