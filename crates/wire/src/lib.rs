//! `teda-wire` — a line-protocol TCP front-end over
//! [`teda_service::AnnotationService`].
//!
//! Until now the annotator could only be reached by in-process Rust.
//! This crate puts a socket in front of it, the deployment setting
//! web-scale entity-annotation systems assume: many independent
//! clients — interactive lookups, bulk corpus ingesters — sharing one
//! scheduler, one bounded cache, and one metered query allowance.
//!
//! Three pieces (std TCP + threads only, same offline-build constraint
//! as the scheduler — and annotation latency dwarfs syscall overhead,
//! so a thread per connection is the right shape at this scale):
//!
//! * [`protocol`] — the grammar. Newline-delimited frames with
//!   backslash escaping (`\\`, `\n`, `\r`, `\t`), so CSV payloads with
//!   quoted embedded newlines are still one frame per request. Verbs:
//!
//!   ```text
//!   CLIENT <name>            set this connection's ClientId
//!   ANNOTATE <name> <csv>    blocking submit → OK <annotations> | ERR …
//!   TRY <name> <csv>         non-blocking submit (sheds under pressure)
//!   STATS                    service counters incl. per-client lines
//!   BUDGET                   remaining query pool
//!   SEARCH <k> <query>       scored top-k page ids (exact f64 bits)
//!   SEARCH-FULL <k> <query>  scored top-k with hydrated page fields
//!   SHARD-STATS              shard identity + global corpus stats
//!   STATS JSON               full ServiceStats as one JSON object
//!   METRICS                  Prometheus-style stage histograms
//!   TRACE-DUMP <id>          one completed span tree by trace id
//!   TRACE <id> <request>     run SEARCH/ANNOTATE/TRY under trace id
//!   QUIT                     orderly close
//!   ```
//!
//!   Errors are typed ([`WireError`]) and mirror
//!   [`teda_service::Rejection`] one to one: `queue-full`,
//!   `budget-exhausted`, `too-large <need> <budget>`, `shutting-down`,
//!   plus `failed` (worker panic) and `bad-request` (framing/parse).
//! * [`WireServer`] — acceptor thread + one reader thread per
//!   connection, strict request/response. Submissions run as the
//!   connection's [`teda_service::ClientId`], so the scheduler's
//!   deficit-round-robin token buckets meter each wire client
//!   separately: a bulk streamer saturating `ANNOTATE` cannot starve
//!   an interactive client sharing the pool.
//! * [`WireClient`] — the blocking reference client the tests,
//!   `exp_wire`, the cluster router and the examples use. Opt-in
//!   idempotent auto-reconnect: a transport failure on a **read-only**
//!   verb redials once and retries; submissions are never replayed.
//!
//! The search verbs make a wire node a cluster building block: a
//! search-only [`WireServer`] over a shard's backend is the entire
//! shard-server process of `teda-cluster`, and `SEARCH` scores travel
//! as exact IEEE-754 bit patterns so scatter-gather merging can be
//! bit-identical to the single-node index.
//!
//! Determinism invariant (hard, inherited): the `OK` payload of
//! `ANNOTATE`/`TRY` is [`protocol::render_annotations`] of the
//! scheduler's result, which is bit-identical to
//! `BatchAnnotator::annotate_table` on the same table — so wire
//! results compare equal, as strings, to the offline batch path
//! (enforced by `tests/wire.rs` and `exp_wire` on every run).

pub mod client;
pub mod protocol;
pub mod server;

pub use client::WireClient;
pub use protocol::{Reply, Request, SearchHit, ShardInfo, ShardStatsReport, WireError};
pub use server::{SearchNode, WireServer};
