//! The TCP front-end: a std-thread acceptor plus one reader thread per
//! connection, each driving the shared [`AnnotationService`].
//!
//! Shape: the acceptor blocks in `accept`; every connection gets a
//! thread that reads one frame at a time, parses it with
//! [`Request::parse`], and answers with exactly one [`Reply`] frame —
//! strict request/response, so one connection has at most one request
//! in flight and a bulk client is naturally rate-limited to its own
//! round-trips while the fairness layer meters its tokens.
//!
//! Identity: a connection starts as [`ClientId::ANONYMOUS`]; a `CLIENT
//! <name>` frame switches every later submission on that connection to
//! the named client, which is what the per-client admission buckets and
//! [`ServiceStats::clients`](teda_service::ServiceStats) key on.
//!
//! Shutdown: [`WireServer::shutdown`] (also run on drop) raises a stop
//! flag, force-closes the registered connection sockets, pokes the
//! acceptor awake with a loopback connect, and joins every thread. In-
//! flight requests finish or fail through the service's own drain.

use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use teda_corpus::table_from_csv;
use teda_service::{AnnotationService, ClientId, RequestHandle};

use crate::protocol::{read_frame, render_annotations, render_stats, Reply, Request, WireError};

/// Threads and sockets the server must reap on shutdown.
#[derive(Default)]
struct Registry {
    /// One clone of each live connection's stream, for forced close.
    streams: Vec<TcpStream>,
    /// Connection reader threads.
    handles: Vec<JoinHandle<()>>,
}

/// The line-protocol TCP front-end over one [`AnnotationService`].
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    registry: Arc<Mutex<Registry>>,
    acceptor: Option<JoinHandle<()>>,
    /// Kept so shutdown can unpark connection threads waiting on a dry
    /// query pool (`wake_blocked_submitters`).
    service: Arc<AnnotationService>,
}

impl WireServer {
    /// Binds `addr` (use port 0 for an ephemeral port; read it back
    /// with [`local_addr`](Self::local_addr)) and starts the acceptor.
    /// The service rides behind an `Arc` so in-process callers can keep
    /// submitting beside the wire clients.
    pub fn start(
        service: Arc<AnnotationService>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Mutex::new(Registry::default()));

        let acceptor = {
            let stop = Arc::clone(&stop);
            let registry = Arc::clone(&registry);
            let service = Arc::clone(&service);
            std::thread::Builder::new()
                .name("teda-wire-acceptor".into())
                .spawn(move || accept_loop(&listener, &service, &stop, &registry))
                .expect("spawn wire acceptor")
        };
        Ok(WireServer {
            addr,
            stop,
            registry,
            acceptor: Some(acceptor),
            service,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes every connection, joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept awake; the connection is refused a
        // frame because the stop flag is already up.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let (streams, handles) = {
            let mut reg = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
            (
                std::mem::take(&mut reg.streams),
                std::mem::take(&mut reg.handles),
            )
        };
        for stream in streams {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Connection threads parked on a dry query pool are not
        // unblocked by the socket close — kick the admission condvar so
        // their cancellable submissions observe the stop flag, or the
        // joins below would deadlock.
        self.service.wake_blocked_submitters();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Accepts until the stop flag rises; spawns one reader per connection.
fn accept_loop(
    listener: &TcpListener,
    service: &Arc<AnnotationService>,
    stop: &Arc<AtomicBool>,
    registry: &Arc<Mutex<Registry>>,
) {
    let mut conn_id = 0usize;
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            // Persistent accept errors (fd exhaustion, ECONNABORTED
            // storms) must not busy-spin the acceptor at 100% CPU —
            // back off briefly and retry.
            std::thread::sleep(std::time::Duration::from_millis(10));
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return; // the shutdown poke (or a late client) — drop it
        }
        conn_id += 1;
        let service = Arc::clone(service);
        let stop_flag = Arc::clone(stop);
        let registered = stream.try_clone().ok();
        let handle = std::thread::Builder::new()
            .name(format!("teda-wire-conn-{conn_id}"))
            .spawn(move || handle_connection(&service, stream, &stop_flag))
            .expect("spawn wire connection thread");
        let mut reg = registry.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(stream) = registered {
            reg.streams.push(stream);
        }
        reg.handles.push(handle);
    }
}

/// One connection: frame in, frame out, until EOF/`QUIT`/shutdown.
fn handle_connection(service: &AnnotationService, stream: TcpStream, stop: &AtomicBool) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut client = ClientId::ANONYMOUS;

    while !stop.load(Ordering::SeqCst) {
        let line = match read_frame(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => return, // orderly EOF
            Err(e @ WireError::BadRequest(_)) => {
                // Over-long frame: report, then drop the connection —
                // there is no way to find the next frame boundary.
                let _ = writer.write_all(Reply::Err(e).encode().as_bytes());
                return;
            }
            Err(_) => return, // transport error
        };
        let reply = match Request::parse(&line) {
            Err(e) => Reply::Err(e),
            Ok(Request::Quit) => {
                let _ = writer.write_all(Reply::Ok("bye".into()).encode().as_bytes());
                return;
            }
            Ok(Request::Client { name }) => {
                client = ClientId::new(&name);
                Reply::Ok(format!("client {name}"))
            }
            Ok(Request::Stats) => Reply::Ok(render_stats(&service.stats())),
            Ok(Request::Budget) => Reply::Ok(match service.remaining_budget() {
                Some(n) => format!("budget {n}"),
                None => "budget unmetered".into(),
            }),
            // Persist the query-cache snapshot on demand (an operator
            // checkpoint before a planned restart). Store trouble —
            // including "no store configured" — is a typed failure on
            // this request only; the connection lives on.
            Ok(Request::Snapshot) => match service.snapshot_now() {
                Ok(entries) => Reply::Ok(format!("snapshot {entries}")),
                Err(e) => Reply::Err(WireError::Failed(e.to_string())),
            },
            Ok(Request::Annotate { name, csv }) => {
                annotate(service, &client, &name, &csv, Some(stop))
            }
            Ok(Request::Try { name, csv }) => annotate(service, &client, &name, &csv, None),
        };
        if writer.write_all(reply.encode().as_bytes()).is_err() {
            return;
        }
        let _ = writer.flush();
    }
}

/// Parses and submits one table, waiting for the outcome. Every failure
/// mode maps onto a typed wire error; nothing from untrusted input can
/// unwind this thread. `Some(stop)` selects blocking admission
/// (`ANNOTATE`), cancellable by server shutdown so a connection parked
/// on a dry pool cannot deadlock the join; `None` selects the
/// non-blocking `TRY` path.
fn annotate(
    service: &AnnotationService,
    client: &ClientId,
    name: &str,
    csv: &str,
    blocking: Option<&AtomicBool>,
) -> Reply {
    let table = match table_from_csv(csv, name) {
        Ok(table) => Arc::new(table),
        Err(e) => return Reply::Err(WireError::BadRequest(e.message().to_owned())),
    };
    let submitted: Result<RequestHandle, _> = match blocking {
        Some(stop) => service.submit_blocking_cancellable(client, Arc::clone(&table), stop),
        None => service.submit_as(client, Arc::clone(&table)),
    };
    let handle = match submitted {
        Ok(handle) => handle,
        Err(rejection) => return Reply::Err(rejection.into()),
    };
    match handle.wait() {
        Ok(outcome) => Reply::Ok(render_annotations(&outcome.annotations)),
        Err(_) => Reply::Err(WireError::Failed(
            "annotation worker failed (engine panic)".into(),
        )),
    }
}
