//! The TCP front-end: a std-thread acceptor plus one reader thread per
//! connection, each driving the shared [`AnnotationService`] and/or
//! [`SearchBackend`] — a node may serve either half or both (a cluster
//! shard process is a search-only node).
//!
//! Shape: the acceptor blocks in `accept`; every connection gets a
//! thread that reads one frame at a time, parses it with
//! [`Request::parse`], and answers with exactly one [`Reply`] frame —
//! strict request/response, so one connection has at most one request
//! in flight and a bulk client is naturally rate-limited to its own
//! round-trips while the fairness layer meters its tokens.
//!
//! Identity: a connection starts as [`ClientId::ANONYMOUS`]; a `CLIENT
//! <name>` frame switches every later submission on that connection to
//! the named client, which is what the per-client admission buckets and
//! [`ServiceStats::clients`](teda_service::ServiceStats) key on.
//!
//! Shutdown: [`WireServer::shutdown`] (also run on drop) raises a stop
//! flag, force-closes the registered connection sockets, pokes the
//! acceptor awake with a loopback connect, and joins every thread. In-
//! flight requests finish or fail through the service's own drain.

use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use teda_corpus::table_from_csv;
use teda_obs::{stage, Registry as ObsRegistry, TraceCtx};
use teda_service::{AnnotationService, ClientId, RequestHandle};
use teda_websim::SearchBackend;

use crate::protocol::{
    read_frame, render_annotations, render_hits, render_scored, render_shard_stats, render_stats,
    render_stats_json, Reply, Request, SearchHit, ShardInfo, ShardStatsReport, WireError,
};

/// Threads and sockets the server must reap on shutdown.
#[derive(Default)]
struct Registry {
    /// One clone of each live connection's stream, for forced close.
    streams: Vec<TcpStream>,
    /// Connection reader threads.
    handles: Vec<JoinHandle<()>>,
}

/// The search-serving half of a wire node: any [`SearchBackend`] plus
/// its optional cluster identity. With `info = None` the node reports
/// itself as shard 0 of 1 with `global_docs = n_docs()` — a single-node
/// server is just a one-shard cluster.
pub struct SearchNode {
    /// What `SEARCH`/`SEARCH-FULL` rank against.
    pub backend: Arc<dyn SearchBackend>,
    /// The node's place in a cluster, if it serves a shard image.
    pub info: Option<ShardInfo>,
}

/// What the connection threads share: each half of the node is
/// optional, and verbs against a missing half are `bad-request`, not
/// panics. A shard server runs search-only; the classic annotation
/// front-end runs service-only; a full node runs both.
struct NodeParts {
    service: Option<Arc<AnnotationService>>,
    search: Option<SearchNode>,
    /// Lifetime `SEARCH`/`SEARCH-FULL` counter, for `SHARD-STATS`.
    searches: AtomicU64,
    /// The node's observability surface: the service's registry when
    /// this node runs one (so `METRICS` sees the scheduler's stage
    /// histograms), a fresh per-node registry on a search-only node.
    obs: Arc<ObsRegistry>,
}

/// The line-protocol TCP front-end over one [`AnnotationService`],
/// one [`SearchBackend`], or both.
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    registry: Arc<Mutex<Registry>>,
    acceptor: Option<JoinHandle<()>>,
    /// Kept so shutdown can unpark connection threads waiting on a dry
    /// query pool (`wake_blocked_submitters`).
    parts: Arc<NodeParts>,
}

impl WireServer {
    /// Binds `addr` (use port 0 for an ephemeral port; read it back
    /// with [`local_addr`](Self::local_addr)) and starts the acceptor.
    /// The service rides behind an `Arc` so in-process callers can keep
    /// submitting beside the wire clients. `SEARCH`/`SHARD-STATS` are
    /// `bad-request` on such a node; see
    /// [`start_search_only`](Self::start_search_only) and
    /// [`start_with_search`](Self::start_with_search).
    pub fn start(
        service: Arc<AnnotationService>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<WireServer> {
        Self::start_node(Some(service), None, addr)
    }

    /// Starts a search-only node — what a cluster shard process runs:
    /// no annotation pipeline, just `SEARCH`/`SEARCH-FULL`/
    /// `SHARD-STATS` (plus `QUIT`) over the given backend.
    pub fn start_search_only(
        backend: Arc<dyn SearchBackend>,
        info: Option<ShardInfo>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<WireServer> {
        Self::start_node(None, Some(SearchNode { backend, info }), addr)
    }

    /// Starts a node serving both halves: the annotation verbs against
    /// `service` and the search verbs against `backend`.
    pub fn start_with_search(
        service: Arc<AnnotationService>,
        backend: Arc<dyn SearchBackend>,
        info: Option<ShardInfo>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<WireServer> {
        Self::start_node(Some(service), Some(SearchNode { backend, info }), addr)
    }

    fn start_node(
        service: Option<Arc<AnnotationService>>,
        search: Option<SearchNode>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Mutex::new(Registry::default()));
        let obs = match &service {
            Some(service) => service.obs(),
            None => {
                // A search-only node has no service registry — give it
                // its own, labelled with its shard identity so grafted
                // cross-node traces name the shard that produced them.
                let name = match search.as_ref().and_then(|s| s.info) {
                    Some(info) => format!("shard{}", info.shard),
                    None => "node".to_string(),
                };
                ObsRegistry::new(&name)
            }
        };
        let parts = Arc::new(NodeParts {
            service,
            search,
            searches: AtomicU64::new(0),
            obs,
        });

        let acceptor = {
            let stop = Arc::clone(&stop);
            let registry = Arc::clone(&registry);
            let parts = Arc::clone(&parts);
            std::thread::Builder::new()
                .name("teda-wire-acceptor".into())
                .spawn(move || accept_loop(&listener, &parts, &stop, &registry))
                .expect("spawn wire acceptor")
        };
        Ok(WireServer {
            addr,
            stop,
            registry,
            acceptor: Some(acceptor),
            parts,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes every connection, joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept awake; the connection is refused a
        // frame because the stop flag is already up.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let (streams, handles) = {
            let mut reg = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
            (
                std::mem::take(&mut reg.streams),
                std::mem::take(&mut reg.handles),
            )
        };
        for stream in streams {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Connection threads parked on a dry query pool are not
        // unblocked by the socket close — kick the admission condvar so
        // their cancellable submissions observe the stop flag, or the
        // joins below would deadlock.
        if let Some(service) = &self.parts.service {
            service.wake_blocked_submitters();
        }
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Accepts until the stop flag rises; spawns one reader per connection.
fn accept_loop(
    listener: &TcpListener,
    parts: &Arc<NodeParts>,
    stop: &Arc<AtomicBool>,
    registry: &Arc<Mutex<Registry>>,
) {
    let mut conn_id = 0usize;
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            // Persistent accept errors (fd exhaustion, ECONNABORTED
            // storms) must not busy-spin the acceptor at 100% CPU —
            // back off briefly and retry.
            std::thread::sleep(std::time::Duration::from_millis(10));
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return; // the shutdown poke (or a late client) — drop it
        }
        conn_id += 1;
        let parts = Arc::clone(parts);
        let stop_flag = Arc::clone(stop);
        let registered = stream.try_clone().ok();
        let handle = std::thread::Builder::new()
            .name(format!("teda-wire-conn-{conn_id}"))
            .spawn(move || handle_connection(&parts, stream, &stop_flag))
            .expect("spawn wire connection thread");
        let mut reg = registry.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(stream) = registered {
            reg.streams.push(stream);
        }
        reg.handles.push(handle);
    }
}

/// One connection: frame in, frame out, until EOF/`QUIT`/shutdown.
fn handle_connection(parts: &NodeParts, stream: TcpStream, stop: &AtomicBool) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut client = ClientId::ANONYMOUS;
    // A verb against a half this node does not serve is a typed
    // per-request failure; the connection lives on.
    let no_service = || {
        Reply::Err(WireError::BadRequest(
            "this node serves no annotation service".into(),
        ))
    };

    while !stop.load(Ordering::SeqCst) {
        let line = match read_frame(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => return, // orderly EOF
            Err(e @ WireError::BadRequest(_)) => {
                // Over-long frame: report, then drop the connection —
                // there is no way to find the next frame boundary.
                let _ = writer.write_all(Reply::Err(e).encode().as_bytes());
                return;
            }
            Err(_) => return, // transport error
        };
        let reply = match Request::parse(&line) {
            Err(e) => Reply::Err(e),
            Ok(Request::Quit) => {
                let _ = writer.write_all(Reply::Ok("bye".into()).encode().as_bytes());
                return;
            }
            Ok(Request::Client { name }) => {
                client = ClientId::new(&name);
                Reply::Ok(format!("client {name}"))
            }
            Ok(Request::Stats) => match &parts.service {
                Some(service) => Reply::Ok(render_stats(&service.stats())),
                None => no_service(),
            },
            Ok(Request::StatsJson) => match &parts.service {
                Some(service) => Reply::Ok(render_stats_json(&service.stats())),
                None => no_service(),
            },
            Ok(Request::Metrics) => Reply::Ok(parts.obs.to_prometheus()),
            Ok(Request::TraceDump { id }) => match parts.obs.trace(id) {
                Some(trace) => Reply::Ok(trace.render()),
                None => Reply::Err(WireError::BadRequest(format!(
                    "no completed trace {id:016x}"
                ))),
            },
            Ok(Request::Traced { id, inner }) => serve_traced(parts, &client, id, *inner, stop),
            Ok(Request::Budget) => match &parts.service {
                Some(service) => Reply::Ok(match service.remaining_budget() {
                    Some(n) => format!("budget {n}"),
                    None => "budget unmetered".into(),
                }),
                None => no_service(),
            },
            // Persist the query-cache snapshot on demand (an operator
            // checkpoint before a planned restart). Store trouble —
            // including "no store configured" — is a typed failure on
            // this request only; the connection lives on.
            Ok(Request::Snapshot) => match &parts.service {
                Some(service) => match service.snapshot_now() {
                    Ok(entries) => Reply::Ok(format!("snapshot {entries}")),
                    Err(e) => Reply::Err(WireError::Failed(e.to_string())),
                },
                None => no_service(),
            },
            Ok(Request::Annotate { name, csv }) => match &parts.service {
                Some(service) => annotate(service, &client, &name, &csv, Some(stop), None),
                None => no_service(),
            },
            Ok(Request::Try { name, csv }) => match &parts.service {
                Some(service) => annotate(service, &client, &name, &csv, None, None),
                None => no_service(),
            },
            Ok(Request::Search { k, query, full }) => match &parts.search {
                Some(node) => {
                    parts.searches.fetch_add(1, Ordering::Relaxed);
                    serve_search(node, &query, k, full)
                }
                None => Reply::Err(WireError::BadRequest(
                    "this node serves no search backend".into(),
                )),
            },
            Ok(Request::ShardStats) => match &parts.search {
                Some(node) => {
                    let docs = node.backend.n_docs() as u64;
                    let info = node.info.unwrap_or(ShardInfo {
                        shard: 0,
                        n_shards: 1,
                        global_docs: docs,
                    });
                    Reply::Ok(render_shard_stats(&ShardStatsReport {
                        shard: info.shard,
                        n_shards: info.n_shards,
                        docs,
                        global_docs: info.global_docs,
                        searches: parts.searches.load(Ordering::Relaxed),
                    }))
                }
                None => Reply::Err(WireError::BadRequest(
                    "this node serves no search backend".into(),
                )),
            },
        };
        if writer.write_all(reply.encode().as_bytes()).is_err() {
            return;
        }
        let _ = writer.flush();
    }
}

/// Serves one `SEARCH`/`SEARCH-FULL` request. The full path ranks once
/// for the scored ids and once more for the hydrated fields — both
/// passes are deterministic over the same backend, so the zip below
/// pairs each id with its own fields.
fn serve_search(node: &SearchNode, query: &str, k: usize, full: bool) -> Reply {
    let scored = node.backend.search(query, k);
    if !full {
        return Reply::Ok(render_scored(&scored));
    }
    let results = node.backend.search_results(query, k);
    let hits: Vec<SearchHit> = scored
        .into_iter()
        .zip(results)
        .map(|((id, score), result)| SearchHit { id, score, result })
        .collect();
    Reply::Ok(render_hits(&hits))
}

/// Serves one `TRACE <id>`-prefixed request: the inner request runs
/// under a trace context carrying the caller's id, so the tree this
/// node records can be fetched with `TRACE-DUMP <id>` and grafted into
/// the caller's tree — one id reconstructs a cross-node request.
fn serve_traced(
    parts: &NodeParts,
    client: &ClientId,
    id: u64,
    inner: Request,
    stop: &AtomicBool,
) -> Reply {
    match inner {
        Request::Search { k, query, full } => match &parts.search {
            Some(node) => {
                parts.searches.fetch_add(1, Ordering::Relaxed);
                let ctx = parts.obs.trace_with_id(id, "search");
                let reply = {
                    let _span = ctx.span(stage::SEARCH);
                    serve_search(node, &query, k, full)
                };
                ctx.finish();
                reply
            }
            None => Reply::Err(WireError::BadRequest(
                "this node serves no search backend".into(),
            )),
        },
        Request::Annotate { name, csv } => match &parts.service {
            Some(service) => annotate(
                service,
                client,
                &name,
                &csv,
                Some(stop),
                Some(parts.obs.trace_with_id(id, "request")),
            ),
            None => Reply::Err(WireError::BadRequest(
                "this node serves no annotation service".into(),
            )),
        },
        Request::Try { name, csv } => match &parts.service {
            Some(service) => annotate(
                service,
                client,
                &name,
                &csv,
                None,
                Some(parts.obs.trace_with_id(id, "request")),
            ),
            None => Reply::Err(WireError::BadRequest(
                "this node serves no annotation service".into(),
            )),
        },
        // `Request::parse` only wraps the three verbs above; an
        // in-process caller handing us something else is a bad request,
        // not a panic.
        _ => Reply::Err(WireError::BadRequest(
            "TRACE only prefixes SEARCH/SEARCH-FULL/ANNOTATE/TRY".into(),
        )),
    }
}

/// Parses and submits one table, waiting for the outcome. Every failure
/// mode maps onto a typed wire error; nothing from untrusted input can
/// unwind this thread. `Some(stop)` selects blocking admission
/// (`ANNOTATE`), cancellable by server shutdown so a connection parked
/// on a dry pool cannot deadlock the join; `None` selects the
/// non-blocking `TRY` path. A `Some(trace)` runs the request under the
/// caller's trace id.
fn annotate(
    service: &AnnotationService,
    client: &ClientId,
    name: &str,
    csv: &str,
    blocking: Option<&AtomicBool>,
    trace: Option<TraceCtx>,
) -> Reply {
    let table = match table_from_csv(csv, name) {
        Ok(table) => Arc::new(table),
        Err(e) => return Reply::Err(WireError::BadRequest(e.message().to_owned())),
    };
    let submitted: Result<RequestHandle, _> = match (blocking, trace) {
        (Some(stop), Some(tr)) => {
            service.submit_blocking_traced(client, Arc::clone(&table), Some(stop), tr)
        }
        (Some(stop), None) => service.submit_blocking_cancellable(client, Arc::clone(&table), stop),
        (None, Some(tr)) => service.submit_traced(client, Arc::clone(&table), tr),
        (None, None) => service.submit_as(client, Arc::clone(&table)),
    };
    let handle = match submitted {
        Ok(handle) => handle,
        Err(rejection) => return Reply::Err(rejection.into()),
    };
    match handle.wait() {
        Ok(outcome) => Reply::Ok(render_annotations(&outcome.annotations)),
        Err(_) => Reply::Err(WireError::Failed(
            "annotation worker failed (engine panic)".into(),
        )),
    }
}
