//! Lock-free log-bucketed latency histograms.
//!
//! Fixed geometric layout over microseconds: bucket `i` holds every
//! value whose bit width is `i` — bucket 0 is exactly `0`, bucket `i`
//! (for `1 ≤ i ≤ 62`) covers `[2^(i-1), 2^i - 1]`, and the top bucket
//! saturates: everything at or above `2^62 µs` (≈146 millennia) lands
//! there. Recording is one relaxed atomic increment on the bucket
//! counter — no lock, no allocation, no clock read — so a histogram can
//! sit on the hottest request path of the service without perturbing
//! it, and a disabled histogram short-circuits before even that.
//!
//! Quantiles are estimated from a [`HistSnapshot`] by nearest rank over
//! the bucket counts and reported as the *upper bound* of the selected
//! bucket, so the exact sorted value is always within the same bucket's
//! bounds (property-tested in `tests/obs.rs`). Snapshots merge by
//! element-wise saturating addition, which is associative and
//! commutative: the merged count is `min(true total, u64::MAX)`
//! regardless of merge order.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible bit width of a `u64` value,
/// plus bucket 0 for the value zero.
pub const BUCKETS: usize = 64;

/// The bucket a microsecond value lands in: its bit width, clamped
/// into the saturating top bucket.
#[inline]
pub fn bucket_of(us: u64) -> usize {
    ((u64::BITS - us.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive `[lower, upper]` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        i if i < BUCKETS - 1 => (1 << (i - 1), (1 << i) - 1),
        _ => (1 << (BUCKETS - 2), u64::MAX),
    }
}

/// A lock-free histogram of microsecond durations. Shared behind an
/// `Arc`; every recorder and every snapshotter proceeds without
/// coordination.
#[derive(Debug)]
pub struct Histogram {
    enabled: bool,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// A recording histogram.
    pub fn new() -> Histogram {
        Histogram {
            enabled: true,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// A disabled histogram: [`record`](Self::record) is a no-op and
    /// [`is_enabled`](Self::is_enabled) is false, so callers can skip
    /// the clock read that would produce the value in the first place.
    pub fn disabled() -> Histogram {
        Histogram {
            enabled: false,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Whether recording does anything — timers consult this before
    /// reading the clock.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one duration: a single relaxed atomic increment.
    #[inline]
    pub fn record(&self, us: u64) {
        if self.enabled {
            self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the bucket counts. Concurrent recorders
    /// may land increments between bucket reads; each bucket value is
    /// itself exact.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// An owned copy of a histogram's bucket counts — what quantile
/// estimation, merging, and exposition work from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Count per bucket (see [`bucket_bounds`] for value ranges).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Total recorded observations (saturating).
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, &b| acc.saturating_add(b))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// The `[lower, upper]` bucket bounds containing the `q`-quantile
    /// observation (nearest rank: rank `⌈q·n⌉`, clamped to `[1, n]`).
    /// `(0, 0)` for an empty snapshot.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        let n = self.count();
        if n == 0 {
            return (0, 0);
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b);
            if seen >= rank {
                return bucket_bounds(i);
            }
        }
        bucket_bounds(BUCKETS - 1)
    }

    /// Upper-bound estimate of the `q`-quantile: the exact sorted value
    /// is guaranteed to lie within the same bucket, i.e. in
    /// `[quantile_bounds(q).0, quantile(q)]`.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1
    }

    /// Upper bound of the highest non-empty bucket — an upper estimate
    /// of the maximum recorded value. `0` for an empty snapshot.
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&b| b > 0)
            .map(|i| bucket_bounds(i).1)
            .unwrap_or(0)
    }

    /// Element-wise saturating merge: associative and commutative, so
    /// shard snapshots can fold in any order with one result.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_space() {
        for (v, want) in [(0u64, 0usize), (1, 1), (2, 2), (3, 2), (4, 3), (1023, 10)] {
            assert_eq!(bucket_of(v), want, "bucket of {v}");
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every value lies within its own bucket's bounds, and bounds tile.
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
            if i + 1 < BUCKETS {
                assert_eq!(bucket_bounds(i + 1).0, hi + 1, "bucket {i} must tile");
            }
        }
    }

    #[test]
    fn record_and_quantile_bracket_exact_values() {
        let h = Histogram::new();
        let values = [0u64, 1, 5, 5, 9, 100, 100_000, 3_000_000];
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), values.len() as u64);
        let mut sorted = values;
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let (lo, hi) = snap.quantile_bounds(q);
            assert!(
                lo <= exact && exact <= hi,
                "q={q}: exact {exact} outside [{lo}, {hi}]"
            );
        }
        assert!(snap.max_bound() >= *sorted.last().unwrap());
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let h = Histogram::disabled();
        h.record(42);
        assert!(!h.is_enabled());
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = HistSnapshot::default();
        a.buckets[3] = u64::MAX - 1;
        let mut b = HistSnapshot::default();
        b.buckets[3] = 5;
        a.merge(&b);
        assert_eq!(a.buckets[3], u64::MAX);
        assert_eq!(a.count(), u64::MAX);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.max_bound(), 0);
    }
}
