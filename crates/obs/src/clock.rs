//! The observability clock facade — the only place the serving stack
//! reads wall time for measurement.
//!
//! Scoring/merge modules (see `teda-lint`'s `wallclock_in_scoring`) may
//! not name `Instant`/`SystemTime`; they time stages through these
//! guard types instead, which keeps every clock token inside
//! `crates/obs`. The lint exemption for this crate carries the proof:
//! durations measured here are recorded into histograms and trace
//! spans *after* a result is computed and never flow back into a
//! score, rank, or merge decision — `exp_obs` asserts bit-identical
//! annotations with telemetry on and off.

use std::sync::Arc;
use std::time::Instant;

use crate::hist::Histogram;

/// A started stopwatch. `started_if(false)` skips the clock read
/// entirely — the disabled path costs one branch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    t0: Option<Instant>,
}

impl Stopwatch {
    /// Reads the clock now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            t0: Some(Instant::now()),
        }
    }

    /// Reads the clock only when `on`; otherwise every later
    /// [`elapsed_us`](Self::elapsed_us) is `0`.
    pub fn started_if(on: bool) -> Stopwatch {
        Stopwatch {
            t0: on.then(Instant::now),
        }
    }

    /// Whether this stopwatch actually read the clock.
    pub fn is_running(&self) -> bool {
        self.t0.is_some()
    }

    /// Microseconds since [`start`](Self::start), saturating.
    pub fn elapsed_us(&self) -> u64 {
        self.t0
            .map(|t0| u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }
}

/// Times one pipeline stage into a histogram: started against an
/// `Arc<Histogram>`, records the elapsed microseconds on drop. Against
/// a disabled histogram neither the clock read nor the record happens.
#[derive(Debug)]
pub struct StageTimer {
    hist: Arc<Histogram>,
    t0: Option<Instant>,
}

impl StageTimer {
    /// Starts timing into `hist` (no-op when `hist` is disabled).
    pub fn start(hist: Arc<Histogram>) -> StageTimer {
        let t0 = hist.is_enabled().then(Instant::now);
        StageTimer { hist, t0 }
    }

    /// Stops and records now instead of at end of scope.
    pub fn finish(self) {}
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some(t0) = self.t0 {
            self.hist
                .record(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_off_reads_no_clock() {
        let sw = Stopwatch::started_if(false);
        assert!(!sw.is_running());
        assert_eq!(sw.elapsed_us(), 0);
        assert!(Stopwatch::started_if(true).is_running());
    }

    #[test]
    fn stage_timer_records_once_on_drop() {
        let hist = Arc::new(Histogram::new());
        StageTimer::start(Arc::clone(&hist)).finish();
        drop(StageTimer::start(Arc::clone(&hist)));
        assert_eq!(hist.snapshot().count(), 2);
    }

    #[test]
    fn stage_timer_against_disabled_histogram_is_inert() {
        let hist = Arc::new(Histogram::disabled());
        let t = StageTimer::start(Arc::clone(&hist));
        assert!(t.t0.is_none(), "disabled histogram must skip the clock");
        drop(t);
        assert!(hist.snapshot().is_empty());
    }
}
