//! `teda-obs` — dependency-free observability for the serving stack.
//!
//! Three pieces (see `src/README.md` for the full contract):
//!
//! * [`hist`] — lock-free log-bucketed histograms: recording is one
//!   relaxed atomic increment, snapshots merge associatively, and
//!   quantile estimates are bounded by their bucket.
//! * [`trace`] — per-request span trees with deterministic ids,
//!   collected into a bounded ring and reassemblable across nodes.
//! * [`registry`] — the per-node surface tying both together, with
//!   Prometheus-style ([`Registry::to_prometheus`]) and JSON
//!   ([`Registry::to_json`]) exposition behind the `METRICS` and
//!   `TRACE-DUMP` wire verbs.
//!
//! The determinism contract: observation never perturbs results. A
//! disabled registry hands out disabled histograms and inert trace
//! contexts, so the instrumented request path differs only by a
//! branch; all measured durations flow *out* of the pipeline into
//! exposition, never back into a score, rank, or merge decision. All
//! `Instant` reads live in this crate ([`clock`]), keeping the
//! `wallclock_in_scoring` lint green everywhere else.

pub mod clock;
pub mod hist;
pub mod registry;
pub mod trace;

pub use clock::{StageTimer, Stopwatch};
pub use hist::{bucket_bounds, bucket_of, HistSnapshot, Histogram, BUCKETS};
pub use registry::{stage, Registry, TRACE_RING_CAPACITY};
pub use trace::{Span, SpanGuard, Trace, TraceCtx, TraceRing};
