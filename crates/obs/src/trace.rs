//! Per-request trace spans.
//!
//! A [`TraceCtx`] carries a request-scoped id (deterministically
//! assigned per registry — request *i* gets id *i*, so a test can
//! predict them) and collects timed spans as the request crosses
//! pipeline stages. Spans form a tree stored flat: `spans[0]` is the
//! root, every other span names its parent by index. When the request
//! completes the finished tree is pushed into the owning registry's
//! bounded ring of completed traces, where `TRACE-DUMP <id>` finds it.
//!
//! Recording is fire-and-forget: a disabled context (`TraceCtx::
//! disabled()`, or any context minted by a no-op registry) carries no
//! allocation, reads no clock, and every operation on it is a cheap
//! no-op — the request path is identical either way, which is half of
//! the "telemetry never changes a result bit" contract.
//!
//! Cross-node: the wire layer forwards the id with an optional
//! `TRACE <id>` frame prefix; each shard records its own tree under
//! the same id, and [`Trace::graft`] reassembles one tree spanning
//! router and shards from the per-node dumps.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// One timed span. `start_us`/`end_us` are microseconds since the
/// trace's origin (the creation of its root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Index of the parent span in the trace's flat span list; the
    /// root (index 0) points at itself.
    pub parent: u32,
    /// Stage name, e.g. `queue_wait` or `shard0`.
    pub name: String,
    /// Start offset from the trace origin, µs.
    pub start_us: u64,
    /// End offset from the trace origin, µs.
    pub end_us: u64,
}

/// A completed span tree for one request on one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Request-scoped id, shared across nodes via the `TRACE` prefix.
    pub id: u64,
    /// Which node recorded this tree (e.g. `router`, `shard1`).
    pub node: String,
    /// Flat span tree; `spans[0]` is the root.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Renders the trace as the `TRACE-DUMP` payload: a header line,
    /// then one `index parent start_us end_us name` line per span.
    /// Names go last so they may contain spaces; the wire layer
    /// escapes the newlines into one frame.
    pub fn render(&self) -> String {
        use std::fmt::Write;

        let mut out = format!(
            "trace {:016x} node={} spans={}\n",
            self.id,
            self.node,
            self.spans.len()
        );
        for (i, s) in self.spans.iter().enumerate() {
            writeln!(
                out,
                "{} {} {} {} {}",
                i, s.parent, s.start_us, s.end_us, s.name
            )
            .expect("string write");
        }
        out
    }

    /// Reverses [`render`](Self::render). Any malformed line yields a
    /// typed error string — trace dumps arrive over the wire, so this
    /// must not panic.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty trace payload")?;
        let mut fields = header.split_whitespace();
        if fields.next() != Some("trace") {
            return Err(format!("bad trace header {header:?}"));
        }
        let id = fields
            .next()
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| format!("bad trace id in {header:?}"))?;
        let node = fields
            .next()
            .and_then(|f| f.strip_prefix("node="))
            .ok_or_else(|| format!("missing node in {header:?}"))?
            .to_string();
        let n: usize = fields
            .next()
            .and_then(|f| f.strip_prefix("spans="))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("missing span count in {header:?}"))?;
        let mut spans = Vec::new();
        for line in lines {
            let mut cols = line.splitn(5, ' ');
            let mut num = |what: &str| -> Result<u64, String> {
                cols.next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("bad {what} in span line {line:?}"))
            };
            let index = num("index")?;
            let parent = num("parent")?;
            let start_us = num("start")?;
            let end_us = num("end")?;
            if index != spans.len() as u64 || parent > u32::MAX as u64 {
                return Err(format!("out-of-order span line {line:?}"));
            }
            let name = cols
                .next()
                .ok_or_else(|| format!("missing name in span line {line:?}"))?
                .to_string();
            spans.push(Span {
                parent: parent as u32,
                name,
                start_us,
                end_us,
            });
        }
        if spans.len() != n {
            return Err(format!("trace promised {n} spans, carried {}", spans.len()));
        }
        for (i, s) in spans.iter().enumerate() {
            if s.parent as usize >= spans.len() {
                return Err(format!("span {i} has dangling parent {}", s.parent));
            }
        }
        Ok(Trace { id, node, spans })
    }

    /// Grafts another node's tree under this trace's root: `other`'s
    /// root becomes a child span named `<other.node>` here, and its
    /// descendants keep their shape. Reassembles one cross-node tree
    /// from per-node dumps that share an id.
    pub fn graft(&mut self, other: &Trace) {
        if other.spans.is_empty() {
            return;
        }
        let offset = self.spans.len() as u32;
        for (i, s) in other.spans.iter().enumerate() {
            self.spans.push(Span {
                // The grafted root hangs off our root; everything else
                // shifts by the offset.
                parent: if i == 0 { 0 } else { s.parent + offset },
                name: if i == 0 {
                    format!("{}:{}", other.node, s.name)
                } else {
                    s.name.clone()
                },
                start_us: s.start_us,
                end_us: s.end_us,
            });
        }
    }

    /// Indices of the direct children of span `i`.
    pub fn children(&self, i: u32) -> Vec<u32> {
        self.spans
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, s)| s.parent == i)
            .map(|(j, _)| j as u32)
            .collect()
    }
}

/// Bounded ring of completed traces — the registry's memory of recent
/// requests. Push is O(1); lookups scan newest-first.
#[derive(Debug)]
pub struct TraceRing {
    ring: Mutex<std::collections::VecDeque<Trace>>,
    cap: usize,
}

impl TraceRing {
    pub fn new(cap: usize) -> TraceRing {
        TraceRing {
            ring: Mutex::new(std::collections::VecDeque::with_capacity(cap)),
            cap,
        }
    }

    /// Appends a completed trace, evicting the oldest past capacity.
    pub fn append(&self, trace: Trace) {
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The most recent completed trace with this id.
    pub fn get(&self, id: u64) -> Option<Trace> {
        let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.iter().rev().find(|t| t.id == id).cloned()
    }

    /// Ids of every completed trace, oldest first.
    pub fn ids(&self) -> Vec<u64> {
        let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.iter().map(|t| t.id).collect()
    }

    /// How many completed traces are held.
    pub fn completed(&self) -> usize {
        let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.completed() == 0
    }
}

struct TraceInner {
    id: u64,
    node: String,
    root_name: String,
    origin: Instant,
    /// Child spans recorded so far (the root is synthesized at finish).
    spans: Mutex<Vec<Span>>,
    ring: Arc<TraceRing>,
    finished: AtomicBool,
}

/// A live, clonable handle to one request's trace. All clones feed the
/// same span list; the trace completes on [`finish`](Self::finish) (or
/// when the last clone drops, so a panicking worker still leaves a
/// tree behind).
#[derive(Clone)]
pub struct TraceCtx {
    inner: Option<Arc<TraceInner>>,
}

impl std::fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "TraceCtx({:016x})", inner.id),
            None => write!(f, "TraceCtx(disabled)"),
        }
    }
}

impl TraceCtx {
    pub(crate) fn new(id: u64, node: &str, root_name: &str, ring: Arc<TraceRing>) -> TraceCtx {
        TraceCtx {
            inner: Some(Arc::new(TraceInner {
                id,
                node: node.to_string(),
                root_name: root_name.to_string(),
                origin: Instant::now(),
                spans: Mutex::new(Vec::new()),
                ring,
                finished: AtomicBool::new(false),
            })),
        }
    }

    /// The inert context: no id, no clock, every method a no-op.
    pub fn disabled() -> TraceCtx {
        TraceCtx { inner: None }
    }

    /// Whether spans recorded here go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The request-scoped id, if tracing is live.
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.id)
    }

    /// Microseconds since the trace origin (0 when disabled).
    pub fn now_us(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| u64::try_from(i.origin.elapsed().as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }

    /// Records one completed child-of-root span with explicit offsets —
    /// for stages whose start predates the code that reports them
    /// (e.g. queue wait, measured from the enqueue instant).
    pub fn add_span(&self, name: &str, start_us: u64, end_us: u64) {
        if let Some(inner) = &self.inner {
            let mut spans = inner.spans.lock().unwrap_or_else(PoisonError::into_inner);
            spans.push(Span {
                parent: 0,
                name: name.to_string(),
                start_us,
                end_us,
            });
        }
    }

    /// Opens a child-of-root span now; it records itself when the
    /// guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard {
            ctx: self.clone(),
            name: name.to_string(),
            start_us: self.now_us(),
        }
    }

    /// Completes the trace: synthesizes the root span over the full
    /// elapsed window and pushes the tree into the registry ring.
    /// Idempotent; later clones dropping change nothing.
    pub fn finish(&self) {
        if let Some(inner) = &self.inner {
            inner.finish();
        }
    }
}

impl TraceInner {
    fn finish(&self) {
        if self.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        let end_us = u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX);
        let children = {
            let mut spans = self.spans.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *spans)
        };
        let mut spans = Vec::with_capacity(children.len() + 1);
        spans.push(Span {
            parent: 0,
            name: self.root_name.clone(),
            start_us: 0,
            end_us,
        });
        // Children were recorded with parent 0, which is exactly where
        // the root sits in the final list.
        spans.extend(children);
        self.ring.append(Trace {
            id: self.id,
            node: self.node.clone(),
            spans,
        });
    }
}

impl Drop for TraceInner {
    fn drop(&mut self) {
        // The last handle went away without an explicit finish (worker
        // panic, early return) — complete the tree anyway so the
        // request is not invisible post-mortem.
        self.finish();
    }
}

/// Guard for an open span; records `[start, drop)` as a child of the
/// trace root.
pub struct SpanGuard {
    ctx: TraceCtx,
    name: String,
    start_us: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.ctx.is_enabled() {
            self.ctx
                .add_span(&self.name, self.start_us, self.ctx.now_us());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Arc<TraceRing> {
        Arc::new(TraceRing::new(8))
    }

    #[test]
    fn disabled_ctx_is_inert() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.is_enabled());
        assert_eq!(ctx.id(), None);
        assert_eq!(ctx.now_us(), 0);
        ctx.add_span("x", 0, 1);
        drop(ctx.span("y"));
        ctx.finish();
    }

    #[test]
    fn finish_pushes_one_tree_with_root_first() {
        let ring = ring();
        let ctx = TraceCtx::new(7, "node-a", "annotate", Arc::clone(&ring));
        ctx.add_span("queue_wait", 0, 5);
        drop(ctx.span("work"));
        ctx.finish();
        ctx.finish(); // idempotent
        assert_eq!(ring.completed(), 1);
        let t = ring.get(7).expect("trace recorded");
        assert_eq!(t.node, "node-a");
        assert_eq!(t.spans[0].name, "annotate");
        assert_eq!(t.spans.len(), 3);
        assert!(t.spans.iter().all(|s| s.parent == 0));
    }

    #[test]
    fn dropping_the_last_clone_finishes_the_trace() {
        let ring = ring();
        let ctx = TraceCtx::new(1, "n", "root", Arc::clone(&ring));
        let clone = ctx.clone();
        drop(ctx);
        assert!(ring.is_empty(), "live clone must keep the trace open");
        drop(clone);
        assert_eq!(ring.completed(), 1);
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let ring = TraceRing::new(2);
        for id in 0..5u64 {
            ring.append(Trace {
                id,
                node: "n".into(),
                spans: vec![],
            });
        }
        assert_eq!(ring.ids(), vec![3, 4]);
        assert!(ring.get(0).is_none());
    }

    #[test]
    fn render_parse_round_trip() {
        let t = Trace {
            id: 0xdead_beef,
            node: "router".into(),
            spans: vec![
                Span {
                    parent: 0,
                    name: "search".into(),
                    start_us: 0,
                    end_us: 100,
                },
                Span {
                    parent: 0,
                    name: "shard 1 scatter".into(),
                    start_us: 3,
                    end_us: 60,
                },
            ],
        };
        assert_eq!(Trace::parse(&t.render()).unwrap(), t);
        assert!(Trace::parse("").is_err());
        assert!(Trace::parse("trace xyz node=a spans=0\n").is_err());
        assert!(Trace::parse("trace 01 node=a spans=2\n0 0 0 1 x\n").is_err());
    }

    #[test]
    fn graft_builds_one_cross_node_tree() {
        let mut root = Trace {
            id: 9,
            node: "router".into(),
            spans: vec![Span {
                parent: 0,
                name: "search".into(),
                start_us: 0,
                end_us: 100,
            }],
        };
        let shard = Trace {
            id: 9,
            node: "shard0".into(),
            spans: vec![
                Span {
                    parent: 0,
                    name: "search".into(),
                    start_us: 0,
                    end_us: 40,
                },
                Span {
                    parent: 0,
                    name: "score".into(),
                    start_us: 1,
                    end_us: 30,
                },
            ],
        };
        root.graft(&shard);
        assert_eq!(root.spans.len(), 3);
        assert_eq!(root.spans[1].name, "shard0:search");
        assert_eq!(root.spans[1].parent, 0);
        assert_eq!(root.spans[2].parent, 1, "shard child must follow its root");
        assert_eq!(root.children(0), vec![1]);
        assert_eq!(root.children(1), vec![2]);
    }
}
