//! The per-node metric registry: named stage histograms, the completed
//! trace ring, and the deterministic trace-id counter, with
//! Prometheus-style and JSON exposition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::hist::{bucket_bounds, HistSnapshot, Histogram, BUCKETS};
use crate::trace::{TraceCtx, TraceRing};

/// How many completed traces a registry remembers.
pub const TRACE_RING_CAPACITY: usize = 256;

/// Canonical pipeline stage names — one histogram each, so dashboards
/// and tests agree on spelling.
pub mod stage {
    pub const QUEUE_WAIT: &str = "queue_wait";
    pub const CACHE_LOOKUP: &str = "cache_lookup";
    pub const SEARCH: &str = "search";
    pub const ANNOTATE: &str = "annotate";
    pub const REQUEST: &str = "request";
    pub const SHARD_SCATTER: &str = "shard_scatter";
    pub const MERGE: &str = "merge";
    pub const PAGE_HYDRATION: &str = "page_hydration";
    pub const SNAPSHOT: &str = "snapshot";
    pub const COMPACTION: &str = "compaction";
}

/// One node's observability surface. Cheap to share (`Arc`); a no-op
/// registry hands out disabled histograms and disabled trace contexts,
/// so instrumented code is written once and costs a branch when
/// telemetry is off.
pub struct Registry {
    enabled: bool,
    node: String,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
    traces: Arc<TraceRing>,
    next_trace_id: AtomicU64,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled)
            .field("node", &self.node)
            .finish_non_exhaustive()
    }
}

impl Registry {
    /// A recording registry for the named node.
    pub fn new(node: &str) -> Arc<Registry> {
        Arc::new(Registry {
            enabled: true,
            node: node.to_string(),
            hists: Mutex::new(BTreeMap::new()),
            traces: Arc::new(TraceRing::new(TRACE_RING_CAPACITY)),
            next_trace_id: AtomicU64::new(1),
        })
    }

    /// A disabled registry: histograms never record, trace contexts
    /// are inert, exposition renders empty.
    pub fn noop(node: &str) -> Arc<Registry> {
        Arc::new(Registry {
            enabled: false,
            node: node.to_string(),
            hists: Mutex::new(BTreeMap::new()),
            traces: Arc::new(TraceRing::new(1)),
            next_trace_id: AtomicU64::new(1),
        })
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The node label exposition carries.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Get-or-create the stage histogram. Callers cache the `Arc` —
    /// the lock here is for registration, not the record path. On a
    /// disabled registry the returned histogram is disabled too.
    pub fn histogram(&self, stage: &str) -> Arc<Histogram> {
        let mut hists = self.hists.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(hists.entry(stage.to_string()).or_insert_with(|| {
            Arc::new(if self.enabled {
                Histogram::new()
            } else {
                Histogram::disabled()
            })
        }))
    }

    /// Starts a trace with the next deterministic request-scoped id
    /// (1, 2, 3, … per registry). Inert on a disabled registry.
    pub fn start_trace(&self, root_name: &str) -> TraceCtx {
        if !self.enabled {
            return TraceCtx::disabled();
        }
        let id = self.next_trace_id.fetch_add(1, Ordering::Relaxed);
        TraceCtx::new(id, &self.node, root_name, Arc::clone(&self.traces))
    }

    /// Starts a trace under an id minted elsewhere — the wire server
    /// uses this for `TRACE <id>`-prefixed requests so the shard's tree
    /// joins the router's under one id.
    pub fn trace_with_id(&self, id: u64, root_name: &str) -> TraceCtx {
        if !self.enabled {
            return TraceCtx::disabled();
        }
        TraceCtx::new(id, &self.node, root_name, Arc::clone(&self.traces))
    }

    /// The most recent completed trace with this id.
    pub fn trace(&self, id: u64) -> Option<crate::trace::Trace> {
        self.traces.get(id)
    }

    /// Ids of every completed trace, oldest first.
    pub fn trace_ids(&self) -> Vec<u64> {
        self.traces.ids()
    }

    /// Point-in-time snapshots of every registered histogram, in
    /// stable (sorted-name) order.
    pub fn snapshots(&self) -> Vec<(String, HistSnapshot)> {
        let hists = self.hists.lock().unwrap_or_else(PoisonError::into_inner);
        hists
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }

    /// Prometheus-style text exposition: one `teda_stage_us` histogram
    /// family with a `stage` label per registered histogram, non-empty
    /// buckets as cumulative `_bucket` samples plus the `+Inf` bucket
    /// and `_count`. Ordering is stable (stages sorted, buckets
    /// ascending), so two scrapes of identical state render
    /// identically.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;

        let snaps = self.snapshots();
        let mut out = String::new();
        out.push_str("# TYPE teda_stage_us histogram\n");
        for (name, snap) in &snaps {
            let node = &self.node;
            let mut cumulative = 0u64;
            for (i, &count) in snap.buckets.iter().enumerate() {
                cumulative = cumulative.saturating_add(count);
                if count == 0 {
                    continue;
                }
                let (_, upper) = bucket_bounds(i);
                let le = if i == BUCKETS - 1 {
                    "+Inf".to_string()
                } else {
                    upper.to_string()
                };
                writeln!(
                    out,
                    "teda_stage_us_bucket{{node=\"{node}\",stage=\"{name}\",le=\"{le}\"}} {cumulative}"
                )
                .expect("string write");
            }
            writeln!(
                out,
                "teda_stage_us_bucket{{node=\"{node}\",stage=\"{name}\",le=\"+Inf\"}} {cumulative}\n\
                 teda_stage_us_count{{node=\"{node}\",stage=\"{name}\"}} {cumulative}"
            )
            .expect("string write");
        }
        writeln!(
            out,
            "# TYPE teda_traces_completed gauge\n\
             teda_traces_completed{{node=\"{}\"}} {}",
            self.node,
            self.traces.completed()
        )
        .expect("string write");
        out
    }

    /// Hand-rolled JSON exposition (the offline build has no serde):
    /// node label, per-stage quantile estimates, and non-empty buckets
    /// as `[lower, upper, count]` triples. Feeds `BENCH_obs.json`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;

        let snaps = self.snapshots();
        let mut out = format!(
            "{{\n  \"node\": \"{}\",\n  \"traces_completed\": {},\n  \"stages\": [",
            self.node,
            self.traces.completed()
        );
        for (si, (name, snap)) in snaps.iter().enumerate() {
            write!(
                out,
                "{}\n    {{\"stage\": \"{}\", \"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"max_us\": {}, \"buckets\": [",
                if si == 0 { "" } else { "," },
                name,
                snap.count(),
                snap.quantile(0.50),
                snap.quantile(0.99),
                snap.max_bound()
            )
            .expect("string write");
            let mut first = true;
            for (i, &count) in snap.buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let (lo, hi) = bucket_bounds(i);
                write!(
                    out,
                    "{}[{lo}, {hi}, {count}]",
                    if first { "" } else { ", " }
                )
                .expect("string write");
                first = false;
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_get_or_create_and_shared() {
        let reg = Registry::new("test");
        let a = reg.histogram(stage::ANNOTATE);
        let b = reg.histogram(stage::ANNOTATE);
        a.record(10);
        assert_eq!(b.snapshot().count(), 1, "same underlying histogram");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn noop_registry_is_fully_inert() {
        let reg = Registry::noop("off");
        assert!(!reg.is_enabled());
        let h = reg.histogram(stage::SEARCH);
        h.record(99);
        assert!(h.snapshot().is_empty());
        let ctx = reg.start_trace("req");
        assert!(!ctx.is_enabled());
        ctx.finish();
        assert!(reg.trace_ids().is_empty());
    }

    #[test]
    fn trace_ids_are_deterministic_per_registry() {
        let reg = Registry::new("n");
        let ids: Vec<u64> = (0..3)
            .map(|_| {
                let ctx = reg.start_trace("r");
                let id = ctx.id().unwrap();
                ctx.finish();
                id
            })
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(reg.trace_ids(), vec![1, 2, 3]);
        assert!(reg.trace(2).is_some());
        assert!(reg.trace(99).is_none());
    }

    #[test]
    fn prometheus_rendering_is_stable_and_ordered() {
        let reg = Registry::new("node-a");
        reg.histogram(stage::SEARCH).record(5);
        reg.histogram(stage::ANNOTATE).record(1000);
        reg.histogram(stage::ANNOTATE).record(3);
        let a = reg.to_prometheus();
        let b = reg.to_prometheus();
        assert_eq!(a, b, "identical state must render identically");
        let annotate_pos = a.find("stage=\"annotate\"").unwrap();
        let search_pos = a.find("stage=\"search\"").unwrap();
        assert!(annotate_pos < search_pos, "stages must be sorted");
        assert!(a.contains("teda_stage_us_count{node=\"node-a\",stage=\"annotate\"} 2"));
        assert!(a.contains("le=\"+Inf\""));
    }

    #[test]
    fn json_rendering_carries_quantiles_and_buckets() {
        let reg = Registry::new("node-b");
        reg.histogram(stage::MERGE).record(7);
        let json = reg.to_json();
        assert!(json.contains("\"node\": \"node-b\""));
        assert!(json.contains("\"stage\": \"merge\""));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("[4, 7, 1]"), "bucket triple for 7: {json}");
    }
}
