//! Service-layer integration: the bounded query cache must never change
//! an annotation (only its cost), capacity and TTL must be honoured
//! under real corpus load, single-flight must survive eviction pressure,
//! the geocoding memo must deduplicate addresses corpus-wide, and the
//! request scheduler must match the offline batch path bit for bit while
//! shedding what it cannot queue.

use std::sync::Arc;
use std::time::Duration;

use teda::classifier::svm::pegasos::PegasosConfig;
use teda::core::cache::CacheConfig;
use teda::core::config::AnnotatorConfig;
use teda::core::model::SnippetClassifier;
use teda::core::pipeline::{BatchAnnotator, TableAnnotations};
use teda::core::trainer::{harvest, train_svm_linear, TrainerConfig};
use teda::core::QueryCache;
use teda::corpus::gft::poi_table;
use teda::geo::SimGeocoder;
use teda::kb::{CategoryNetwork, EntityType, World, WorldSpec};
use teda::service::{AnnotationService, Rejection, ServiceConfig};
use teda::simkit::rng_from_seed;
use teda::tabular::Table;
use teda::websim::{BingSim, SearchEngine, WebCorpus, WebCorpusSpec};

fn fixture() -> (World, Arc<BingSim>, SnippetClassifier) {
    let world = World::generate(WorldSpec::tiny(), 42);
    let net = CategoryNetwork::build(&world, 42);
    let web = Arc::new(WebCorpus::build(&world, WebCorpusSpec::tiny(), 42));
    let engine = Arc::new(BingSim::instant(web));
    let corpus = harvest(
        &world,
        &net,
        engine.as_ref(),
        &EntityType::TARGETS,
        TrainerConfig {
            max_entities_per_type: Some(12),
            ..TrainerConfig::default()
        },
    );
    let classifier = train_svm_linear(&corpus, PegasosConfig::default());
    (world, engine, classifier)
}

fn seeded_corpus(world: &World, n_tables: usize, rows: usize) -> Vec<Table> {
    let mut rng = rng_from_seed(7);
    let types = [
        EntityType::Restaurant,
        EntityType::Museum,
        EntityType::Hotel,
    ];
    (0..n_tables)
        .map(|i| {
            poi_table(
                world,
                types[i % types.len()],
                rows,
                (i % 3) as u8,
                &format!("svc_{i}"),
                &mut rng,
            )
            .table
        })
        .collect()
}

fn batch(engine: Arc<BingSim>, classifier: SnippetClassifier) -> BatchAnnotator {
    BatchAnnotator::new(engine, classifier, AnnotatorConfig::default())
}

#[test]
fn bounded_cache_annotations_are_bit_identical_to_unbounded() {
    let (world, engine, classifier) = fixture();
    let tables = seeded_corpus(&world, 8, 12);

    let unbounded = batch(engine.clone(), classifier.clone());
    let reference: Vec<TableAnnotations> = unbounded.annotate_corpus(&tables);

    // A cache far too small for the corpus: constant eviction churn.
    let bounded = batch(engine, classifier).with_cache_config(CacheConfig {
        shards: 2,
        capacity: Some(8),
        ttl: None,
    });
    let out: Vec<TableAnnotations> = bounded.annotate_corpus_par(&tables);
    assert_eq!(out, reference, "eviction changed an annotation");
    let stats = bounded.cache_stats();
    assert!(
        stats.evictions > 0,
        "a capacity-8 cache over this corpus must evict (misses: {})",
        stats.misses
    );
    // Evict-then-rehit: the same corpus again is still bit-identical.
    let again: Vec<TableAnnotations> = bounded.annotate_corpus(&tables);
    assert_eq!(again, reference, "evict-then-rehit diverged");
}

#[test]
fn cache_capacity_is_respected_under_load() {
    let (world, engine, classifier) = fixture();
    let tables = seeded_corpus(&world, 8, 14);
    for capacity in [4, 16, 64] {
        let annotator = batch(engine.clone(), classifier.clone()).with_cache_config(CacheConfig {
            shards: 4,
            capacity: Some(capacity),
            ttl: None,
        });
        annotator.annotate_corpus_par(&tables);
        let cap = annotator
            .cache()
            .capacity()
            .expect("bounded cache reports its capacity");
        assert!(
            annotator.cache().len() <= cap,
            "cache holds {} entries over its capacity {cap}",
            annotator.cache().len(),
        );
    }
}

#[test]
fn zero_ttl_expires_everything_but_changes_nothing() {
    let (world, engine, classifier) = fixture();
    let tables = seeded_corpus(&world, 3, 10);

    let reference = batch(engine.clone(), classifier.clone()).annotate_corpus(&tables);

    let expiring = batch(engine, classifier).with_cache_config(CacheConfig {
        ttl: Some(Duration::ZERO),
        ..CacheConfig::default()
    });
    let out = expiring.annotate_corpus(&tables);
    assert_eq!(out, reference, "TTL expiry changed an annotation");
    let cold = expiring.cache_stats();
    // A second pass revisits every key: with a zero TTL each revisit
    // finds an aged-out entry and re-searches instead of hitting.
    let rerun = expiring.annotate_corpus(&tables);
    assert_eq!(rerun, reference, "expire-then-rehit diverged");
    let stats = expiring.cache_stats();
    assert_eq!(
        stats.hits, 0,
        "a zero TTL must never serve a (sequential) hit"
    );
    assert_eq!(
        stats.expired, cold.misses,
        "the warm pass must age out every distinct key"
    );
    assert_eq!(
        stats.misses,
        2 * cold.misses,
        "the warm pass re-searches everything"
    );
}

#[test]
fn single_flight_holds_under_eviction_pressure() {
    let (_, engine, _) = fixture();

    // One shard, capacity 1: every publish evicts the previous entry
    // while concurrent workers race on a handful of keys.
    let cache = Arc::new(QueryCache::with_config(CacheConfig {
        shards: 1,
        capacity: Some(1),
        ttl: None,
    }));
    let queries = ["melisse a", "louvre b", "bayona c", "orsay d"];
    let reference: Vec<_> = queries.iter().map(|q| engine.search(q, 5)).collect();

    std::thread::scope(|s| {
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let engine = Arc::clone(&engine);
            let reference = &reference;
            s.spawn(move || {
                for _ in 0..20 {
                    for (i, q) in queries.iter().enumerate() {
                        let got = cache.get_or_search(engine.as_ref(), q, 5);
                        assert_eq!(
                            &*got,
                            &reference[i][..],
                            "eviction pressure corrupted a result"
                        );
                    }
                }
            });
        }
    });
    let stats = cache.stats();
    assert!(stats.evictions > 0, "capacity 1 must evict constantly");
    assert!(
        cache.len() <= 1,
        "capacity 1 exceeded: {} entries",
        cache.len()
    );
    // Single-flight + memo still save traffic even while churning:
    // every lookup either hit, or was one engine call.
    assert_eq!(stats.hits + stats.misses, 8 * 20 * 4);
}

#[test]
fn distinct_addresses_geocode_once_per_corpus() {
    let (world, engine, classifier) = fixture();
    // Spatial tables repeated twice: every address occurs in ≥2 tables.
    let mut tables = seeded_corpus(&world, 4, 10);
    tables.extend(tables.clone());

    let geocoder = Arc::new(SimGeocoder::instant(world.gazetteer().clone()));
    let annotator = BatchAnnotator::new(
        engine,
        classifier,
        AnnotatorConfig {
            use_disambiguation: true,
            ..AnnotatorConfig::default()
        },
    )
    .with_geocoder(geocoder.clone());

    annotator.annotate_corpus(&tables);
    let stats = annotator.geo_stats();
    assert_eq!(
        geocoder.query_count(),
        stats.misses,
        "every geocoder round-trip is a memo miss"
    );
    assert!(
        stats.hits > 0,
        "duplicate addresses across tables must hit the memo"
    );

    // Re-annotating the same corpus issues zero further geocoder calls.
    let q0 = geocoder.query_count();
    annotator.annotate_corpus(&tables);
    assert_eq!(geocoder.query_count(), q0, "warm memo must not re-geocode");
}

#[test]
fn geocode_memo_does_not_change_annotations() {
    let (world, engine, classifier) = fixture();
    let tables = seeded_corpus(&world, 4, 10);
    let geocoder = Arc::new(SimGeocoder::instant(world.gazetteer().clone()));
    let config = AnnotatorConfig {
        use_disambiguation: true,
        ..AnnotatorConfig::default()
    };

    // The single-table Annotator geocodes directly (no memo).
    let direct =
        teda::core::pipeline::Annotator::new(engine.clone(), classifier.clone(), config.clone())
            .with_geocoder(geocoder.clone());
    let memoized = BatchAnnotator::new(engine, classifier, config).with_geocoder(geocoder);

    for table in &tables {
        assert_eq!(
            memoized.annotate_table(table),
            direct.annotate_table(table),
            "the address memo changed an annotation"
        );
    }
}

#[test]
fn service_matches_offline_batch_bit_for_bit() {
    let (world, engine, classifier) = fixture();
    let tables: Vec<Arc<Table>> = seeded_corpus(&world, 9, 12)
        .into_iter()
        .map(Arc::new)
        .collect();

    let reference: Vec<TableAnnotations> = {
        let offline = batch(engine.clone(), classifier.clone());
        tables.iter().map(|t| offline.annotate_table(t)).collect()
    };

    let service = AnnotationService::start(
        batch(engine, classifier),
        ServiceConfig {
            workers: 4,
            queue_depth: tables.len() * 2,
            cache: Some(CacheConfig {
                capacity: Some(64),
                ..CacheConfig::default()
            }),
            ..ServiceConfig::default()
        },
    );
    let handles: Vec<_> = tables
        .iter()
        .map(|t| service.submit(Arc::clone(t)).expect("queue has room"))
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let outcome = handle.wait().expect("request completes");
        assert_eq!(
            outcome.annotations, reference[i],
            "service diverged from offline batch on table {i}"
        );
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, tables.len() as u64);
    assert_eq!(stats.shed(), 0);
    assert!(stats.cache.hits > 0, "duplicate corpus must hit the cache");
}

#[test]
fn service_sheds_when_the_queue_bound_is_hit() {
    let (world, engine, classifier) = fixture();
    let tables: Vec<Arc<Table>> = seeded_corpus(&world, 16, 12)
        .into_iter()
        .map(Arc::new)
        .collect();

    let service = AnnotationService::start(
        batch(engine, classifier),
        ServiceConfig {
            workers: 1,
            queue_depth: 1,
            ..ServiceConfig::default()
        },
    );
    let mut accepted = Vec::new();
    let mut shed = 0u64;
    for table in &tables {
        match service.submit(Arc::clone(table)) {
            Ok(h) => accepted.push(h),
            Err(Rejection::QueueFull) => shed += 1,
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    assert!(
        shed > 0,
        "a 16-table burst into a depth-1 queue with one worker must shed"
    );
    for h in accepted {
        h.wait().expect("accepted work completes");
    }
    let stats = service.shutdown();
    assert_eq!(stats.shed_queue, shed);
    assert_eq!(stats.completed + shed, tables.len() as u64);
    assert!(stats.shed_rate() > 0.0);
}

#[test]
fn mmap_corpus_service_is_bit_identical_and_reports_mapping_counters() {
    let (world, engine, classifier) = fixture();
    let tables: Vec<Arc<Table>> = seeded_corpus(&world, 4, 10)
        .into_iter()
        .map(Arc::new)
        .collect();

    let reference: Vec<TableAnnotations> = {
        let offline = batch(engine, classifier.clone());
        tables.iter().map(|t| offline.annotate_table(t)).collect()
    };

    // Same Web, served off the mmap'd snapshot instead of the heap.
    let dir = std::env::temp_dir().join(format!("teda_svc_mmap_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let web = WebCorpus::build(&world, WebCorpusSpec::tiny(), 42);
    teda::store::CorpusStore::open(&dir)
        .expect("open store")
        .save(&web)
        .expect("seed snapshot");
    let config = ServiceConfig {
        workers: 2,
        queue_depth: tables.len() * 2,
        mmap_corpus: true,
        ..ServiceConfig::default()
    };
    let live = Arc::new(
        teda::service::LiveCorpus::open_for(&config, &dir, teda::store::TierPolicy::default())
            .expect("open mapped live corpus"),
    );
    let mapped_engine = Arc::new(BingSim::instant(live.backend()));
    let service =
        AnnotationService::start_live(batch(mapped_engine, classifier), config, Arc::clone(&live));

    let early = service.stats();
    assert!(early.mapped_bytes > 0, "mapping size must be reported");
    assert_eq!(early.page_hydrations, 0, "open must not hydrate pages");

    let handles: Vec<_> = tables
        .iter()
        .map(|t| service.submit(Arc::clone(t)).expect("queue has room"))
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let outcome = handle.wait().expect("request completes");
        assert_eq!(
            outcome.annotations, reference[i],
            "mmap-served service diverged from the heap path on table {i}"
        );
    }

    let stats = service.shutdown();
    assert_eq!(stats.completed, tables.len() as u64);
    assert!(
        stats.page_hydrations > 0,
        "annotating tables must have hydrated page text per hit"
    );
    assert!(stats.resident_bytes > 0);
    assert!(
        stats.resident_bytes < stats.mapped_bytes,
        "side tables must stay below the mapping size"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
