//! Integration tests for the baselines (§6.2) and the hybrid annotator
//! (§6.4) against the synthetic Web — behavioural contracts that the
//! experiment binaries rely on.

use std::sync::Arc;

use teda::classifier::svm::pegasos::PegasosConfig;
use teda::core::baselines::{tin_annotate, tis_annotate};
use teda::core::catalogue_annotator::catalogue_annotate;
use teda::core::config::AnnotatorConfig;
use teda::core::hybrid::annotate_hybrid;
use teda::core::pipeline::Annotator;
use teda::core::preprocess::preprocess;
use teda::core::trainer::{harvest, train_svm_linear, TrainerConfig};
use teda::corpus::gft::poi_table;
use teda::kb::{Catalogue, CategoryNetwork, EntityType, World, WorldSpec};
use teda::simkit::rng_from_seed;
use teda::websim::{BingSim, WebCorpus, WebCorpusSpec};

struct Fx {
    world: World,
    engine: Arc<BingSim>,
    classifier: teda::core::model::SnippetClassifier,
}

fn fx() -> Fx {
    let world = World::generate(WorldSpec::tiny(), 42);
    let net = CategoryNetwork::build(&world, 42);
    let web = Arc::new(WebCorpus::build(&world, WebCorpusSpec::tiny(), 42));
    let engine = Arc::new(BingSim::instant(web));
    let corpus = harvest(
        &world,
        &net,
        engine.as_ref(),
        &EntityType::TARGETS,
        TrainerConfig {
            max_entities_per_type: Some(12),
            ..TrainerConfig::default()
        },
    );
    let classifier = train_svm_linear(&corpus, PegasosConfig::default());
    Fx {
        world,
        engine,
        classifier,
    }
}

#[test]
fn tin_never_annotates_people_or_films() {
    // Table 1's structural zero: people and film names carry no type word.
    let f = fx();
    let mut rng = rng_from_seed(10);
    let config = AnnotatorConfig::default();
    for etype in [EntityType::Actor, EntityType::Singer, EntityType::Film] {
        let gold = match etype {
            EntityType::Film => teda::corpus::gft::cinema_table(&f.world, etype, 10, "t", &mut rng),
            _ => teda::corpus::gft::people_table(&f.world, etype, 10, "t", &mut rng),
        };
        let pre = preprocess(&gold.table, &config);
        let anns = tin_annotate(&gold.table, &pre.candidates, &config.targets);
        let of_type = anns.iter().filter(|a| a.etype == etype).count();
        assert_eq!(of_type, 0, "{etype}: TIN found a type word in a name");
    }
}

#[test]
fn tis_is_more_permissive_than_tin_on_museums() {
    // Museums: names carry the type word sometimes, snippets more often —
    // TIS recall ≥ TIN recall (Table 1's POI pattern).
    let f = fx();
    let mut rng = rng_from_seed(11);
    let config = AnnotatorConfig::default();
    let gold = poi_table(&f.world, EntityType::Museum, 20, 0, "museums", &mut rng);
    let pre = preprocess(&gold.table, &config);
    let tin = tin_annotate(&gold.table, &pre.candidates, &config.targets);
    let tis = tis_annotate(
        &gold.table,
        &pre.candidates,
        f.engine.as_ref(),
        &config.targets,
        &config,
    );
    let tin_museums = tin.iter().filter(|a| a.etype == EntityType::Museum).count();
    let tis_museums = tis.iter().filter(|a| a.etype == EntityType::Museum).count();
    assert!(
        tis_museums >= tin_museums,
        "TIS ({tis_museums}) should find at least as many museums as TIN ({tin_museums})"
    );
}

#[test]
fn hybrid_with_empty_catalogue_equals_pure_web() {
    let f = fx();
    let mut rng = rng_from_seed(12);
    let gold = poi_table(&f.world, EntityType::Restaurant, 12, 0, "rests", &mut rng);

    let web_annotator = Annotator::new(
        f.engine.clone(),
        f.classifier.clone(),
        AnnotatorConfig::default(),
    );
    let web = web_annotator.annotate_table(&gold.table);

    let hybrid_annotator = Annotator::new(
        f.engine.clone(),
        f.classifier.clone(),
        AnnotatorConfig::default(),
    );
    let (hybrid, stats) = annotate_hybrid(&hybrid_annotator, &gold.table, &Catalogue::default());
    assert_eq!(stats.catalogue_hits, 0);
    assert_eq!(
        web.cells, hybrid.cells,
        "empty catalogue must not change output"
    );
}

#[test]
fn hybrid_annotations_superset_catalogue_hits() {
    // Whatever the catalogue resolves must survive into the hybrid output
    // (post-processing keeps name-column annotations; catalogue hits land
    // in the name column by construction).
    let f = fx();
    let mut rng = rng_from_seed(13);
    let gold = poi_table(&f.world, EntityType::Hotel, 15, 0, "hotels", &mut rng);
    let catalogue = Catalogue::sample(&f.world, 0.5, 42);

    let config = AnnotatorConfig::default();
    let pre = preprocess(&gold.table, &config);
    let catalogue_only =
        catalogue_annotate(&gold.table, &pre.candidates, &catalogue, &config.targets);

    let annotator = Annotator::new(f.engine.clone(), f.classifier.clone(), config);
    let (hybrid, stats) = annotate_hybrid(&annotator, &gold.table, &catalogue);
    assert_eq!(stats.catalogue_hits, catalogue_only.len());
    for hit in &catalogue_only {
        assert!(
            hybrid
                .cells
                .iter()
                .any(|a| a.cell == hit.cell && a.etype == hit.etype),
            "catalogue hit {hit:?} lost in hybrid output"
        );
    }
}

#[test]
fn hybrid_spends_fewer_queries_than_pure_web() {
    let f = fx();
    let mut rng = rng_from_seed(14);
    let gold = poi_table(&f.world, EntityType::Museum, 20, 0, "museums", &mut rng);
    let catalogue = Catalogue::sample(&f.world, 0.5, 42);

    let q0 = f.engine.query_count();
    let web_annotator = Annotator::new(
        f.engine.clone(),
        f.classifier.clone(),
        AnnotatorConfig::default(),
    );
    web_annotator.annotate_table(&gold.table);
    let web_queries = f.engine.query_count() - q0;

    let q1 = f.engine.query_count();
    let hybrid_annotator = Annotator::new(
        f.engine.clone(),
        f.classifier.clone(),
        AnnotatorConfig::default(),
    );
    let (_, stats) = annotate_hybrid(&hybrid_annotator, &gold.table, &catalogue);
    let hybrid_queries = f.engine.query_count() - q1;

    assert!(stats.catalogue_hits > 0, "fixture should have known hotels");
    assert!(
        hybrid_queries < web_queries,
        "hybrid {hybrid_queries} vs web {web_queries}"
    );
    assert_eq!(hybrid_queries as usize, stats.web_cells);
}
