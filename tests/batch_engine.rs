//! Batch annotation engine: the parallel paths must be *bit-identical* to
//! the sequential paths on a seeded corpus, the query cache must account
//! hits/misses exactly, and the memo must never change an annotation.

use std::sync::Arc;

use teda::classifier::svm::pegasos::PegasosConfig;
use teda::core::annotate::{annotate_cells, annotate_cells_par};
use teda::core::config::AnnotatorConfig;
use teda::core::model::SnippetClassifier;
use teda::core::pipeline::{Annotator, BatchAnnotator, TableAnnotations};
use teda::core::trainer::{harvest, train_svm_linear, TrainerConfig};
use teda::core::{CachedEngine, QueryCache};
use teda::corpus::gft::poi_table;
use teda::kb::{CategoryNetwork, EntityType, World, WorldSpec};
use teda::simkit::rng_from_seed;
use teda::tabular::{CellId, Table};
use teda::websim::{BingSim, SearchEngine, WebCorpus, WebCorpusSpec};

fn fixture() -> (World, Arc<BingSim>, SnippetClassifier) {
    let world = World::generate(WorldSpec::tiny(), 42);
    let net = CategoryNetwork::build(&world, 42);
    let web = Arc::new(WebCorpus::build(&world, WebCorpusSpec::tiny(), 42));
    let engine = Arc::new(BingSim::instant(web));
    let corpus = harvest(
        &world,
        &net,
        engine.as_ref(),
        &EntityType::TARGETS,
        TrainerConfig {
            max_entities_per_type: Some(12),
            ..TrainerConfig::default()
        },
    );
    let classifier = train_svm_linear(&corpus, PegasosConfig::default());
    (world, engine, classifier)
}

/// A corpus whose entity sampling cycles the per-type pools, guaranteeing
/// duplicate cell contents across tables.
fn seeded_corpus(world: &World, n_tables: usize, rows: usize) -> Vec<Table> {
    let mut rng = rng_from_seed(7);
    let types = [
        EntityType::Restaurant,
        EntityType::Museum,
        EntityType::Hotel,
    ];
    (0..n_tables)
        .map(|i| {
            poi_table(
                world,
                types[i % types.len()],
                rows,
                (i % 3) as u8,
                &format!("corpus_{i}"),
                &mut rng,
            )
            .table
        })
        .collect()
}

#[test]
fn parallel_corpus_annotation_is_bit_identical_to_sequential() {
    let (world, engine, classifier) = fixture();
    let tables = seeded_corpus(&world, 9, 12);
    let config = AnnotatorConfig::default();

    let sequential = BatchAnnotator::new(engine.clone(), classifier.clone(), config.clone());
    let parallel = BatchAnnotator::new(engine, classifier, config);

    let seq: Vec<TableAnnotations> = sequential.annotate_corpus(&tables);
    let par: Vec<TableAnnotations> = parallel.annotate_corpus_par(&tables);

    assert_eq!(seq, par, "parallel corpus annotation diverged");
    // and at least something was annotated, so the test has teeth
    assert!(
        seq.iter().any(|t| !t.cells.is_empty()),
        "corpus produced no annotations at all"
    );
}

#[test]
fn parallel_cell_annotation_matches_sequential_per_table() {
    let (world, engine, classifier) = fixture();
    let tables = seeded_corpus(&world, 3, 15);
    let config = AnnotatorConfig::default();

    for table in &tables {
        let candidates: Vec<CellId> = table.cell_ids().collect();
        let seq = annotate_cells(
            table,
            &candidates,
            engine.as_ref(),
            &classifier,
            None,
            &config,
        );
        let par = annotate_cells_par(
            table,
            &candidates,
            engine.as_ref(),
            &classifier,
            None,
            &config,
        );
        assert_eq!(seq, par, "cell-level parallel annotation diverged");
    }
}

#[test]
fn batch_annotate_table_par_matches_annotator() {
    let (world, engine, classifier) = fixture();
    let tables = seeded_corpus(&world, 2, 10);
    let config = AnnotatorConfig::default();

    let single = Annotator::new(engine.clone(), classifier.clone(), config.clone());
    let batch = BatchAnnotator::new(engine, classifier, config);

    for table in &tables {
        let reference = single.annotate_table(table);
        assert_eq!(
            batch.annotate_table(table),
            reference,
            "cached seq diverged"
        );
        assert_eq!(
            batch.annotate_table_par(table),
            reference,
            "cached par diverged"
        );
    }
}

#[test]
fn duplicate_cells_hit_the_cache_and_save_queries() {
    let (world, engine, classifier) = fixture();
    // Duplicates both across tables (entity cycling) and across repeats.
    let tables = seeded_corpus(&world, 8, 14);
    let batch = BatchAnnotator::new(engine.clone(), classifier, AnnotatorConfig::default());

    let q0 = engine.query_count();
    batch.annotate_corpus_par(&tables);
    let engine_queries = engine.query_count() - q0;

    let stats = batch.cache_stats();
    assert!(stats.hits > 0, "duplicate contents must produce hits");
    assert_eq!(
        stats.misses, engine_queries,
        "every miss is exactly one engine search (single flight)"
    );
    let total_lookups = stats.hits + stats.misses;
    assert!(
        engine_queries < total_lookups,
        "memo must cut engine traffic: {engine_queries} searches for {total_lookups} lookups"
    );

    // Annotating the same corpus again through the same engine is free.
    let q1 = engine.query_count();
    batch.annotate_corpus(&tables);
    assert_eq!(engine.query_count(), q1, "warm cache must not search");
}

#[test]
fn cached_engine_wrapper_preserves_results() {
    let (world, engine, classifier) = fixture();
    let table = &seeded_corpus(&world, 1, 12)[0];
    let config = AnnotatorConfig::default();

    let cache = Arc::new(QueryCache::default());
    let cached: Arc<dyn SearchEngine + Send + Sync> =
        Arc::new(CachedEngine::new(engine.clone(), Arc::clone(&cache)));

    let direct = Annotator::new(engine, classifier.clone(), config.clone());
    let through_cache = Annotator::new(cached, classifier, config);

    let a = direct.annotate_table(table);
    let b = through_cache.annotate_table(table);
    let c = through_cache.annotate_table(table); // warm
    assert_eq!(a, b, "memoization changed annotations");
    assert_eq!(a, c, "warm-cache annotations diverged");
    assert!(cache.stats().hits > 0, "second pass must hit");
}
