//! Wire front-end integration: the TCP line protocol must deliver
//! annotations bit-identical to the offline batch path, survive
//! untrusted input (quoted CSV, bad frames) without panicking, mirror
//! every admission rejection as a typed wire error, and account each
//! connection's client separately — the loopback smoke gate CI runs on
//! every push.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use teda::classifier::svm::pegasos::PegasosConfig;
use teda::core::config::AnnotatorConfig;
use teda::core::model::SnippetClassifier;
use teda::core::pipeline::BatchAnnotator;
use teda::core::trainer::{harvest, train_svm_linear, TrainerConfig};
use teda::corpus::gft::poi_table;
use teda::corpus::typed_table_to_csv;
use teda::kb::{CategoryNetwork, EntityType, World, WorldSpec};
use teda::service::{AnnotationService, ServiceConfig};
use teda::simkit::rng_from_seed;
use teda::tabular::Table;
use teda::websim::BingSim;
use teda::websim::{WebCorpus, WebCorpusSpec};
use teda::wire::protocol::render_annotations;
use teda::wire::{WireClient, WireError, WireServer};

fn fixture() -> (World, Arc<BingSim>, SnippetClassifier) {
    let world = World::generate(WorldSpec::tiny(), 42);
    let net = CategoryNetwork::build(&world, 42);
    let web = Arc::new(WebCorpus::build(&world, WebCorpusSpec::tiny(), 42));
    let engine = Arc::new(BingSim::instant(web));
    let corpus = harvest(
        &world,
        &net,
        engine.as_ref(),
        &EntityType::TARGETS,
        TrainerConfig {
            max_entities_per_type: Some(12),
            ..TrainerConfig::default()
        },
    );
    let classifier = train_svm_linear(&corpus, PegasosConfig::default());
    (world, engine, classifier)
}

fn seeded_tables(world: &World, n: usize, rows: usize) -> Vec<Table> {
    let mut rng = rng_from_seed(7);
    let types = [
        EntityType::Restaurant,
        EntityType::Museum,
        EntityType::Hotel,
    ];
    (0..n)
        .map(|i| {
            poi_table(
                world,
                types[i % types.len()],
                rows,
                (i % 3) as u8,
                &format!("wire_{i}"),
                &mut rng,
            )
            .table
        })
        .collect()
}

fn serve(
    engine: Arc<BingSim>,
    classifier: SnippetClassifier,
    config: ServiceConfig,
) -> (Arc<AnnotationService>, WireServer) {
    let service = Arc::new(AnnotationService::start(
        BatchAnnotator::new(engine, classifier, AnnotatorConfig::default()),
        config,
    ));
    let server = WireServer::start(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    (service, server)
}

#[test]
fn wire_results_are_bit_identical_to_the_offline_batch_path() {
    let (world, engine, classifier) = fixture();
    let tables = seeded_tables(&world, 6, 10);
    let offline = BatchAnnotator::new(
        engine.clone(),
        classifier.clone(),
        AnnotatorConfig::default(),
    );

    let (_service, server) = serve(
        engine,
        classifier,
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    for (i, table) in tables.iter().enumerate() {
        let reference = render_annotations(&offline.annotate_table(table));
        let payload = client
            .annotate(&format!("wire_{i}"), &typed_table_to_csv(table))
            .expect("annotation succeeds over the wire");
        assert_eq!(
            payload, reference,
            "wire result for table {i} diverged from the offline batch path"
        );
    }
    server.shutdown();
}

#[test]
fn quoted_csv_with_commas_and_newlines_survives_the_wire() {
    let (_world, engine, classifier) = fixture();
    let offline = BatchAnnotator::new(
        engine.clone(),
        classifier.clone(),
        AnnotatorConfig::default(),
    );

    // A POI address with an embedded comma AND an embedded newline: the
    // frame must stay one line, and the parsed table must match what
    // table_from_csv sees offline.
    let csv = "#types,Text,Location\nname,address\n\
               \"Bar, Grill & Co\",\"1104 Wilshire Blvd,\nSanta Monica\"\n";
    let reference_table =
        teda::corpus::table_from_csv(csv, "quoted").expect("the CSV itself is well-formed");
    let reference = render_annotations(&offline.annotate_table(&reference_table));

    let (_service, server) = serve(engine, classifier, ServiceConfig::default());
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let payload = client
        .annotate("quoted", csv)
        .expect("quoted CSV annotates");
    assert_eq!(payload, reference);
    server.shutdown();
}

#[test]
fn typed_wire_errors_mirror_rejections() {
    let (world, engine, classifier) = fixture();
    let table = &seeded_tables(&world, 1, 8)[0];
    let need = (table.n_rows() * table.n_cols()) as u64;

    let (_service, server) = serve(
        engine,
        classifier,
        ServiceConfig {
            workers: 1,
            max_queries_per_request: Some(need - 1),
            query_pool: Some(0),
            ..ServiceConfig::default()
        },
    );
    let mut client = WireClient::connect(server.local_addr()).expect("connect");

    // Oversize: rejected up front with the need/budget pair intact.
    let err = client
        .annotate("big", &typed_table_to_csv(table))
        .expect_err("oversize table must be rejected");
    assert_eq!(
        err,
        WireError::TooLarge {
            need,
            budget: need - 1
        }
    );

    // Dry pool + TRY: sheds instead of parking the connection.
    let small = "#types,Text\nname\nMelisse\n";
    let err = client
        .try_annotate("small", small)
        .expect_err("a dry pool must shed TRY");
    assert_eq!(err, WireError::BudgetExhausted);

    // Malformed CSV: an in-band bad-request, not a dead connection.
    let err = client
        .annotate("ragged", "a,b\nonly-one-field\n")
        .expect_err("ragged CSV is a bad request");
    assert!(matches!(err, WireError::BadRequest(_)), "{err}");

    // The connection still works after every error above.
    let budget = client.budget().expect("BUDGET works after errors");
    assert_eq!(budget, "budget 0");
    server.shutdown();
}

#[test]
fn raw_socket_bad_frames_get_typed_errors_and_the_connection_survives() {
    let (_world, engine, classifier) = fixture();
    let (_service, server) = serve(engine, classifier, ServiceConfig::default());

    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut reply = String::new();

    writer.write_all(b"BOGUS verb\n").unwrap();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.starts_with("ERR bad-request"), "{reply:?}");

    reply.clear();
    writer.write_all(b"ANNOTATE t bad\\escape\n").unwrap();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.starts_with("ERR bad-request"), "{reply:?}");

    // Same connection, now a valid frame: the reader resynchronized.
    reply.clear();
    writer.write_all(b"BUDGET\n").unwrap();
    reader.read_line(&mut reply).unwrap();
    assert_eq!(reply, "OK budget unmetered\n");

    reply.clear();
    writer.write_all(b"QUIT\n").unwrap();
    reader.read_line(&mut reply).unwrap();
    assert_eq!(reply, "OK bye\n");
    server.shutdown();
}

#[test]
fn stats_verb_reports_per_client_counters() {
    let (world, engine, classifier) = fixture();
    let tables = seeded_tables(&world, 2, 6);
    let (_service, server) = serve(engine, classifier, ServiceConfig::default());

    let mut bulk = WireClient::connect(server.local_addr()).expect("connect bulk");
    bulk.set_client("bulk").expect("CLIENT verb");
    let mut ui = WireClient::connect(server.local_addr()).expect("connect ui");
    ui.set_client("ui").expect("CLIENT verb");

    bulk.annotate("t0", &typed_table_to_csv(&tables[0]))
        .unwrap();
    bulk.annotate("t1", &typed_table_to_csv(&tables[1]))
        .unwrap();
    ui.annotate("t0", &typed_table_to_csv(&tables[0])).unwrap();

    let stats = ui.stats().expect("STATS verb");
    let bulk_line = stats
        .lines()
        .find(|l| l.starts_with("client bulk "))
        .expect("bulk client accounted");
    assert!(bulk_line.contains("submitted=2"), "{bulk_line}");
    assert!(bulk_line.contains("completed=2"), "{bulk_line}");
    let ui_line = stats
        .lines()
        .find(|l| l.starts_with("client ui "))
        .expect("ui client accounted");
    assert!(ui_line.contains("submitted=1"), "{ui_line}");
    assert!(stats.lines().next().unwrap().contains("completed=3"));
    server.shutdown();
}

/// Regression: a connection whose `ANNOTATE` is parked on a dry query
/// pool must not deadlock `WireServer::shutdown` — the shutdown kick
/// cancels the parked admission and the client sees `shutting-down`
/// (or a closed socket), never a hang.
#[test]
fn shutdown_unparks_a_connection_waiting_on_a_dry_pool() {
    let (world, engine, classifier) = fixture();
    let table = &seeded_tables(&world, 1, 4)[0];
    let (_service, server) = serve(
        engine,
        classifier,
        ServiceConfig {
            workers: 1,
            query_pool: Some(0), // bone dry, no refill anywhere
            ..ServiceConfig::default()
        },
    );
    let addr = server.local_addr();
    let csv = typed_table_to_csv(table);
    let parked = std::thread::spawn(move || {
        let mut client = WireClient::connect(addr).expect("connect");
        client.set_client("parked").expect("CLIENT");
        client.annotate("t", &csv)
    });
    // Give the connection time to park inside admission control…
    std::thread::sleep(std::time::Duration::from_millis(100));
    assert!(!parked.is_finished(), "the dry pool must park the request");
    // …then shutdown must cancel it and return (a hang here IS the bug).
    server.shutdown();
    let outcome = parked.join().expect("client thread");
    match outcome {
        Err(WireError::ShuttingDown) | Err(WireError::Transport(_)) => {}
        other => panic!("parked request must fail on shutdown, got {other:?}"),
    }
}

/// Satellite (client timeouts): a server that accepts the connection
/// but never answers must error the call out within the configured
/// deadline instead of blocking the caller forever.
#[test]
fn io_timeout_errors_out_against_a_mute_server() {
    use std::time::{Duration, Instant};

    // A "server" that accepts and then plays dead: no reads, no frames.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind mute server");
    let addr = listener.local_addr().unwrap();
    let mute = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        // Hold the socket open well past the client's deadline.
        std::thread::sleep(Duration::from_millis(500));
        drop(stream);
    });

    let mut client =
        WireClient::connect_timeout(&addr, Duration::from_millis(80)).expect("handshake works");
    let t0 = Instant::now();
    let err = client
        .budget()
        .expect_err("a mute server must not block the caller forever");
    let elapsed = t0.elapsed();
    assert!(matches!(err, WireError::Transport(_)), "{err:?}");
    assert!(
        elapsed < Duration::from_millis(400),
        "timeout took {elapsed:?}, deadline was 80ms"
    );
    mute.join().unwrap();

    // The same deadline against a live server is harmless.
    let (_world, engine, classifier) = fixture();
    let (_service, server) = serve(engine, classifier, ServiceConfig::default());
    let mut client = WireClient::connect_timeout(&server.local_addr(), Duration::from_secs(5))
        .expect("connect with deadline");
    assert_eq!(
        client.budget().expect("live server answers"),
        "budget unmetered"
    );
    // And clearing the timeout restores the blocking behaviour.
    client.set_io_timeout(None).expect("clear timeout");
    assert_eq!(client.budget().unwrap(), "budget unmetered");
    server.shutdown();
}

/// The `SNAPSHOT` verb: persists the cache snapshot over the wire when
/// the service has a store, and fails typed — connection intact — when
/// it does not.
#[test]
fn snapshot_verb_persists_and_fails_typed_without_a_store() {
    let (world, engine, classifier) = fixture();
    let table = &seeded_tables(&world, 1, 6)[0];

    // Without a store: typed failure, connection lives on.
    let (_service, server) = serve(engine.clone(), classifier.clone(), ServiceConfig::default());
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    let err = client.snapshot().expect_err("no store dir configured");
    assert!(matches!(err, WireError::Failed(_)), "{err:?}");
    assert_eq!(client.budget().unwrap(), "budget unmetered");
    server.shutdown();

    // With a store: the verb reports how many entries were persisted,
    // and the file lands on disk.
    let dir = std::env::temp_dir().join(format!("teda_wire_snap_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (_service, server) = serve(
        engine,
        classifier,
        ServiceConfig {
            workers: 1,
            store_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        },
    );
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    client
        .annotate("warmup", &typed_table_to_csv(table))
        .expect("annotate to warm the cache");
    let payload = client.snapshot().expect("SNAPSHOT with a store succeeds");
    let entries: usize = payload
        .strip_prefix("snapshot ")
        .expect("payload shape")
        .parse()
        .expect("entry count");
    assert!(entries > 0, "a warmed cache must persist entries");
    assert!(dir.join("cache.snap").exists());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite (auto-reconnect): a client that opted in survives a server
/// restart transparently — but only for read-only verbs. A mutating
/// verb over the dead connection fails typed; a replay could
/// double-apply the submission.
#[test]
fn auto_reconnect_retries_read_only_verbs_across_a_server_restart() {
    let (world, engine, classifier) = fixture();
    let table = &seeded_tables(&world, 1, 4)[0];

    let (_service, server) = serve(engine.clone(), classifier.clone(), ServiceConfig::default());
    let addr = server.local_addr();

    let mut client = WireClient::connect(addr).expect("connect");
    client.set_auto_reconnect(true);
    let mut plain = WireClient::connect(addr).expect("connect control");
    assert_eq!(client.budget().unwrap(), "budget unmetered");

    // Drop the server mid-stream, then bring a fresh one up on the very
    // same address — the restart every long-lived client eventually sees.
    server.shutdown();
    let service = Arc::new(AnnotationService::start(
        BatchAnnotator::new(engine, classifier, AnnotatorConfig::default()),
        ServiceConfig::default(),
    ));
    let server = WireServer::start(Arc::clone(&service), addr).expect("rebind same address");

    // Mutating verb first: the stale connection fails typed, no retry.
    let err = client
        .annotate("t", &typed_table_to_csv(table))
        .expect_err("a mutating verb must not be replayed onto the new server");
    assert!(matches!(err, WireError::Transport(_)), "{err:?}");
    assert_eq!(
        service.stats().submitted,
        0,
        "nothing may have been replayed"
    );

    // Read-only verb: redials once and succeeds against the new server.
    assert_eq!(
        client.budget().expect("BUDGET survives the restart"),
        "budget unmetered"
    );

    // Without the opt-in, the same restart is a hard transport error.
    let err = plain.budget().expect_err("no opt-in, no retry");
    assert!(matches!(err, WireError::Transport(_)), "{err:?}");
    server.shutdown();
}

#[test]
fn concurrent_connections_are_served_independently() {
    let (world, engine, classifier) = fixture();
    let tables = Arc::new(seeded_tables(&world, 4, 8));
    let offline = BatchAnnotator::new(
        engine.clone(),
        classifier.clone(),
        AnnotatorConfig::default(),
    );
    let references: Vec<String> = tables
        .iter()
        .map(|t| render_annotations(&offline.annotate_table(t)))
        .collect();

    let (service, server) = serve(
        engine,
        classifier,
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let addr = server.local_addr();
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let tables = Arc::clone(&tables);
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr).expect("connect");
                client.set_client(&format!("conn{w}")).expect("CLIENT");
                let table = &tables[w];
                client
                    .annotate(&format!("wire_{w}"), &typed_table_to_csv(table))
                    .expect("annotation over a concurrent connection")
            })
        })
        .collect();
    for (w, handle) in workers.into_iter().enumerate() {
        let payload = handle.join().expect("client thread");
        assert_eq!(payload, references[w], "connection {w} diverged");
    }
    let stats = service.stats();
    for w in 0..4 {
        let c = stats.client(&format!("conn{w}")).expect("per-conn client");
        assert_eq!(c.completed, 1);
    }
    server.shutdown();
}
