//! Cluster serving-tier integration: the scatter-gather router must be
//! **bit-identical** to the single-node index at every `(query, k)` —
//! over arbitrary partitions, over real TCP, with replicas dying
//! mid-run — and every degradation must surface typed (never a panic,
//! never a silently shrunken answer). This is the `cargo test --test
//! cluster` gate CI runs on every push.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use teda::cluster::{
    build_shard, partition_corpus, partition_pages, ClusterError, ClusterRouter, RouterConfig,
    ShardBackend, ShardServer,
};
use teda::store::ShardManifest;
use teda::websim::scoring::merge_topk;
use teda::websim::{PageId, SearchBackend, WebCorpus, WebPage};

/// Small closed vocabulary — frequent collisions, the regime where
/// merge/tie-break bugs show up (same as the conformance suite).
const VOCAB: [&str; 12] = [
    "harbor", "museum", "jazz", "espresso", "quartet", "granite", "lantern", "orchard", "velvet",
    "cinnamon", "atlas", "meridian",
];

fn synth_page(rng: &mut StdRng, url: &str) -> WebPage {
    let words = |rng: &mut StdRng, n: usize| -> String {
        (0..n)
            .map(|_| *VOCAB.choose(rng).expect("vocab non-empty"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let n_title = rng.gen_range(1..=3);
    let n_body = rng.gen_range(4..=12);
    WebPage {
        url: url.into(),
        title: words(rng, n_title),
        body: words(rng, n_body),
    }
}

fn synth_corpus(rng: &mut StdRng, n: usize) -> WebCorpus {
    WebCorpus::from_pages(
        (0..n)
            .map(|i| synth_page(rng, &format!("http://web.sim/{i}")))
            .collect(),
    )
}

/// Single terms, multi-term, a query matching nothing, the empty query.
fn probes() -> Vec<String> {
    vec![
        "harbor".into(),
        "espresso quartet".into(),
        "harbor museum jazz granite".into(),
        "zanzibar xylophone".into(),
        String::new(),
    ]
}

const KS: [usize; 4] = [1, 3, 10, 100];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("teda_cluster_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// In-process shard backends for an explicit assignment (no TCP).
fn in_proc_shards(corpus: &WebCorpus, n_shards: u32, assignment: &[u32]) -> Vec<ShardBackend> {
    (0..n_shards)
        .map(|s| {
            let (local, manifest) = build_shard(corpus, s, n_shards, assignment).expect("build");
            ShardBackend::from_parts(Arc::new(local), manifest).expect("valid shard")
        })
        .collect()
}

/// Writes a partition and starts one server per shard (alternating
/// mapped / heap-resident, so both serving modes face the oracle).
fn serve_partition(corpus: &WebCorpus, n_shards: u32, root: &Path) -> Vec<ShardServer> {
    let dirs = partition_corpus(corpus, n_shards, root).expect("partition");
    dirs.iter()
        .enumerate()
        .map(|(i, dir)| ShardServer::start(dir, i % 2 == 0, "127.0.0.1:0").expect("serve shard"))
        .collect()
}

fn topology(servers: &[ShardServer]) -> Vec<Vec<SocketAddr>> {
    servers.iter().map(|s| vec![s.local_addr()]).collect()
}

/// Fast-failing router config for loopback tests.
fn quick_config() -> RouterConfig {
    RouterConfig {
        attempts: 3,
        backoff: Duration::from_millis(5),
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_secs(2),
        pool_per_replica: 2,
    }
}

fn to_bits(hits: &[(PageId, f64)]) -> Vec<(u32, u64)> {
    hits.iter().map(|&(id, s)| (id.0, s.to_bits())).collect()
}

/// The merge invariant, in-process, against the hash partitioner and
/// the shard counts the issue names — plus a partition engineered so
/// one shard is empty and one matches nothing.
#[test]
fn merged_shards_are_bit_identical_to_the_single_node() {
    let mut rng = StdRng::seed_from_u64(11);
    let corpus = synth_corpus(&mut rng, 23);
    for n_shards in [1u32, 2, 3, 7] {
        let assignment = partition_pages(corpus.len(), n_shards);
        let shards = in_proc_shards(&corpus, n_shards, &assignment);
        for q in probes() {
            for k in KS {
                let want = corpus.index().search(&q, k);
                let got = merge_topk(shards.iter().map(|s| s.search(&q, k)), k);
                assert_eq!(
                    to_bits(&got),
                    to_bits(&want),
                    "{n_shards} shards diverged on {q:?} k {k}"
                );
            }
        }
    }

    // All pages on shard 1 of 3: shard 0 and 2 are empty, and every
    // query against them matches nothing. Merge must shrug.
    let empty_heavy = vec![1u32; corpus.len()];
    let shards = in_proc_shards(&corpus, 3, &empty_heavy);
    assert_eq!(shards[0].n_docs(), 0);
    assert_eq!(shards[2].n_docs(), 0);
    for q in probes() {
        let want = corpus.index().search(&q, 10);
        let got = merge_topk(shards.iter().map(|s| s.search(&q, 10)), 10);
        assert_eq!(to_bits(&got), to_bits(&want), "empty shards broke {q:?}");
    }
}

proptest::proptest! {
    /// Property: for random corpora and *arbitrary* random partitions
    /// (not just the stable hash — includes empty and zero-match
    /// shards), the merged per-shard top-k equals the single-node
    /// top-k bit for bit, for N ∈ {1, 2, 3, 7} and random k.
    #[test]
    fn random_partitions_merge_bit_identically(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_docs = rng.gen_range(1..=20usize);
        let corpus = synth_corpus(&mut rng, n_docs);
        for n_shards in [1u32, 2, 3, 7] {
            let assignment: Vec<u32> = (0..corpus.len())
                .map(|_| rng.gen_range(0..n_shards))
                .collect();
            let shards = in_proc_shards(&corpus, n_shards, &assignment);
            let ks = [1usize, rng.gen_range(1..=8), 100];
            for q in probes() {
                for k in ks {
                    let want = corpus.index().search(&q, k);
                    let got = merge_topk(shards.iter().map(|s| s.search(&q, k)), k);
                    assert_eq!(
                        to_bits(&got),
                        to_bits(&want),
                        "seed {seed} n_shards {n_shards} q {q:?} k {k}"
                    );
                }
            }
        }
    }
}

/// The router over real TCP: bit-identical rankings *and* identical
/// assembled results at every probe and depth, for several shard
/// counts, served from on-disk images (mapped and heap).
#[test]
fn router_over_tcp_is_bit_identical_at_every_shard_count() {
    let mut rng = StdRng::seed_from_u64(29);
    let corpus = synth_corpus(&mut rng, 19);
    for n_shards in [1u32, 2, 4] {
        let root = temp_dir(&format!("tcp_{n_shards}"));
        let servers = serve_partition(&corpus, n_shards, &root);
        let router = ClusterRouter::connect(&topology(&servers), quick_config()).expect("connect");
        assert_eq!(router.n_docs(), corpus.len());
        for q in probes() {
            for k in KS {
                let want = corpus.index().search(&q, k);
                let got = router.try_search(&q, k).expect("healthy cluster");
                assert_eq!(
                    to_bits(&got),
                    to_bits(&want),
                    "{n_shards} shards over TCP diverged on {q:?} k {k}"
                );
                assert_eq!(
                    router.search_results(&q, k),
                    corpus.search_results(&q, k),
                    "assembled results diverged on {q:?} k {k}"
                );
            }
        }
        let (fanouts, partials, _) = router.telemetry().snapshot();
        assert!(fanouts > 0, "scatter must be counted");
        assert_eq!(partials, 0, "healthy cluster must not report partials");
        for s in servers {
            s.shutdown();
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Failover: 2 shards × 2 replicas; one replica dies mid-run. Results
/// stay bit-identical to the single node (the group's other replica
/// answers), the retry counter moves, and nothing degrades to partial.
#[test]
fn killing_one_replica_mid_run_keeps_results_bit_identical() {
    let mut rng = StdRng::seed_from_u64(43);
    let corpus = synth_corpus(&mut rng, 17);
    let root = temp_dir("failover");
    let dirs = partition_corpus(&corpus, 2, &root).expect("partition");

    // Two independent replicas per shard — one mapped, one heap, like
    // separate processes over the same shard image.
    let mut replicas: Vec<Vec<ShardServer>> = dirs
        .iter()
        .map(|dir| {
            vec![
                ShardServer::start(dir, true, "127.0.0.1:0").expect("replica a"),
                ShardServer::start(dir, false, "127.0.0.1:0").expect("replica b"),
            ]
        })
        .collect();
    let topo: Vec<Vec<SocketAddr>> = replicas
        .iter()
        .map(|group| group.iter().map(|s| s.local_addr()).collect())
        .collect();
    let router = ClusterRouter::connect(&topo, quick_config()).expect("connect");

    let oracle: Vec<Vec<(u32, u64)>> = probes()
        .iter()
        .map(|q| to_bits(&corpus.index().search(q, 10)))
        .collect();
    for (q, want) in probes().iter().zip(&oracle) {
        assert_eq!(&to_bits(&router.try_search(q, 10).unwrap()), want);
    }

    // Kill shard 0's first replica mid-run.
    replicas[0].remove(0).shutdown();
    for round in 0..3 {
        for (q, want) in probes().iter().zip(&oracle) {
            let got = router
                .try_search(q, 10)
                .expect("one live replica per group suffices");
            assert_eq!(
                &to_bits(&got),
                want,
                "round {round}: results changed after replica death on {q:?}"
            );
        }
    }
    let (_, partials, retries) = router.telemetry().snapshot();
    assert_eq!(partials, 0, "failover within a group is not a partial");
    assert!(
        retries > 0,
        "hitting the dead replica must be visible as retries"
    );

    for group in replicas {
        for s in group {
            s.shutdown();
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// A whole replica group down: the typed path names the dead shard and
/// carries the exact merge over the live shards; the infallible
/// `SearchBackend` path returns those degraded hits and bumps the
/// `partial_results` counter. Nothing panics, nothing lies.
#[test]
fn whole_group_down_is_typed_partial_results() {
    let mut rng = StdRng::seed_from_u64(57);
    let corpus = synth_corpus(&mut rng, 15);
    let root = temp_dir("partial");
    let servers = serve_partition(&corpus, 2, &root);
    let topo = topology(&servers);
    let router = ClusterRouter::connect(
        &topo,
        RouterConfig {
            attempts: 2,
            ..quick_config()
        },
    )
    .expect("connect");

    // Shard 1's only replica dies.
    let mut servers = servers;
    servers.remove(1).shutdown();

    // Shard 0 alone, in-process, is the oracle for the degraded answer.
    let assignment = partition_pages(corpus.len(), 2);
    let shard0 = in_proc_shards(&corpus, 2, &assignment).remove(0);

    let q = "harbor museum";
    match router.try_search(q, 10) {
        Err(ClusterError::PartialResults { dead_shards, hits }) => {
            assert_eq!(dead_shards, vec![1]);
            assert_eq!(
                to_bits(&hits),
                to_bits(&merge_topk([shard0.search(q, 10)], 10)),
                "degraded hits must be the exact merge over the live shard"
            );
            // The trait path serves the same degraded answer.
            assert_eq!(to_bits(&router.search(q, 10)), to_bits(&hits));
        }
        other => panic!("expected PartialResults, got {other:?}"),
    }
    let (_, partials, _) = router.telemetry().snapshot();
    assert!(partials >= 2, "both degraded scatters must be counted");

    for s in servers {
        s.shutdown();
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Misconfiguration fails typed at connect time, before any query can
/// return a wrong ranking: shuffled shard order, truncated topology,
/// and a corrupted manifest on disk.
#[test]
fn misconfiguration_and_corruption_are_typed_errors() {
    let mut rng = StdRng::seed_from_u64(71);
    let corpus = synth_corpus(&mut rng, 12);
    let root = temp_dir("misconfig");
    let servers = serve_partition(&corpus, 2, &root);
    let topo = topology(&servers);

    // Groups swapped: the server answering as shard 1 sits where the
    // router expects shard 0.
    let swapped = vec![topo[1].clone(), topo[0].clone()];
    assert!(matches!(
        ClusterRouter::connect(&swapped, quick_config()),
        Err(ClusterError::Config(_))
    ));

    // Truncated: one group, but the shard identifies as 1-of-2.
    assert!(matches!(
        ClusterRouter::connect(&topo[..1], quick_config()),
        Err(ClusterError::Config(_))
    ));

    // Structurally empty topologies.
    assert!(matches!(
        ClusterRouter::connect(&[], quick_config()),
        Err(ClusterError::Config(_))
    ));
    assert!(matches!(
        ClusterRouter::connect(&[Vec::new()], quick_config()),
        Err(ClusterError::Config(_))
    ));

    for s in servers {
        s.shutdown();
    }

    // Flip one byte in a shard manifest: opening the image is a typed
    // store error, not a differently-ranked shard.
    let dirs = partition_corpus(&corpus, 2, &temp_dir("corrupt")).expect("partition");
    let manifest_path = dirs[0].join("shard.manifest");
    let mut bytes = std::fs::read(&manifest_path).expect("read manifest");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&manifest_path, &bytes).expect("write corrupted");
    assert!(
        matches!(ShardBackend::open(&dirs[0]), Err(ClusterError::Store(_))),
        "corrupt manifest must fail typed"
    );
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// The tentpole wiring: the router is just another [`SearchBackend`],
/// so the whole annotation engine runs over the cluster unchanged —
/// and, because the router is bit-identical to the single node, every
/// annotation is too. Attaching the router's telemetry to the service
/// surfaces the fan-out counters through `ServiceStats`.
#[test]
fn annotator_over_the_cluster_matches_the_monolith() {
    use teda::classifier::svm::pegasos::PegasosConfig;
    use teda::core::config::AnnotatorConfig;
    use teda::core::pipeline::BatchAnnotator;
    use teda::core::trainer::{harvest, train_svm_linear, TrainerConfig};
    use teda::corpus::gft::poi_table;
    use teda::kb::{CategoryNetwork, EntityType, World, WorldSpec};
    use teda::service::{AnnotationService, ServiceConfig};
    use teda::simkit::rng_from_seed;
    use teda::websim::{BingSim, WebCorpusSpec};
    use teda::wire::protocol::render_annotations;

    let world = World::generate(WorldSpec::tiny(), 42);
    let net = CategoryNetwork::build(&world, 42);
    let web = Arc::new(WebCorpus::build(&world, WebCorpusSpec::tiny(), 42));
    let engine = Arc::new(BingSim::instant(Arc::clone(&web) as Arc<dyn SearchBackend>));
    let training = harvest(
        &world,
        &net,
        engine.as_ref(),
        &EntityType::TARGETS,
        TrainerConfig {
            max_entities_per_type: Some(12),
            ..TrainerConfig::default()
        },
    );
    let classifier = train_svm_linear(&training, PegasosConfig::default());
    let monolith = BatchAnnotator::new(
        engine.clone(),
        classifier.clone(),
        AnnotatorConfig::default(),
    );

    // The same corpus, sharded 3 ways and served over TCP.
    let root = temp_dir("annotator");
    let servers = serve_partition(&web, 3, &root);
    let router = ClusterRouter::connect(&topology(&servers), quick_config()).expect("connect");
    let telemetry = router.telemetry();
    let cluster_engine = Arc::new(BingSim::instant(Arc::new(router) as Arc<dyn SearchBackend>));
    let clustered = BatchAnnotator::new(
        cluster_engine.clone(),
        classifier.clone(),
        AnnotatorConfig::default(),
    );

    let mut rng = rng_from_seed(7);
    for (i, ty) in [EntityType::Restaurant, EntityType::Museum]
        .iter()
        .enumerate()
    {
        let table = poi_table(&world, *ty, 8, i as u8, &format!("cluster_{i}"), &mut rng).table;
        assert_eq!(
            render_annotations(&clustered.annotate_table(&table)),
            render_annotations(&monolith.annotate_table(&table)),
            "annotations over the cluster diverged on table {i}"
        );
    }

    // Satellite (f): the service surfaces the router's counters.
    let service = AnnotationService::start(
        BatchAnnotator::new(cluster_engine, classifier, AnnotatorConfig::default()),
        ServiceConfig::default(),
    );
    service.attach_cluster_telemetry(Arc::clone(&telemetry));
    let table = poi_table(&world, EntityType::Hotel, 6, 0, "svc", &mut rng).table;
    service
        .submit_blocking(Arc::new(table))
        .expect("admitted")
        .wait()
        .expect("annotated");
    let stats = service.stats();
    assert!(
        stats.shard_fanouts > 0,
        "service stats must surface the router's fan-outs"
    );
    assert_eq!(stats.partial_results, 0);
    service.shutdown();

    for s in servers {
        s.shutdown();
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// The partitioner is deterministic end to end: partitioning the same
/// corpus twice yields byte-identical manifests and identical shard
/// corpora — a re-deploy never silently reshuffles pages.
#[test]
fn partitioning_is_deterministic_on_disk() {
    let mut rng = StdRng::seed_from_u64(83);
    let corpus = synth_corpus(&mut rng, 21);
    let root_a = temp_dir("det_a");
    let root_b = temp_dir("det_b");
    let dirs_a = partition_corpus(&corpus, 3, &root_a).expect("partition a");
    let dirs_b = partition_corpus(&corpus, 3, &root_b).expect("partition b");
    for (a, b) in dirs_a.iter().zip(&dirs_b) {
        assert_eq!(
            std::fs::read(a.join("shard.manifest")).unwrap(),
            std::fs::read(b.join("shard.manifest")).unwrap(),
            "manifest bytes must be identical across runs"
        );
        let ma = ShardManifest::load(a).unwrap();
        let backend_a = ShardBackend::open(a).unwrap();
        let backend_b = ShardBackend::open(b).unwrap();
        assert_eq!(backend_a.n_docs(), ma.global_ids.len());
        for q in probes() {
            assert_eq!(
                to_bits(&backend_a.search(&q, 100)),
                to_bits(&backend_b.search(&q, 100))
            );
        }
    }
    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}
