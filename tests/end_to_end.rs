//! Cross-crate integration tests: the full pipeline against generated
//! tables with gold standards, including the paper's figure scenarios.

use std::sync::Arc;

use teda::classifier::svm::pegasos::PegasosConfig;
use teda::core::config::AnnotatorConfig;
use teda::core::evaluate::count_type;
use teda::core::model::SnippetClassifier;
use teda::core::pipeline::Annotator;
use teda::core::trainer::{harvest, train_svm_linear, TrainerConfig};
use teda::corpus::gft::{category_column_table, mixed_table, poi_table};
use teda::corpus::gold::GoldTable;
use teda::kb::{CategoryNetwork, EntityType, World, WorldSpec};
use teda::simkit::rng_from_seed;
use teda::websim::{BingSim, WebCorpus, WebCorpusSpec};

fn fixture() -> (World, Arc<BingSim>, SnippetClassifier) {
    let world = World::generate(WorldSpec::tiny(), 42);
    let net = CategoryNetwork::build(&world, 42);
    let web = Arc::new(WebCorpus::build(&world, WebCorpusSpec::tiny(), 42));
    let engine = Arc::new(BingSim::instant(web));
    let corpus = harvest(
        &world,
        &net,
        engine.as_ref(),
        &EntityType::TARGETS,
        TrainerConfig {
            max_entities_per_type: Some(12),
            ..TrainerConfig::default()
        },
    );
    let classifier = train_svm_linear(&corpus, PegasosConfig::default());
    (world, engine, classifier)
}

fn annotate(
    gold: &GoldTable,
    engine: Arc<BingSim>,
    classifier: SnippetClassifier,
) -> Vec<teda::core::annotate::CellAnnotation> {
    let annotator = Annotator::new(engine, classifier, AnnotatorConfig::default());
    annotator.annotate_table(&gold.table).cells
}

#[test]
fn poi_table_annotates_with_good_f() {
    let (world, engine, classifier) = fixture();
    let mut rng = rng_from_seed(1);
    let gold = poi_table(&world, EntityType::Museum, 15, 0, "museums", &mut rng);
    let anns = annotate(&gold, engine, classifier);
    let pairs: Vec<_> = gold.entries.iter().map(|e| (e.cell, e.etype)).collect();
    let prf = count_type(&pairs, &anns, EntityType::Museum).prf();
    assert!(prf.f1 > 0.7, "museum table F = {:.2}", prf.f1);
}

#[test]
fn figure2_mixed_table_separates_types_per_row() {
    // The paper's Figure 2 argument: a column mixing temples, hotels and
    // restaurants must not be annotated wholesale with one type.
    let (world, engine, classifier) = fixture();
    let mut rng = rng_from_seed(2);
    let gold = mixed_table(
        &world,
        &[
            (EntityType::Restaurant, 8),
            (EntityType::Hotel, 8),
            (EntityType::Temple, 6),
        ],
        "fig2",
        &mut rng,
    );
    let anns = annotate(&gold, engine, classifier);

    // Some of both target types found, each on the right rows.
    let pairs: Vec<_> = gold.entries.iter().map(|e| (e.cell, e.etype)).collect();
    for etype in [EntityType::Restaurant, EntityType::Hotel] {
        let counts = count_type(&pairs, &anns, etype);
        assert!(counts.tp > 0, "{etype}: no true positives");
        let prf = counts.prf();
        assert!(
            prf.precision > 0.6,
            "{etype}: precision {:.2}",
            prf.precision
        );
    }
    // Temple rows (not targets) must not be annotated with target types.
    let temple_rows: Vec<usize> = (0..gold.table.n_rows())
        .filter(|&i| {
            gold.gold_type_at(teda::tabular::CellId::new(i, 0))
                .is_none()
        })
        .collect();
    let temple_fps = anns
        .iter()
        .filter(|a| a.cell.col == 0 && temple_rows.contains(&a.cell.row))
        .count();
    assert!(
        temple_fps <= temple_rows.len() / 3,
        "too many temple rows misannotated: {temple_fps}/{}",
        temple_rows.len()
    );
}

#[test]
fn figure8_category_column_cleaned_by_postprocessing() {
    let (world, engine, classifier) = fixture();
    let mut rng = rng_from_seed(3);
    let gold = category_column_table(&world, EntityType::Museum, 12, "fig8", &mut rng);

    // Without post-processing the repeated "Museum" cells may be
    // annotated; with it, every museum annotation must sit in the name
    // column (column 0).
    let annotator = Annotator::new(
        engine,
        classifier,
        AnnotatorConfig {
            use_postprocessing: true,
            ..AnnotatorConfig::default()
        },
    );
    let result = annotator.annotate_table(&gold.table);
    for a in result.of_type(EntityType::Museum) {
        assert_eq!(a.cell.col, 0, "museum annotation escaped to {:?}", a.cell);
    }
}

#[test]
fn eq1_scores_are_majorities() {
    let (world, engine, classifier) = fixture();
    let mut rng = rng_from_seed(4);
    let gold = poi_table(&world, EntityType::Hotel, 10, 0, "hotels", &mut rng);
    let anns = annotate(&gold, engine, classifier);
    for a in &anns {
        assert!(a.votes > 5, "votes {} must exceed k/2", a.votes);
        assert!(a.score > 0.5 && a.score <= 1.0, "Eq. 1 score {}", a.score);
        assert!((a.score - a.votes as f64 / 10.0).abs() < 1e-12);
    }
}

#[test]
fn annotations_only_target_candidate_cells() {
    // Location/Number columns and pattern cells must never be annotated.
    let (world, engine, classifier) = fixture();
    let mut rng = rng_from_seed(5);
    let gold = poi_table(&world, EntityType::Restaurant, 12, 0, "rests", &mut rng);
    let anns = annotate(&gold, engine, classifier);
    for a in &anns {
        let ctype = gold.table.column_type(a.cell.col);
        assert!(
            !ctype.excludes_entity_names(),
            "annotation in excluded column: {:?}",
            a
        );
    }
}
