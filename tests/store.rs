//! Persistence integration: the acceptance gate of the `teda-store`
//! subsystem, run by CI on every push (`cargo test --test store`).
//!
//! What must hold:
//!
//! * `load(save(corpus))` yields **bit-identical** search results for
//!   every query — not approximately equal scores, the same bits.
//! * `compact(base + deltas)` writes a snapshot **byte-identical** to a
//!   full sequential rebuild of the same logical corpus.
//! * Corrupted, truncated, or version-skewed snapshots come back as
//!   typed [`StoreError`]s — never a panic — and `open_or_build` falls
//!   back to a fresh build that heals the store.
//! * A restored [`QueryCache`] serves hits without touching the engine.
//! * A crash between the temp-file write and the atomic rename leaves a
//!   `.tmp` that the next open sweeps, with the previous snapshot
//!   intact.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use teda::kb::{World, WorldSpec};
use teda::store::delta::{decode_segment_full, encode_segment_indexed};
use teda::store::{
    decode_corpus_lazy, load_cache_snapshot, save_cache_snapshot, BaseId, CorpusStore, DeltaOp,
    OpenOutcome, StoreError, TierPolicy, CACHE_FILE, SNAPSHOT_FILE,
};
use teda::websim::{
    InvertedIndex, PageId, SearchEngine, SearchResult, WebCorpus, WebCorpusSpec, WebPage,
};

fn corpus(seed: u64) -> WebCorpus {
    let world = World::generate(WorldSpec::tiny(), seed);
    WebCorpus::build(&world, WebCorpusSpec::tiny(), seed)
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("teda_store_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn page(url: &str, title: &str, body: &str) -> WebPage {
    WebPage {
        url: url.into(),
        title: title.into(),
        body: body.into(),
    }
}

/// Every-query probe: the full vocabulary plus multi-term and unknown
/// queries, compared as exact `(PageId, f64)` sequences — `f64` equality
/// here is bit equality for every value BM25 can produce.
fn assert_bit_identical_everywhere(a: &WebCorpus, b: &WebCorpus) {
    let probes: Vec<String> = a
        .pages()
        .iter()
        .take(40)
        .flat_map(|p| {
            let title = p.title.clone();
            let lead: String = p
                .body
                .split_whitespace()
                .take(3)
                .collect::<Vec<_>>()
                .join(" ");
            [title, lead]
        })
        .chain([
            "melisse restaurant".into(),
            "zanzibar xylophone".into(),
            String::new(),
        ])
        .collect();
    for q in &probes {
        for k in [1, 3, 10] {
            assert_eq!(
                a.index().search(q, k),
                b.index().search(q, k),
                "query {q:?} k {k} diverged after persistence"
            );
        }
    }
}

#[test]
fn load_of_save_is_bit_identical_for_every_query() {
    let dir = temp_store("roundtrip");
    let original = corpus(42);
    let store = CorpusStore::open(&dir).expect("open store");
    store.save(&original).expect("save snapshot");

    let loaded = store.load().expect("load snapshot");
    assert_eq!(loaded.replayed_segments, 0, "pure snapshot load");
    assert_eq!(
        loaded.corpus.index(),
        original.index(),
        "loaded index must be field-identical to the saved one"
    );
    assert_eq!(loaded.corpus.pages(), original.pages());
    assert_bit_identical_everywhere(&loaded.corpus, &original);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_is_byte_identical_to_a_full_rebuild() {
    let dir = temp_store("compact");
    let base = corpus(7);
    let store = CorpusStore::open(&dir).expect("open store");
    store.save(&base).expect("save base");

    // Journal a realistic churn: new pages, a removal reaching both a
    // base page and a freshly added page, then more additions.
    let added_a = vec![
        page(
            "http://new/0",
            "Nouvelle Table",
            "nouvelle table restaurant menu chef",
        ),
        page(
            "http://new/1",
            "Nouvelle Records",
            "nouvelle records jazz label sessions",
        ),
    ];
    let removed = vec![base.pages()[3].url.clone(), "http://new/1".to_string()];
    let added_b = vec![page(
        "http://new/2",
        "Late addition",
        "late addition listing city",
    )];
    store.add_pages(&added_a).expect("journal add");
    store.remove_pages(&removed).expect("journal remove");
    store.add_pages(&added_b).expect("journal add 2");
    assert_eq!(store.delta_segments().unwrap().len(), 3);

    // The logical corpus, derived independently of the store.
    let mut logical = base.pages().to_vec();
    DeltaOp::AddPages(added_a).apply(&mut logical);
    DeltaOp::RemovePages(removed).apply(&mut logical);
    DeltaOp::AddPages(added_b).apply(&mut logical);

    // Replay must already serve the logical corpus…
    let replayed = store.load().expect("load with deltas");
    assert_eq!(replayed.replayed_segments, 3);
    assert_eq!(replayed.corpus.pages(), &logical[..]);

    // …and compaction must write the *byte-identical* snapshot a full
    // from-scratch rebuild of the same logical corpus would write.
    let compacted = store.compact().expect("compact");
    assert!(
        store.delta_segments().unwrap().is_empty(),
        "journal folded in"
    );
    let compact_bytes = std::fs::read(store.snapshot_path()).expect("read compacted snapshot");

    let rebuild_dir = temp_store("compact_ref");
    let rebuild_store = CorpusStore::open(&rebuild_dir).expect("open reference store");
    let rebuilt = WebCorpus::from_pages(logical);
    rebuild_store.save(&rebuilt).expect("save rebuild");
    let rebuild_bytes = std::fs::read(rebuild_store.snapshot_path()).expect("read rebuild");
    assert!(
        compact_bytes == rebuild_bytes,
        "compacted snapshot diverged from the full-rebuild snapshot ({} vs {} bytes)",
        compact_bytes.len(),
        rebuild_bytes.len()
    );
    assert_eq!(compacted.index(), rebuilt.index());
    assert_bit_identical_everywhere(&compacted, &rebuilt);

    // After compaction, the next load is a pure snapshot load again.
    let after = store.load().expect("load after compact");
    assert_eq!(after.replayed_segments, 0);
    assert_eq!(after.corpus.index(), rebuilt.index());
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&rebuild_dir);
}

#[test]
fn corruption_comes_back_typed_and_open_or_build_heals() {
    let dir = temp_store("corrupt");
    let original = corpus(11);
    let store = CorpusStore::open(&dir).expect("open");
    store.save(&original).expect("save");
    let snap = store.snapshot_path();
    let good = std::fs::read(&snap).expect("read snapshot");

    // Truncations at every prefix must fail typed, never panic. (The
    // whole-file sweep is cheap: decoding fails fast.)
    for cut in [0, 4, 12, 19, 20, 40, good.len() / 2, good.len() - 1] {
        std::fs::write(&snap, &good[..cut]).unwrap();
        let err = store.load().expect_err("truncated snapshot must not load");
        assert!(
            !err.is_missing(),
            "cut {cut}: truncation is damage, not absence"
        );
    }

    // A flipped payload bit fails its section checksum.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    std::fs::write(&snap, &flipped).unwrap();
    assert!(
        matches!(
            store.load(),
            Err(StoreError::ChecksumMismatch { .. }) | Err(StoreError::Corrupt(_))
        ),
        "bit rot must be caught by a CRC or a structural check"
    );

    // Wrong format version and wrong magic are their own stories.
    let mut skewed = good.clone();
    skewed[8] = 0xFE;
    std::fs::write(&snap, &skewed).unwrap();
    assert!(matches!(
        store.load(),
        Err(StoreError::UnsupportedVersion { found, .. }) if found != 1
    ));
    let mut alien = good.clone();
    alien[..8].copy_from_slice(b"NOTTEDA!");
    std::fs::write(&snap, &alien).unwrap();
    assert_eq!(store.load().unwrap_err(), StoreError::BadMagic);

    // The service-facing fast path heals the store: typed fallback,
    // fresh build, and the *next* open loads clean.
    let builds = AtomicUsize::new(0);
    let report = CorpusStore::open_or_build(&dir, || {
        builds.fetch_add(1, Ordering::Relaxed);
        corpus(11)
    })
    .expect("open_or_build over a rotten snapshot");
    assert!(
        matches!(report.outcome, OpenOutcome::Rebuilt(StoreError::BadMagic)),
        "the fallback must carry the typed reason, got {:?}",
        report.outcome
    );
    assert_eq!(builds.load(Ordering::Relaxed), 1);
    assert_eq!(report.corpus.index(), original.index());

    let healed = CorpusStore::open_or_build(&dir, || unreachable!("healed store must load"))
        .expect("open_or_build after healing");
    assert!(matches!(
        healed.outcome,
        OpenOutcome::Loaded {
            replayed_segments: 0
        }
    ));
    assert_bit_identical_everywhere(&healed.corpus, &original);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn open_or_build_cold_start_builds_once_then_loads() {
    let dir = temp_store("cold");
    let builds = AtomicUsize::new(0);
    let first = CorpusStore::open_or_build(&dir, || {
        builds.fetch_add(1, Ordering::Relaxed);
        corpus(5)
    })
    .expect("cold open");
    assert!(matches!(first.outcome, OpenOutcome::Built));
    let second = CorpusStore::open_or_build(&dir, || {
        builds.fetch_add(1, Ordering::Relaxed);
        corpus(5)
    })
    .expect("warm open");
    assert!(matches!(second.outcome, OpenOutcome::Loaded { .. }));
    assert_eq!(
        builds.load(Ordering::Relaxed),
        1,
        "one build, then snapshots"
    );
    assert_eq!(second.corpus.index(), first.corpus.index());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_delta_segment_is_typed_and_does_not_poison_the_base() {
    let dir = temp_store("baddelta");
    let base = corpus(3);
    let store = CorpusStore::open(&dir).expect("open");
    store.save(&base).expect("save");
    store
        .add_pages(&[page("http://ok/0", "fine", "fine page body")])
        .expect("good segment");
    std::fs::write(dir.join("delta-000002.seg"), b"rotten segment").unwrap();
    assert!(
        store.load().is_err(),
        "a rotten segment must surface, typed"
    );
    // open_or_build falls back to a rebuild and truncates the journal.
    let report = CorpusStore::open_or_build(&dir, || corpus(3)).expect("heal");
    assert!(matches!(report.outcome, OpenOutcome::Rebuilt(_)));
    assert!(store.delta_segments().unwrap().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A counting engine for the warm-start proof.
struct Counting(AtomicUsize);

impl SearchEngine for Counting {
    fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
        self.0.fetch_add(1, Ordering::Relaxed);
        (0..k)
            .map(|i| SearchResult {
                url: format!("http://c/{query}/{i}"),
                title: format!("t{i}"),
                snippet: format!("{query} snippet {i}"),
            })
            .collect()
    }
}

#[test]
fn restored_query_cache_serves_hits_without_re_searching() {
    use teda::core::cache::QueryCache;

    let dir = temp_store("cache");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(CACHE_FILE);

    // Generation one: populate, persist.
    let cache = QueryCache::new(8);
    let engine = Counting(AtomicUsize::new(0));
    let expected: Vec<Arc<[SearchResult]>> = ["melisse", "louvre", "bayona"]
        .iter()
        .map(|q| cache.get_or_search(&engine, q, 5))
        .collect();
    assert_eq!(engine.0.load(Ordering::Relaxed), 3);
    save_cache_snapshot(&path, &cache.export_entries()).expect("persist cache");

    // Generation two: restore, replay the same queries — zero engine
    // calls, bit-identical results.
    let reborn = QueryCache::new(8);
    let restored = reborn.restore_entries(load_cache_snapshot(&path).expect("load cache"));
    assert_eq!(restored, 3);
    let engine2 = Counting(AtomicUsize::new(0));
    for (q, want) in ["melisse", "louvre", "bayona"].iter().zip(&expected) {
        let got = reborn.get_or_search(&engine2, q, 5);
        assert_eq!(&got, want, "restored result diverged for {q:?}");
    }
    assert_eq!(
        engine2.0.load(Ordering::Relaxed),
        0,
        "a restored cache must answer without re-searching"
    );
    assert_eq!(reborn.stats().hits, 3);

    // Corrupt cache snapshots are typed errors, not panics.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
    assert!(load_cache_snapshot(&path).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corpus update invalidates the co-located cache snapshot: restored
/// entries must never describe a corpus that no longer exists.
#[test]
fn corpus_save_invalidates_the_co_located_cache_snapshot() {
    use teda::core::cache::QueryCache;

    let dir = temp_store("invalidate");
    let store = CorpusStore::open(&dir).expect("open");
    store.save(&corpus(21)).expect("save generation one");

    // A service persisted its memo beside the corpus…
    let cache = QueryCache::new(2);
    let engine = Counting(AtomicUsize::new(0));
    cache.get_or_search(&engine, "melisse", 3);
    save_cache_snapshot(&store.cache_path(), &cache.export_entries()).expect("persist cache");
    assert!(store.cache_path().exists());

    // …then the corpus changed (compaction after deltas): the memo
    // file must be gone, so the next service start is cold, not wrong.
    store
        .add_pages(&[page("http://new/0", "New", "new page body")])
        .expect("journal");
    store.compact_in_place().expect("compact");
    assert!(
        !store.cache_path().exists(),
        "a corpus rewrite must invalidate the co-located cache snapshot"
    );
    assert!(load_cache_snapshot(&store.cache_path())
        .expect_err("no cache file")
        .is_missing());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent `SNAPSHOT` requests (each wire connection runs on its own
/// thread) must not trample each other's temp files: every write uses a
/// unique temp name, so the published snapshot is always one writer's
/// complete image.
#[test]
fn concurrent_cache_snapshots_never_publish_a_torn_file() {
    use teda::core::cache::QueryCache;

    let dir = temp_store("concurrent");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(CACHE_FILE);
    let cache = QueryCache::new(8);
    let engine = Counting(AtomicUsize::new(0));
    for i in 0..32 {
        cache.get_or_search(&engine, &format!("q{i}"), 4);
    }
    let entries = cache.export_entries();
    std::thread::scope(|s| {
        for _ in 0..8 {
            let entries = &entries;
            let path = &path;
            s.spawn(move || {
                for _ in 0..16 {
                    save_cache_snapshot(path, entries).expect("concurrent snapshot write");
                }
            });
        }
    });
    let restored = load_cache_snapshot(&path).expect("snapshot must decode after the race");
    assert_eq!(restored.len(), entries.len());
    // No temp litter left behind either.
    let tmps = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "tmp")
        })
        .count();
    assert_eq!(tmps, 0, "every writer renames its own temp file away");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression (crash window between a compaction's snapshot rename and
/// its journal deletion): segments already folded into the snapshot
/// must NOT be replayed again — they are bound to the old snapshot's
/// bytes, so the next load skips and sweeps them.
#[test]
fn stale_segments_after_an_interrupted_compaction_are_not_double_applied() {
    let dir = temp_store("interrupted");
    let base = corpus(13);
    let store = CorpusStore::open(&dir).expect("open");
    store.save(&base).expect("save base");
    store
        .add_pages(&[page("http://once/0", "Once", "must appear exactly once")])
        .expect("journal add");
    let segment_path = store.delta_segments().unwrap()[0].clone();
    let segment_bytes = std::fs::read(&segment_path).expect("segment bytes");

    let compacted = store.compact().expect("compact folds the journal");
    assert_eq!(compacted.len(), base.len() + 1);

    // Simulate the crash: the folded snapshot is in place, but the old
    // segment "survived" the interrupted deletion pass.
    std::fs::write(&segment_path, &segment_bytes).unwrap();
    let loaded = store.load().expect("load after interrupted compaction");
    assert_eq!(
        loaded.replayed_segments, 0,
        "a segment bound to the pre-compaction snapshot must not replay"
    );
    assert_eq!(
        loaded.corpus.index(),
        compacted.index(),
        "double-applying the folded delta would have changed the index"
    );
    assert_eq!(
        loaded
            .corpus
            .pages()
            .iter()
            .filter(|p| p.url == "http://once/0")
            .count(),
        1,
        "the journaled page must appear exactly once"
    );
    assert!(
        store.delta_segments().unwrap().is_empty(),
        "the stale segment is swept, not kept"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_between_temp_write_and_rename_is_recovered() {
    let dir = temp_store("crash");
    let original = corpus(9);
    let store = CorpusStore::open(&dir).expect("open");
    store.save(&original).expect("save generation one");

    // Simulate the crash: a newer snapshot died after its temp write
    // but before the rename — plus a torn cache temp for good measure.
    let stale_snap = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    let stale_cache = dir.join(format!("{CACHE_FILE}.tmp"));
    std::fs::write(&stale_snap, b"half-written snapshot of generation two").unwrap();
    std::fs::write(&stale_cache, b"half-written cache").unwrap();

    // Re-open: the leftovers are swept, generation one is intact.
    let reopened = CorpusStore::open(&dir).expect("re-open after crash");
    assert!(
        !stale_snap.exists(),
        "stale snapshot tmp must be swept at open"
    );
    assert!(
        !stale_cache.exists(),
        "stale cache tmp must be swept at open"
    );
    let loaded = reopened.load().expect("generation one survives the crash");
    assert_eq!(loaded.corpus.index(), original.index());

    // And the sweep never touches real artifacts.
    assert!(reopened.snapshot_path().exists());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Segment-level incremental indexing: randomized properties. The PR's
// core invariant — segmented reads are bit-identical to a full rebuild
// at every (query, k) under every segment configuration — plus the
// trust boundary: forged or rotted embedded indexes come back as typed
// errors or a silent re-index, never a panic and never wrong results.
// ---------------------------------------------------------------------

/// Deliberately tiny vocabulary: heavy term overlap across pages and
/// segments is the adversarial case for posting-list merges and idf.
const VOCAB: &[&str] = &[
    "harbor", "museum", "jazz", "espresso", "quartet", "granite", "lantern", "orchard", "velvet",
    "cinnamon", "atlas", "meridian",
];

fn synth_words(rng: &mut StdRng, n: usize) -> String {
    (0..n)
        .map(|_| *VOCAB.choose(rng).expect("vocab is non-empty"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn synth_page(rng: &mut StdRng, url: &str) -> WebPage {
    let n_title = rng.gen_range(1..=3);
    let title = synth_words(rng, n_title);
    let n_body = rng.gen_range(4..=12);
    let body = synth_words(rng, n_body);
    page(url, &title, &body)
}

/// Probe set for the synthetic vocabulary: single terms, multi-term
/// queries, an unknown term, and the empty query.
fn vocab_probes() -> Vec<String> {
    let mut probes: Vec<String> = VOCAB.iter().take(6).map(|w| (*w).to_string()).collect();
    probes.push("harbor museum jazz".into());
    probes.push("espresso quartet".into());
    probes.push("zanzibar xylophone".into());
    probes.push(String::new());
    probes
}

fn bits(hits: &[(PageId, f64)]) -> Vec<(u32, u64)> {
    hits.iter().map(|&(id, s)| (id.0, s.to_bits())).collect()
}

/// Both persistence read paths — eager replay (`load`) and overlay open
/// (`load_segmented`) — against a hand-replayed full rebuild, compared
/// as exact `(page id, score bits)` sequences.
fn assert_replay_matches_rebuild(store: &CorpusStore, rebuild: &WebCorpus) {
    let loaded = store.load().expect("load replays the journal");
    assert_eq!(loaded.corpus.pages(), rebuild.pages());
    let seg = store.load_segmented().expect("segmented open");
    assert_eq!(seg.corpus.n_docs(), rebuild.pages().len());
    for q in vocab_probes() {
        for k in [1, 3, 10] {
            let want = bits(&rebuild.index().search(&q, k));
            assert_eq!(
                bits(&loaded.corpus.index().search(&q, k)),
                want,
                "load() diverged on {q:?} k {k}"
            );
            assert_eq!(
                bits(&seg.corpus.search(&q, k)),
                want,
                "load_segmented() diverged on {q:?} k {k}"
            );
        }
    }
}

proptest::proptest! {
    /// Random add/remove op sequences sliced into random journal
    /// segments: both load paths replay to the exact corpus a full
    /// rebuild produces, before and after tier compaction under a
    /// random (tight) policy.
    #[test]
    fn random_journals_replay_bit_identical_on_both_load_paths(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_base = rng.gen_range(4..=12usize);
        let base_pages: Vec<WebPage> = (0..n_base)
            .map(|i| synth_page(&mut rng, &format!("http://base/{i}")))
            .collect();
        let base = WebCorpus::from_pages(base_pages.clone());
        let dir = temp_store(&format!("prop_replay_{seed}"));
        let store = CorpusStore::open(&dir).expect("open store");
        store.save(&base).expect("save base");

        let mut oracle = base_pages;
        let mut pure_adds = true;
        let n_segments = rng.gen_range(1..=5usize);
        for s in 0..n_segments {
            let n_ops = rng.gen_range(1..=3usize);
            let mut ops = Vec::new();
            for o in 0..n_ops {
                if oracle.is_empty() || rng.gen_bool(0.7) {
                    let n = rng.gen_range(1..=4usize);
                    let pages: Vec<WebPage> = (0..n)
                        .map(|i| synth_page(&mut rng, &format!("http://delta/{s}/{o}/{i}")))
                        .collect();
                    ops.push(DeltaOp::AddPages(pages));
                } else {
                    pure_adds = false;
                    let mut urls = Vec::new();
                    for _ in 0..rng.gen_range(1..=2usize) {
                        if let Some(p) = oracle.choose(&mut rng) {
                            urls.push(p.url.clone());
                        }
                    }
                    if rng.gen_bool(0.3) {
                        urls.push("http://nowhere/".into());
                    }
                    ops.push(DeltaOp::RemovePages(urls));
                }
            }
            for op in &ops {
                op.apply(&mut oracle);
            }
            store.append_segment(&ops).expect("append segment");
        }
        let rebuild = WebCorpus::from_pages(oracle.clone());

        let loaded = store.load().expect("load");
        proptest::prop_assert_eq!(loaded.replayed_segments, n_segments);
        // Pure additions (with their journaled indexes) take the
        // O(delta) merge; any removal forces the re-tokenize path.
        proptest::prop_assert_eq!(loaded.incremental, pure_adds);
        let seg = store.load_segmented().expect("segmented open");
        if pure_adds {
            proptest::prop_assert_eq!(seg.reindexed_ops, 0);
        }
        assert_replay_matches_rebuild(&store, &rebuild);

        // A random tight tier policy: the journal shrinks under the
        // bound and replay stays exact through the merged runs.
        let policy = TierPolicy {
            max_segments: rng.gen_range(1..=3usize),
            fanout: rng.gen_range(2..=4usize),
            max_removed: if rng.gen_bool(0.5) { 0 } else { 1 << 20 },
        };
        store.maybe_compact(policy).expect("maybe_compact");
        proptest::prop_assert!(
            store.delta_segments().expect("list").len() <= policy.max_segments
        );
        assert_replay_matches_rebuild(&store, &rebuild);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// One flipped bit or truncation anywhere in an indexed segment
    /// file: the strict decoder returns a typed error (or the rot is
    /// provably inert), and a store open either errors typed or serves
    /// a corpus consistent with the journal — never a panic, never
    /// wrong results.
    #[test]
    fn rotted_segment_bytes_come_back_typed_and_never_panic(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base_pages: Vec<WebPage> = (0..4)
            .map(|i| synth_page(&mut rng, &format!("http://base/{i}")))
            .collect();
        let delta_pages: Vec<WebPage> = (0..3)
            .map(|i| synth_page(&mut rng, &format!("http://delta/{i}")))
            .collect();
        let dir = temp_store(&format!("prop_rot_{seed}"));
        let store = CorpusStore::open(&dir).expect("open store");
        store
            .save(&WebCorpus::from_pages(base_pages.clone()))
            .expect("save base");
        store
            .append_segment(&[DeltaOp::AddPages(delta_pages.clone())])
            .expect("append");
        let seg_path = store.delta_segments().expect("list")[0].clone();
        let good = std::fs::read(&seg_path).expect("read segment");

        let mut bad = good.clone();
        if rng.gen_bool(0.3) {
            let cut = rng.gen_range(0..bad.len());
            bad.truncate(cut);
        } else {
            let pos = rng.gen_range(0..bad.len());
            let mask = rng.gen_range(1u8..=255);
            bad[pos] ^= mask;
        }
        std::fs::write(&seg_path, &bad).expect("write rotted segment");

        // Strict decode: every section is CRC-framed, so damage is a
        // typed error; if it somehow decodes, the payload must be the
        // original one (the rot landed on provably inert bytes).
        if let Ok(payload) = decode_segment_full(&bad) {
            proptest::prop_assert_eq!(
                &payload.ops,
                &vec![DeltaOp::AddPages(delta_pages.clone())]
            );
        }

        let full: Vec<WebPage> = base_pages
            .iter()
            .chain(&delta_pages)
            .cloned()
            .collect();
        match store.load() {
            Err(e) => {
                // Typed, and named precisely — not a catch-all panic
                // turned into a string.
                let msg = e.to_string();
                proptest::prop_assert!(!msg.is_empty());
            }
            Ok(loaded) => {
                // Only two legal corpora exist: base + delta (inert
                // rot) or base alone (the segment was swept as a stale
                // binding).
                let pages = loaded.corpus.pages();
                proptest::prop_assert!(
                    pages == full.as_slice() || pages == base_pages.as_slice(),
                    "rot produced a corpus matching neither the journal nor the base"
                );
            }
        }
        match store.load_segmented() {
            Err(e) => proptest::prop_assert!(!e.to_string().is_empty()),
            Ok(seg) => {
                let n = seg.corpus.n_docs();
                proptest::prop_assert!(n == full.len() || n == base_pages.len());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn forged_embedded_index_degrades_to_a_re_index_never_wrong_results() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let base_pages: Vec<WebPage> = (0..5)
        .map(|i| synth_page(&mut rng, &format!("http://base/{i}")))
        .collect();
    let delta_pages: Vec<WebPage> = (0..3)
        .map(|i| synth_page(&mut rng, &format!("http://delta/{i}")))
        .collect();
    let dir = temp_store("forged_index");
    let store = CorpusStore::open(&dir).expect("open store");
    store
        .save(&WebCorpus::from_pages(base_pages.clone()))
        .expect("save base");
    let base_id = {
        let bytes = std::fs::read(store.snapshot_path()).expect("read snapshot");
        BaseId::of(&bytes)
    };

    // Forgery 1: an index built from a *subset* of the pages it rides
    // with — structurally valid, semantically short one document.
    let short_parts = InvertedIndex::build(&delta_pages[..2]).to_parts();
    let ops = vec![DeltaOp::AddPages(delta_pages.clone())];
    std::fs::write(
        dir.join("delta-000001.seg"),
        encode_segment_indexed(base_id, &ops, &[Some(short_parts)]),
    )
    .expect("write forged segment");

    // The strict decoder refuses the count mismatch with a *typed*
    // error naming the defect — this is the trust boundary, not a
    // panic site.
    match decode_segment_full(&std::fs::read(dir.join("delta-000001.seg")).expect("read forged")) {
        Err(StoreError::Corrupt(msg)) => assert!(
            msg.contains("covers"),
            "unexpected corruption message: {msg}"
        ),
        other => panic!("short partial index must be typed Corrupt, got {other:?}"),
    }

    // The store itself degrades: the tolerant decode keeps the ops,
    // drops the indexes, and replay re-tokenizes — results stay exact.
    let rebuild = WebCorpus::from_pages(base_pages.iter().chain(&delta_pages).cloned().collect());
    let loaded = store.load().expect("load degrades, not errors");
    assert!(
        !loaded.incremental,
        "a forged index must never be merged as-is"
    );
    let seg = store.load_segmented().expect("segmented open degrades too");
    assert_eq!(
        seg.reindexed_ops, 1,
        "the forged add must be re-tokenized, not adopted"
    );
    assert_eq!(seg.prebuilt_ops, 0);
    assert_replay_matches_rebuild(&store, &rebuild);

    // Forgery 2: the document count matches the op, but the doc-length
    // table inside the parts is short — structurally decodable, caught
    // only by `InvertedIndex::from_parts` semantic validation. Both
    // read paths fall back to a re-index instead of adopting it.
    let mut lying_parts = InvertedIndex::build(&delta_pages).to_parts();
    lying_parts.doc_len_bits.pop();
    std::fs::write(
        dir.join("delta-000001.seg"),
        encode_segment_indexed(base_id, &ops, &[Some(lying_parts)]),
    )
    .expect("overwrite with lying segment");
    let payload =
        decode_segment_full(&std::fs::read(dir.join("delta-000001.seg")).expect("read lying"))
            .expect("lying segment is structurally valid");
    assert!(payload.add_indexes[0].is_some());
    let loaded = store.load().expect("load degrades on lying parts");
    assert!(!loaded.incremental);
    let seg = store.load_segmented().expect("segmented open degrades too");
    assert_eq!(seg.reindexed_ops, 1);
    assert_replay_matches_rebuild(&store, &rebuild);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tier_merges_preserve_the_compaction_byte_identity_oracle() {
    let mut rng = StdRng::seed_from_u64(0xfeed);
    let base_pages: Vec<WebPage> = (0..6)
        .map(|i| synth_page(&mut rng, &format!("http://base/{i}")))
        .collect();
    let base = WebCorpus::from_pages(base_pages.clone());

    // Two stores, identical base and identical six-segment journal.
    let dir_a = temp_store("merge_oracle_a");
    let dir_b = temp_store("merge_oracle_b");
    let store_a = CorpusStore::open(&dir_a).expect("open a");
    let store_b = CorpusStore::open(&dir_b).expect("open b");
    store_a.save(&base).expect("save a");
    store_b.save(&base).expect("save b");
    for s in 0..6 {
        let pages: Vec<WebPage> = (0..2)
            .map(|i| synth_page(&mut rng, &format!("http://delta/{s}/{i}")))
            .collect();
        let ops = [DeltaOp::AddPages(pages)];
        store_a.append_segment(&ops).expect("append a");
        store_b.append_segment(&ops).expect("append b");
    }

    // Tier-merge one of them; the other keeps its flat journal.
    let report = store_a
        .maybe_compact(TierPolicy {
            max_segments: 2,
            fanout: 3,
            max_removed: 1 << 20,
        })
        .expect("maybe_compact");
    assert!(
        report.merges > 0,
        "six segments over a bound of two must merge"
    );
    assert!(!report.full_fold);
    assert!(store_a.delta_segments().expect("list a").len() <= 2);

    // The merge oracle: folding the merged runs and folding the flat
    // journal must write byte-identical snapshots.
    store_a.compact_in_place().expect("fold a");
    store_b.compact_in_place().expect("fold b");
    let snap_a = std::fs::read(dir_a.join(SNAPSHOT_FILE)).expect("read a");
    let snap_b = std::fs::read(dir_b.join(SNAPSHOT_FILE)).expect("read b");
    assert_eq!(
        snap_a, snap_b,
        "tier merging changed the bytes a full fold produces"
    );
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn removal_overflow_triggers_a_full_fold_identical_to_a_rebuild() {
    let mut rng = StdRng::seed_from_u64(0xdead);
    let base_pages: Vec<WebPage> = (0..8)
        .map(|i| synth_page(&mut rng, &format!("http://base/{i}")))
        .collect();
    let dir = temp_store("removal_fold");
    let store = CorpusStore::open(&dir).expect("open store");
    store
        .save(&WebCorpus::from_pages(base_pages.clone()))
        .expect("save base");

    let mut oracle = base_pages;
    let added: Vec<WebPage> = (0..3)
        .map(|i| synth_page(&mut rng, &format!("http://delta/{i}")))
        .collect();
    store
        .append_segment(&[DeltaOp::AddPages(added.clone())])
        .expect("append adds");
    oracle.extend(added);
    let doomed: Vec<String> = oracle.iter().take(3).map(|p| p.url.clone()).collect();
    store
        .append_segment(&[DeltaOp::RemovePages(doomed.clone())])
        .expect("append removals");
    oracle.retain(|p| !doomed.contains(&p.url));

    let report = store
        .maybe_compact(TierPolicy {
            max_segments: 8,
            fanout: 4,
            max_removed: 2,
        })
        .expect("maybe_compact");
    assert!(report.full_fold, "3 removals over a bound of 2 must fold");
    assert!(
        store.delta_segments().expect("list").is_empty(),
        "a full fold consumes the whole journal"
    );

    // The folded snapshot is byte-identical to saving a fresh rebuild.
    let rebuild = WebCorpus::from_pages(oracle);
    let dir_fresh = temp_store("removal_fold_fresh");
    let fresh = CorpusStore::open(&dir_fresh).expect("open fresh");
    fresh.save(&rebuild).expect("save rebuild");
    assert_eq!(
        std::fs::read(dir.join(SNAPSHOT_FILE)).expect("read folded"),
        std::fs::read(dir_fresh.join(SNAPSHOT_FILE)).expect("read fresh"),
        "full fold diverged from a rebuild of the logical corpus"
    );
    assert_replay_matches_rebuild(&store, &rebuild);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir_fresh);
}

#[test]
fn crash_leftover_inside_a_merged_run_is_swept_and_overlap_is_typed() {
    let mut rng = StdRng::seed_from_u64(0xcafe);
    let base_pages: Vec<WebPage> = (0..4)
        .map(|i| synth_page(&mut rng, &format!("http://base/{i}")))
        .collect();
    let dir = temp_store("leftover");
    let store = CorpusStore::open(&dir).expect("open store");
    store
        .save(&WebCorpus::from_pages(base_pages.clone()))
        .expect("save base");

    let mut oracle = base_pages;
    for s in 0..4 {
        let pages: Vec<WebPage> = (0..2)
            .map(|i| synth_page(&mut rng, &format!("http://delta/{s}/{i}")))
            .collect();
        oracle.extend(pages.clone());
        store
            .append_segment(&[DeltaOp::AddPages(pages)])
            .expect("append");
    }
    // Keep a victim's bytes, then merge everything into one run.
    let victim = store.delta_segments().expect("list")[2].clone();
    let victim_bytes = std::fs::read(&victim).expect("read victim");
    let report = store
        .maybe_compact(TierPolicy {
            max_segments: 1,
            fanout: 4,
            max_removed: 1 << 20,
        })
        .expect("merge to one run");
    assert!(report.merges > 0);

    // Simulate a crash between the run's rename and the victim delete:
    // the contained single reappears next to the merged run.
    std::fs::write(&victim, &victim_bytes).expect("resurrect victim");
    let rebuild = WebCorpus::from_pages(oracle);
    assert_replay_matches_rebuild(&store, &rebuild);
    assert!(
        !victim.exists(),
        "a contained leftover must be swept during resolution"
    );

    // A *partially* overlapping run has no legitimate producer: typed
    // corruption, not a guess.
    let run = store.delta_segments().expect("list")[0].clone();
    let run_bytes = std::fs::read(&run).expect("read run");
    std::fs::write(dir.join("delta-000003-000009.seg"), &run_bytes).expect("write overlapping run");
    match store.load() {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains("overlap"), "unexpected message: {msg}")
        }
        other => panic!("partial overlap must be typed Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A forged section length that points past the end of the container
/// must come back as typed [`StoreError::Corrupt`] from *both* decode
/// paths — the eager loader and the deferred decoder the mmap'd serving
/// path uses — never as a panic or an attempt to slice past the buffer.
///
/// The first section header starts right after the 20-byte file header:
/// tag at 20..24, length at 24..32. Everything here rewrites only that
/// length field, so the CRC never gets a chance to excuse the damage —
/// the structural pass has to catch it first.
#[test]
fn forged_section_length_is_typed_corrupt_on_both_decode_paths() {
    let dir = temp_store("forged_len");
    let store = CorpusStore::open(&dir).expect("open");
    store.save(&corpus(13)).expect("save");
    let snap = store.snapshot_path();
    let good = std::fs::read(&snap).expect("read snapshot");

    // A terabyte-scale lie, the all-ones pattern, and the subtle case:
    // a length that fits in the file *from zero* but not from where the
    // payload actually starts.
    for forged in [1u64 << 40, u64::MAX, good.len() as u64] {
        let mut bad = good.clone();
        bad[24..32].copy_from_slice(&forged.to_le_bytes());

        std::fs::write(&snap, &bad).unwrap();
        match store.load() {
            Err(StoreError::Corrupt(msg)) => {
                assert!(msg.contains("points past"), "eager: unexpected {msg:?}")
            }
            other => panic!("eager: forged len {forged} must be Corrupt, got {other:?}"),
        }

        let buf: std::sync::Arc<[u8]> = bad.into();
        match decode_corpus_lazy(buf) {
            Err(StoreError::Corrupt(msg)) => {
                assert!(msg.contains("points past"), "lazy: unexpected {msg:?}")
            }
            other => {
                let outcome = other.map(|_| "a view");
                panic!("lazy: forged len {forged} must be Corrupt, got {outcome:?}")
            }
        }
    }

    // Intact bytes still load after all that vandalism.
    std::fs::write(&snap, &good).unwrap();
    store.load().expect("pristine snapshot loads");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncation *inside* a section — mid-payload and mid-section-header —
/// must fail typed on both decode paths. The older corruption test
/// sweeps arbitrary prefixes; this one aims at the structurally
/// interesting cuts by parsing the real first-section length out of the
/// file it just wrote.
#[test]
fn truncation_mid_section_is_typed_on_both_decode_paths() {
    let dir = temp_store("trunc_mid");
    let store = CorpusStore::open(&dir).expect("open");
    store.save(&corpus(13)).expect("save");
    let snap = store.snapshot_path();
    let good = std::fs::read(&snap).expect("read snapshot");

    let first_len = u64::from_le_bytes(good[24..32].try_into().unwrap()) as usize;
    let first_payload = 36; // 20-byte header + tag(4) + len(8) + crc(4)
    assert!(
        first_payload + first_len < good.len(),
        "fixture must hold more than one section"
    );

    let cuts = [
        22,                            // inside the first tag field
        27,                            // inside the first length field
        34,                            // inside the first crc field
        first_payload + 1,             // one byte into the payload
        first_payload + first_len / 2, // middle of the payload
        first_payload + first_len - 1, // one byte short of the payload
        first_payload + first_len + 2, // inside the *second* section header
    ];
    for cut in cuts {
        let bad = &good[..cut];

        std::fs::write(&snap, bad).unwrap();
        let err = store.load().expect_err("truncated snapshot must not load");
        assert!(
            matches!(err, StoreError::Truncated { .. } | StoreError::Corrupt(_)),
            "eager: cut {cut} must be Truncated or Corrupt, got {err:?}"
        );

        let buf: std::sync::Arc<[u8]> = bad.to_vec().into();
        let err = decode_corpus_lazy(buf).expect_err("truncated snapshot must not open lazily");
        assert!(
            matches!(err, StoreError::Truncated { .. } | StoreError::Corrupt(_)),
            "lazy: cut {cut} must be Truncated or Corrupt, got {err:?}"
        );
    }

    std::fs::write(&snap, &good).unwrap();
    store.load().expect("pristine snapshot loads");
    let _ = std::fs::remove_dir_all(&dir);
}
