//! Determinism: the whole stack — world, Web, harvest, training,
//! annotation — must be byte-identical across runs with the same seed.

use std::sync::Arc;

use teda::classifier::svm::pegasos::PegasosConfig;
use teda::core::config::AnnotatorConfig;
use teda::core::pipeline::Annotator;
use teda::core::trainer::{harvest, train_svm_linear, TrainerConfig};
use teda::corpus::datasets::gft_benchmark;
use teda::kb::{CategoryNetwork, EntityType, World, WorldSpec};
use teda::websim::{BingSim, WebCorpus, WebCorpusSpec};

fn run_pipeline(seed: u64) -> Vec<(usize, usize, String, f64)> {
    let world = World::generate(WorldSpec::tiny(), seed);
    let net = CategoryNetwork::build(&world, seed);
    let web = Arc::new(WebCorpus::build(&world, WebCorpusSpec::tiny(), seed));
    let engine = Arc::new(BingSim::instant(web));
    let corpus = harvest(
        &world,
        &net,
        engine.as_ref(),
        &EntityType::TARGETS,
        TrainerConfig {
            max_entities_per_type: Some(14),
            seed,
            ..TrainerConfig::default()
        },
    );
    let classifier = train_svm_linear(&corpus, PegasosConfig::default());
    let annotator = Annotator::new(engine, classifier, AnnotatorConfig::default());

    let benchmark = gft_benchmark(&world, seed);
    let mut out = Vec::new();
    for gold in benchmark.tables.iter().take(12) {
        for a in annotator.annotate_table(&gold.table).cells {
            out.push((a.cell.row, a.cell.col, a.etype.to_string(), a.score));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Cross-process determinism. In-process repeats share one SipHash key,
// so `HashMap` iteration order repeats even where it shouldn't be
// relied on; a freshly spawned process gets a fresh key. Running the
// pipeline in two separate child processes and comparing bytes is the
// strongest order-dependence check available without patching the
// hasher.
// ---------------------------------------------------------------------

const CHILD_ENV: &str = "TEDA_DETERMINISM_CHILD_SEED";
const FP_BEGIN: &str = "BEGIN-TEDA-FINGERPRINT";
const FP_END: &str = "END-TEDA-FINGERPRINT";

fn fingerprint(rows: &[(usize, usize, String, f64)]) -> String {
    let mut out = String::new();
    for (r, c, t, s) in rows {
        // Scores by bit pattern: byte-identical must mean bit-identical,
        // not display-rounding-identical.
        out.push_str(&format!("{r},{c},{t},{:016x}\n", s.to_bits()));
    }
    out
}

/// Child half of the harness: inert in a normal test run, emits the
/// pipeline fingerprint when re-executed with [`CHILD_ENV`] set.
#[test]
fn child_emits_pipeline_fingerprint() {
    let Ok(seed) = std::env::var(CHILD_ENV) else {
        return;
    };
    let seed: u64 = seed.parse().expect("child seed env var");
    println!("{FP_BEGIN}\n{}{FP_END}", fingerprint(&run_pipeline(seed)));
}

fn spawn_pipeline_process(seed: u64) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args([
            "--exact",
            "child_emits_pipeline_fingerprint",
            "--nocapture",
            "--test-threads=1",
        ])
        .env(CHILD_ENV, seed.to_string())
        .output()
        .expect("spawn child test process");
    assert!(
        out.status.success(),
        "child run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("child stdout utf-8");
    let begin = stdout.find(FP_BEGIN).expect("begin marker") + FP_BEGIN.len() + 1;
    let end = stdout.find(FP_END).expect("end marker");
    stdout[begin..end].to_string()
}

#[test]
fn separately_spawned_processes_produce_identical_bytes() {
    let a = spawn_pipeline_process(42);
    let b = spawn_pipeline_process(42);
    assert!(!a.is_empty(), "child produced no annotations");
    assert_eq!(a, b, "two processes with fresh hasher keys diverged");
    assert_eq!(
        a,
        fingerprint(&run_pipeline(42)),
        "child output diverged from the in-process pipeline"
    );
}

#[test]
fn same_seed_same_annotations() {
    let a = run_pipeline(42);
    let b = run_pipeline(42);
    assert_eq!(a, b, "pipeline must be deterministic per seed");
    assert!(!a.is_empty(), "sanity: pipeline produced annotations");
}

#[test]
fn different_seed_different_world() {
    let a = run_pipeline(42);
    let b = run_pipeline(43);
    assert_ne!(a, b, "different seeds must differ somewhere");
}
