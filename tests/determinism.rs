//! Determinism: the whole stack — world, Web, harvest, training,
//! annotation — must be byte-identical across runs with the same seed.

use std::sync::Arc;

use teda::classifier::svm::pegasos::PegasosConfig;
use teda::core::config::AnnotatorConfig;
use teda::core::pipeline::Annotator;
use teda::core::trainer::{harvest, train_svm_linear, TrainerConfig};
use teda::corpus::datasets::gft_benchmark;
use teda::kb::{CategoryNetwork, EntityType, World, WorldSpec};
use teda::websim::{BingSim, WebCorpus, WebCorpusSpec};

fn run_pipeline(seed: u64) -> Vec<(usize, usize, String, f64)> {
    let world = World::generate(WorldSpec::tiny(), seed);
    let net = CategoryNetwork::build(&world, seed);
    let web = Arc::new(WebCorpus::build(&world, WebCorpusSpec::tiny(), seed));
    let engine = Arc::new(BingSim::instant(web));
    let corpus = harvest(
        &world,
        &net,
        engine.as_ref(),
        &EntityType::TARGETS,
        TrainerConfig {
            max_entities_per_type: Some(14),
            seed,
            ..TrainerConfig::default()
        },
    );
    let classifier = train_svm_linear(&corpus, PegasosConfig::default());
    let annotator = Annotator::new(engine, classifier, AnnotatorConfig::default());

    let benchmark = gft_benchmark(&world, seed);
    let mut out = Vec::new();
    for gold in benchmark.tables.iter().take(12) {
        for a in annotator.annotate_table(&gold.table).cells {
            out.push((a.cell.row, a.cell.col, a.etype.to_string(), a.score));
        }
    }
    out
}

#[test]
fn same_seed_same_annotations() {
    let a = run_pipeline(42);
    let b = run_pipeline(42);
    assert_eq!(a, b, "pipeline must be deterministic per seed");
    assert!(!a.is_empty(), "sanity: pipeline produced annotations");
}

#[test]
fn different_seed_different_world() {
    let a = run_pipeline(42);
    let b = run_pipeline(43);
    assert_ne!(a, b, "different seeds must differ somewhere");
}
