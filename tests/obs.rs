//! Observability integration: histogram quantile estimates must bracket
//! exact sorted values, merges must be order-independent, concurrent
//! recording must lose nothing, and the wire exposition verbs
//! (`METRICS`, `STATS JSON`, `TRACE <id>`/`TRACE-DUMP <id>`) must round
//! telemetry through a loopback server — the `cargo test --test obs`
//! gate CI runs on every push.

use std::sync::Arc;

use proptest::prelude::*;

use teda::obs::{bucket_bounds, bucket_of, HistSnapshot, Histogram, BUCKETS};

// ---------------------------------------------------------------------
// Histogram properties
// ---------------------------------------------------------------------

/// Builds a snapshot holding exactly `values`.
fn snapshot_of(values: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// For any value set and any quantile, the exact nearest-rank value
    /// of the sorted set lies within the bucket bounds the histogram
    /// reports — the estimate is never off by more than its own bucket.
    #[test]
    fn quantile_estimates_bracket_exact_sorts(
        values in proptest::collection::vec(0u64..=u64::MAX, 1..200),
        q in 0.0f64..1.0,
    ) {
        let mut values = values;
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.count(), values.len() as u64);
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let (lo, hi) = snap.quantile_bounds(q);
        prop_assert!(lo <= exact && exact <= hi,
            "q={}: exact {} outside [{}, {}]", q, exact, lo, hi);
        // The reported point estimate is the bucket upper bound, and
        // max_bound dominates every recorded value's bucket.
        prop_assert_eq!(snap.quantile(q), hi);
        prop_assert!(snap.max_bound() >= exact);
    }

    /// Quantile estimates are monotone in `q` — p50 ≤ p99 ≤ max, for
    /// any data.
    #[test]
    fn quantiles_are_monotone(
        values in proptest::collection::vec(0u64..=u64::MAX, 1..100),
    ) {
        let snap = snapshot_of(&values);
        let mut prev = 0u64;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let cur = snap.quantile(q);
            prop_assert!(cur >= prev, "quantile({}) = {} < {}", q, cur, prev);
            prev = cur;
        }
        prop_assert!(snap.max_bound() >= prev);
    }

    /// Merging is associative and commutative: shard snapshots fold to
    /// one result in any order.
    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..=u64::MAX, 0..50),
        b in proptest::collection::vec(0u64..=u64::MAX, 0..50),
        c in proptest::collection::vec(0u64..=u64::MAX, 0..50),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba, "merge must commute");
        let mut ab_c = ab;
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc, "merge must associate");
    }
}

#[test]
fn overflow_values_saturate_into_the_top_bucket() {
    // Everything at or above 2^62 µs shares the saturating top bucket.
    for v in [1u64 << 62, (1 << 62) + 1, u64::MAX] {
        assert_eq!(bucket_of(v), BUCKETS - 1, "bucket of {v}");
    }
    let snap = snapshot_of(&[u64::MAX, 1 << 62, 7]);
    assert_eq!(snap.buckets[BUCKETS - 1], 2);
    assert_eq!(snap.max_bound(), u64::MAX);
    // Merging saturates rather than wrapping, so a poisoned-counter
    // overflow can never report a small count.
    let mut a = HistSnapshot::default();
    a.buckets[0] = u64::MAX;
    let b = snapshot_of(&[0, 0, 0]);
    a.merge(&b);
    assert_eq!(a.buckets[0], u64::MAX);
    assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
}

#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let h = Arc::new(Histogram::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic per-thread spread across buckets.
                    h.record((i.wrapping_mul(2 * t as u64 + 1)) % 1_000_000);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(
        snap.count(),
        (THREADS as u64) * PER_THREAD,
        "relaxed increments must still account every record"
    );
}

// ---------------------------------------------------------------------
// Wire exposition (loopback)
// ---------------------------------------------------------------------

mod wire {
    use std::sync::Arc;

    use teda::classifier::svm::pegasos::PegasosConfig;
    use teda::core::config::AnnotatorConfig;
    use teda::core::pipeline::BatchAnnotator;
    use teda::core::trainer::{harvest, train_svm_linear, TrainerConfig};
    use teda::corpus::{gft::poi_table, typed_table_to_csv};
    use teda::kb::{CategoryNetwork, EntityType, World, WorldSpec};
    use teda::service::{AnnotationService, ServiceConfig};
    use teda::simkit::rng_from_seed;
    use teda::websim::{BingSim, WebCorpus, WebCorpusSpec};
    use teda::wire::{WireClient, WireError, WireServer};

    fn annotation_node() -> (Arc<AnnotationService>, WireServer) {
        let world = World::generate(WorldSpec::tiny(), 42);
        let net = CategoryNetwork::build(&world, 42);
        let web = Arc::new(WebCorpus::build(&world, WebCorpusSpec::tiny(), 42));
        let engine = Arc::new(BingSim::instant(web));
        let corpus = harvest(
            &world,
            &net,
            engine.as_ref(),
            &EntityType::TARGETS,
            TrainerConfig {
                max_entities_per_type: Some(8),
                ..TrainerConfig::default()
            },
        );
        let classifier = train_svm_linear(&corpus, PegasosConfig::default());
        let service = Arc::new(AnnotationService::start(
            BatchAnnotator::new(engine, classifier, AnnotatorConfig::default()),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        ));
        let server = WireServer::start(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        (service, server)
    }

    fn one_table_csv() -> String {
        let world = World::generate(WorldSpec::tiny(), 42);
        let mut rng = rng_from_seed(11);
        let t = poi_table(&world, EntityType::Restaurant, 6, 0, "obs_t", &mut rng).table;
        typed_table_to_csv(&t)
    }

    #[test]
    fn metrics_and_stats_json_expose_stage_histograms() {
        let (_service, server) = annotation_node();
        let mut client = WireClient::connect(server.local_addr()).expect("connect");
        client
            .annotate("obs_t", &one_table_csv())
            .expect("annotate over the wire");

        let metrics = client.metrics().expect("METRICS");
        assert!(
            metrics.contains("# TYPE teda_stage_us histogram"),
            "{metrics}"
        );
        for stage in ["request", "queue_wait", "annotate"] {
            assert!(
                metrics.contains(&format!(
                    "teda_stage_us_count{{node=\"service\",stage=\"{stage}\"}} 1"
                )),
                "missing {stage} count in:\n{metrics}"
            );
        }
        // Stable ordering: two scrapes of unchanged state are identical.
        assert_eq!(metrics, client.metrics().expect("METRICS again"));

        let json = client.stats_json().expect("STATS JSON");
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"completed\":1",
            "\"stage\":\"request\"",
            "\"stage\":\"annotate\"",
            "\"latency\":{",
            "\"clients\":[",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        server.shutdown();
    }

    #[test]
    fn traced_annotate_matches_plain_and_dumps_a_span_tree() {
        let (_service, server) = annotation_node();
        let csv = one_table_csv();
        let mut client = WireClient::connect(server.local_addr()).expect("connect");
        let plain = client.annotate("obs_t", &csv).expect("plain annotate");
        let traced = client
            .annotate_traced(0xabcd, "obs_t", &csv)
            .expect("traced annotate");
        assert_eq!(plain, traced, "tracing must not change a result bit");

        let trace = client.trace_dump(0xabcd).expect("TRACE-DUMP");
        assert_eq!(trace.id, 0xabcd);
        assert_eq!(trace.node, "service");
        assert_eq!(trace.spans[0].name, "request");
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"queue_wait"), "{names:?}");
        assert!(names.contains(&"annotate"), "{names:?}");
        // Every child's window sits inside the root's.
        let root_end = trace.spans[0].end_us;
        for s in &trace.spans[1..] {
            assert!(s.start_us <= s.end_us && s.end_us <= root_end, "{s:?}");
        }

        // Unknown ids are typed errors, not empty payloads.
        assert!(matches!(
            client.trace_dump(0xdead_beef),
            Err(WireError::BadRequest(_))
        ));
        server.shutdown();
    }

    #[test]
    fn traced_search_records_on_a_search_only_node() {
        let world = World::generate(WorldSpec::tiny(), 42);
        let web = Arc::new(WebCorpus::build(&world, WebCorpusSpec::tiny(), 42));
        let server =
            WireServer::start_search_only(web, None, "127.0.0.1:0").expect("bind search node");
        let mut client = WireClient::connect(server.local_addr()).expect("connect");

        let plain = client.search("restaurant", 5).expect("plain search");
        let traced = client
            .search_traced(0x51, "restaurant", 5)
            .expect("traced search");
        assert_eq!(plain.len(), traced.len());
        for ((id, s), (tid, ts)) in plain.iter().zip(&traced) {
            assert_eq!(id, tid);
            assert_eq!(
                s.to_bits(),
                ts.to_bits(),
                "tracing must not move a score bit"
            );
        }

        let trace = client.trace_dump(0x51).expect("TRACE-DUMP");
        assert_eq!(trace.id, 0x51);
        assert!(
            trace.spans.iter().any(|s| s.name == "search"),
            "{:?}",
            trace.spans
        );
        // The search-only node still answers METRICS from its own registry.
        let metrics = client.metrics().expect("METRICS");
        assert!(
            metrics.contains("teda_traces_completed{node=\"node\"} 1"),
            "{metrics}"
        );
        server.shutdown();
    }
}
