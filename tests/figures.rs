//! The paper's illustrative figures as executable scenarios.

use std::sync::Arc;

use teda::classifier::svm::pegasos::PegasosConfig;
use teda::core::config::AnnotatorConfig;
use teda::core::pipeline::Annotator;
use teda::core::trainer::{harvest, train_svm_linear, TrainerConfig};
use teda::corpus::gft::limited_context_table;
use teda::kb::{CategoryNetwork, EntityType, World, WorldSpec};
use teda::simkit::rng_from_seed;
use teda::websim::{BingSim, WebCorpus, WebCorpusSpec};

fn annotator_over(world: &World, seed: u64) -> (Arc<BingSim>, Annotator) {
    let net = CategoryNetwork::build(world, seed);
    let web = Arc::new(WebCorpus::build(world, WebCorpusSpec::tiny(), seed));
    let engine = Arc::new(BingSim::instant(web));
    let corpus = harvest(
        world,
        &net,
        engine.as_ref(),
        &EntityType::TARGETS,
        TrainerConfig {
            max_entities_per_type: Some(20),
            seed,
            ..TrainerConfig::default()
        },
    );
    let classifier = train_svm_linear(&corpus, PegasosConfig::default());
    let annotator = Annotator::new(engine.clone(), classifier, AnnotatorConfig::default());
    (engine, annotator)
}

/// Figure 4: "the table … does not provide any clue to indicate that its
/// first column contains references to restaurants. The headers of the
/// columns are ambiguous" — the annotator must succeed *without* headers
/// or context, purely from the Web evidence.
#[test]
fn figure4_limited_context_is_enough() {
    let world = World::generate(WorldSpec::tiny(), 42);
    let (_, annotator) = annotator_over(&world, 42);
    let mut rng = rng_from_seed(44);
    let gold = limited_context_table(&world, EntityType::Restaurant, 12, "fig4", &mut rng);
    assert_eq!(gold.table.headers().unwrap(), &["Name", "Address"]);

    let result = annotator.annotate_table(&gold.table);
    let found = result
        .cells
        .iter()
        .filter(|a| a.etype == EntityType::Restaurant)
        .count();
    assert!(
        found >= gold.entries.len() / 2,
        "only {found}/{} restaurants found in the context-free table",
        gold.entries.len()
    );
    // and all of them in the name column
    assert!(result.cells.iter().all(|a| a.cell.col == 0));
}

/// Figure 1's claim: "The cells in a single column have an homogeneous
/// content" — verified on the generated benchmark: gold name cells of a
/// plain table all sit in one column.
#[test]
fn figure1_column_homogeneity_in_generated_tables() {
    let world = World::generate(WorldSpec::tiny(), 42);
    let benchmark = teda::corpus::datasets::gft_benchmark(&world, 42);
    for gold in &benchmark.tables {
        if gold.table.name().contains("mixed") {
            continue; // the deliberate Figure 2 exception
        }
        let cols: std::collections::HashSet<usize> =
            gold.entries.iter().map(|e| e.cell.col).collect();
        assert!(
            cols.len() <= 1,
            "{}: gold names span columns {cols:?}",
            gold.table.name()
        );
    }
}

/// Figure 5's pipeline contract: queried + skipped = total cells, and the
/// search engine is consulted exactly once per candidate cell.
#[test]
fn figure5_pipeline_accounting() {
    let world = World::generate(WorldSpec::tiny(), 42);
    let (engine, annotator) = annotator_over(&world, 42);
    let mut rng = rng_from_seed(55);
    let gold = teda::corpus::gft::poi_table(&world, EntityType::School, 9, 0, "t", &mut rng);

    let q0 = engine.query_count();
    let result = annotator.annotate_table(&gold.table);
    let queries = (engine.query_count() - q0) as usize;

    let total_cells = gold.table.n_rows() * gold.table.n_cols();
    assert_eq!(result.queried_cells + result.skipped_cells, total_cells);
    assert_eq!(queries, result.queried_cells);
}
