//! The analyzer's fixture and property suite, plus the live-workspace
//! gate.
//!
//! Three layers:
//!
//! 1. **Fixtures** (`crates/lint/fixtures/*.rs`): each deliberately-bad
//!    file must trip *exactly* its lint — right name, right count,
//!    nothing else — and the clean fixtures must trip nothing. This pins
//!    both directions: the lint fires where it should and stays quiet
//!    where it should not.
//! 2. **Properties**: the lexer and the full lint pipeline never panic
//!    on arbitrary input, token lines are monotone, and lexing is
//!    insensitive to trailing garbage — the analyzer reads every
//!    workspace file, so it must be total.
//! 3. **Live workspace**: running the real analyzer over this repository
//!    against the checked-in baseline must be clean, and the lock graph
//!    must be cycle-free. This is the same check CI runs via
//!    `cargo run -p teda-lint -- --check`.

use std::path::{Path, PathBuf};

use teda_lint::{baseline, lockorder, run_all_lints, Roles, SourceFile};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf()
}

fn fixture(name: &str) -> String {
    let path = workspace_root().join("crates/lint/fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Parses a fixture under forced roles and returns the lint names of
/// every finding (sorted).
fn lints_tripped(name: &str, roles: Roles) -> Vec<&'static str> {
    let f = SourceFile::parse_with_roles(name, &fixture(name), roles);
    let mut lints: Vec<&'static str> = run_all_lints(&[f]).iter().map(|f| f.lint).collect();
    lints.sort();
    lints
}

const UNTRUSTED: Roles = Roles {
    untrusted: true,
    result_producing: false,
    scoring: false,
    test_only: false,
};
const RESULT_PRODUCING: Roles = Roles {
    untrusted: false,
    result_producing: true,
    scoring: false,
    test_only: false,
};
const SCORING: Roles = Roles {
    untrusted: false,
    result_producing: false,
    scoring: true,
    test_only: false,
};
const NO_ROLES: Roles = Roles {
    untrusted: false,
    result_producing: false,
    scoring: false,
    test_only: false,
};
const ALL_ROLES: Roles = Roles {
    untrusted: true,
    result_producing: true,
    scoring: true,
    test_only: false,
};

#[test]
fn fixture_float_ord_trips_exactly_float_ord() {
    assert_eq!(
        lints_tripped("float_ord.rs", NO_ROLES),
        vec!["float_ord_panic", "float_ord_panic"]
    );
}

#[test]
fn fixture_nondet_iter_trips_exactly_nondet_iter() {
    assert_eq!(
        lints_tripped("nondet_iter.rs", RESULT_PRODUCING),
        vec!["nondeterministic_iteration", "nondeterministic_iteration"]
    );
}

#[test]
fn fixture_nondet_iter_sorted_is_clean() {
    assert!(lints_tripped("nondet_iter_sorted.rs", RESULT_PRODUCING).is_empty());
}

#[test]
fn fixture_panic_untrusted_trips_exactly_panic_untrusted() {
    assert_eq!(
        lints_tripped("panic_untrusted.rs", UNTRUSTED),
        vec!["panic_on_untrusted"; 4]
    );
}

#[test]
fn fixture_panic_untrusted_is_clean_without_the_role() {
    // The same panics outside an untrusted module are not findings —
    // the lint is a policy about decode paths, not a global panic ban.
    assert!(lints_tripped("panic_untrusted.rs", NO_ROLES).is_empty());
}

#[test]
fn fixture_wallclock_trips_exactly_wallclock() {
    assert_eq!(
        lints_tripped("wallclock.rs", SCORING),
        vec!["wallclock_in_scoring"; 4]
    );
}

#[test]
fn fixture_wallclock_exempt_obs_clock_is_clean_but_scoring_still_trips() {
    // The same clock-reading source is clean under the roles derived
    // for the obs clock facade (the WALLCLOCK_EXEMPT carve-out with its
    // written proof) and a finding under any non-exempt scoring module
    // — the exemption is a named hole, not a weakening of the lint.
    let obs_roles = Roles::for_path("crates/obs/src/clock.rs");
    assert!(!obs_roles.scoring, "obs clock must be wallclock-exempt");
    assert!(
        teda_lint::wallclock_exemption("crates/obs/src/clock.rs").is_some(),
        "the exemption must carry its proof"
    );
    let f = SourceFile::parse_with_roles(
        "wallclock_exempt.rs",
        &fixture("wallclock_exempt.rs"),
        obs_roles,
    );
    assert!(run_all_lints(&[f]).is_empty());
    assert_eq!(
        lints_tripped("wallclock_exempt.rs", SCORING),
        vec!["wallclock_in_scoring"; 3]
    );
}

#[test]
fn fixture_compat_trips_exactly_compat() {
    assert_eq!(
        lints_tripped("compat.rs", NO_ROLES),
        vec!["compat_containment", "compat_containment"]
    );
}

#[test]
fn fixture_clean_is_clean_under_every_role() {
    assert!(lints_tripped("clean.rs", ALL_ROLES).is_empty());
}

#[test]
fn fixture_allow_ok_suppresses_and_is_not_unused() {
    assert!(lints_tripped("allow_ok.rs", UNTRUSTED).is_empty());
}

#[test]
fn fixture_allow_without_reason_fails_open() {
    // A reasonless allow must NOT suppress: the finding stands and the
    // annotation itself is a second finding.
    assert_eq!(
        lints_tripped("allow_missing_reason.rs", UNTRUSTED),
        vec!["malformed_allow", "panic_on_untrusted"]
    );
}

#[test]
fn fixture_unused_allow_is_flagged() {
    assert_eq!(
        lints_tripped("allow_unused.rs", NO_ROLES),
        vec!["unused_allow"]
    );
}

#[test]
fn fixture_unknown_lint_allow_is_malformed() {
    assert_eq!(
        lints_tripped("allow_unknown_lint.rs", NO_ROLES),
        vec!["malformed_allow"]
    );
}

#[test]
fn fixture_lock_cycle_is_reported() {
    let f = SourceFile::parse_with_roles("lock_cycle.rs", &fixture("lock_cycle.rs"), NO_ROLES);
    let report = lockorder::analyze(&[f]);
    assert_eq!(report.cycles.len(), 1, "edges: {:?}", report.edges);
    assert_eq!(
        report.cycles[0],
        vec![
            "lock_cycle::alpha".to_string(),
            "lock_cycle::beta".to_string()
        ]
    );
    let findings = report.findings();
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].lint, "lock_order_cycle");
}

#[test]
fn fixture_consistent_lock_order_has_edges_but_no_cycle() {
    let f =
        SourceFile::parse_with_roles("lock_nested_ok.rs", &fixture("lock_nested_ok.rs"), NO_ROLES);
    let report = lockorder::analyze(&[f]);
    assert!(!report.edges.is_empty());
    assert!(
        report.cycles.is_empty(),
        "false cycle from consistent ordering: {:?}",
        report.cycles
    );
}

#[test]
fn fixture_transitive_lock_cycle_is_reported() {
    // `outer` holds alpha and calls helper (takes beta); `other` nests
    // beta -> alpha directly. The cycle only exists across the call
    // graph — a per-function analysis would miss it.
    let f = SourceFile::parse_with_roles(
        "lock_transitive_cycle.rs",
        &fixture("lock_transitive_cycle.rs"),
        NO_ROLES,
    );
    let report = lockorder::analyze(&[f]);
    assert_eq!(report.cycles.len(), 1, "edges: {:?}", report.edges);
}

#[test]
fn every_fixture_is_covered_by_a_test() {
    // Adding a fixture without wiring it into this suite would silently
    // skip it; pin the exact fixture set instead.
    let dir = workspace_root().join("crates/lint/fixtures");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec![
            "allow_missing_reason.rs",
            "allow_ok.rs",
            "allow_unknown_lint.rs",
            "allow_unused.rs",
            "clean.rs",
            "compat.rs",
            "float_ord.rs",
            "lock_cycle.rs",
            "lock_nested_ok.rs",
            "lock_transitive_cycle.rs",
            "nondet_iter.rs",
            "nondet_iter_sorted.rs",
            "panic_untrusted.rs",
            "wallclock.rs",
            "wallclock_exempt.rs",
        ]
    );
}

// ---------------------------------------------------------------------
// Properties: the analyzer must be total over arbitrary input.
// ---------------------------------------------------------------------

#[test]
fn prop_lexer_and_lints_never_panic() {
    use rand::{rngs::StdRng, Rng, SeedableRng};

    let alphabet: Vec<char> = "abz_ \n\t\"'#/*(){}[];:.,<>&|!?=+-0129r\\"
        .chars()
        .collect();
    let mut rng = StdRng::seed_from_u64(0x7eda_11a7);
    for case in 0..300 {
        let len = rng.gen_range(0..200);
        let src: String = (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect();
        let toks = teda_lint::lexer::lex(&src);
        // Lines are monotone non-decreasing and within the source.
        let line_count = src.lines().count().max(1) as u32;
        let mut prev = 1u32;
        for t in &toks {
            assert!(t.line >= prev, "case {case}: lines went backwards");
            assert!(t.line <= line_count, "case {case}: line past end");
            prev = t.line;
        }
        // The full pipeline is total too, under every role.
        let f = SourceFile::parse_with_roles("fuzz.rs", &src, ALL_ROLES);
        let _ = run_all_lints(&[f]);
    }
}

#[test]
fn prop_lexing_fixture_prefixes_never_panics() {
    // Truncating real code mid-token (unterminated strings, half-open
    // comments) must still lex: the analyzer may see work-in-progress
    // files.
    for name in ["float_ord.rs", "lock_cycle.rs", "panic_untrusted.rs"] {
        let src = fixture(name);
        for cut in 0..src.len() {
            if src.is_char_boundary(cut) {
                let _ = teda_lint::lexer::lex(&src[..cut]);
            }
        }
    }
}

#[test]
fn prop_baseline_roundtrip() {
    // parse(render(entries)) == entries for arbitrary well-formed entries.
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(42);
    let lints = [
        "float_ord_panic",
        "panic_on_untrusted",
        "compat_containment",
    ];
    for _ in 0..100 {
        let n = rng.gen_range(0..10);
        let entries: Vec<baseline::BaselineEntry> = (0..n)
            .map(|i| baseline::BaselineEntry {
                lint: lints[rng.gen_range(0..lints.len())].to_string(),
                file: format!("crates/x/src/f{i}.rs"),
                occurrence: rng.gen_range(0..4),
                reason: format!("reason {}", rng.gen_range(0..1000)),
                excerpt: baseline::normalize("let x = y[0];"),
            })
            .collect();
        let parsed = baseline::parse(&baseline::render(&entries)).expect("roundtrip parses");
        assert_eq!(parsed, entries);
    }
}

// ---------------------------------------------------------------------
// Live workspace: the CI gate, as a test.
// ---------------------------------------------------------------------

#[test]
fn workspace_is_clean_against_the_checked_in_baseline() {
    let root = workspace_root();
    let files = teda_lint::load_workspace(&root).expect("workspace readable");
    let findings = run_all_lints(&files);
    let text = std::fs::read_to_string(root.join("lint-baseline.txt")).unwrap_or_default();
    let entries = baseline::parse(&text).expect("baseline parses");
    let diff = baseline::diff(&findings, &entries);
    assert!(
        diff.is_clean(),
        "lint gate: {} new finding(s), {} stale baseline entr(ies)\nnew: {:#?}\nstale: {:#?}",
        diff.new.len(),
        diff.stale.len(),
        diff.new,
        diff.stale
    );
}

#[test]
fn workspace_lock_graph_is_cycle_free() {
    let root = workspace_root();
    let files = teda_lint::load_workspace(&root).expect("workspace readable");
    let report = lockorder::analyze(&files);
    assert!(
        report.cycles.is_empty(),
        "mutex acquisition cycles: {:?}\nedges: {:#?}",
        report.cycles,
        report.edges
    );
}
