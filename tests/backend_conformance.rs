//! The shared [`SearchBackend`] conformance suite.
//!
//! Every backend in the system promises the same observable behaviour:
//! identical logical corpora produce bit-identical rankings (BM25 score
//! bits, ties by ascending page id) and identical assembled results.
//! This harness states that promise *once* — [`assert_conforms`] — and
//! runs every implementation through it against a single oracle, the
//! from-scratch [`WebCorpus`] rebuild of the logical page list:
//!
//! * [`WebCorpus`] itself (eager heap index), fresh and store-loaded;
//! * [`SegmentedCorpus`] layering journal segments over a heap base;
//! * `ViewBackend` serving straight from the mmap'd snapshot; and
//! * [`SegmentedCorpus`] layering the same segments over the mapped
//!   view — the beyond-RAM serving configuration.
//!
//! A property test drives all of them through the same random
//! `(base, ops, query, k)` space, before and after tier compaction, so
//! a ranking divergence in any backend fails here with the offending
//! backend named, rather than surfacing as a flaky end-to-end diff.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use teda::store::{CorpusStore, DeltaOp, TierPolicy, ViewBackend};
use teda::websim::{SearchBackend, WebCorpus, WebPage};

/// Small closed vocabulary: queries hit often, scores collide often —
/// the regime where tie-breaking bugs actually show up.
const VOCAB: [&str; 12] = [
    "harbor", "museum", "jazz", "espresso", "quartet", "granite", "lantern", "orchard", "velvet",
    "cinnamon", "atlas", "meridian",
];

fn synth_words(rng: &mut StdRng, n: usize) -> String {
    (0..n)
        .map(|_| *VOCAB.choose(rng).expect("vocab is non-empty"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn synth_page(rng: &mut StdRng, url: &str) -> WebPage {
    let n_title = rng.gen_range(1..=3);
    let n_body = rng.gen_range(4..=12);
    WebPage {
        url: url.into(),
        title: synth_words(rng, n_title),
        body: synth_words(rng, n_body),
    }
}

/// Single terms, multi-term queries, an unknown term, the empty query.
fn probes() -> Vec<String> {
    let mut probes: Vec<String> = VOCAB.iter().take(6).map(|w| (*w).to_string()).collect();
    probes.push("harbor museum jazz".into());
    probes.push("espresso quartet granite".into());
    probes.push("zanzibar xylophone".into());
    probes.push(String::new());
    probes
}

const KS: [usize; 4] = [1, 3, 10, 100];

fn temp_store(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("teda_conform_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The conformance oracle: `backend` must agree with the from-scratch
/// rebuild on every probe at every depth — ranked `(id, score)` pairs
/// compared as exact bit patterns, assembled results compared field by
/// field — and on the document count.
fn assert_conforms(oracle: &WebCorpus, backend: &dyn SearchBackend, label: &str) {
    assert_eq!(
        backend.n_docs(),
        oracle.pages().len(),
        "{label}: document count diverged from the oracle"
    );
    for q in probes() {
        for k in KS {
            let want = oracle.index().search(&q, k);
            let got = backend.search(&q, k);
            let to_bits = |hits: &[(teda::websim::PageId, f64)]| -> Vec<(u32, u64)> {
                hits.iter().map(|&(id, s)| (id.0, s.to_bits())).collect()
            };
            assert_eq!(
                to_bits(&got),
                to_bits(&want),
                "{label}: ranking diverged on {q:?} k {k}"
            );
            assert_eq!(
                backend.search_results(&q, k),
                oracle.search_results(&q, k),
                "{label}: assembled results diverged on {q:?} k {k}"
            );
        }
    }
}

/// Opens every backend configuration the store can serve and runs each
/// through the oracle.
fn assert_all_backends_conform(store: &CorpusStore, oracle: &WebCorpus, when: &str) {
    let eager = store.load().expect("eager load");
    assert_conforms(oracle, &eager.corpus, &format!("{when}: eager WebCorpus"));

    let seg = store.load_segmented().expect("segmented load");
    assert_conforms(
        oracle,
        &seg.corpus,
        &format!("{when}: SegmentedCorpus over heap base"),
    );

    let mapped = store.load_segmented_mapped().expect("mapped load");
    assert_conforms(
        oracle,
        &mapped.corpus,
        &format!("{when}: SegmentedCorpus over mapped view"),
    );

    // The raw view backend sees only the base snapshot, so it conforms
    // to the *base* oracle — the journal-free part of the store.
    let base = mapped
        .snapshot
        .materialize()
        .expect("snapshot materializes");
    let view = ViewBackend::new(mapped.snapshot).expect("view over verified snapshot");
    assert_conforms(
        &base,
        &view,
        &format!("{when}: ViewBackend over base snapshot"),
    );
}

/// The fixed-seed smoke: one interesting journal (adds and removes),
/// every backend, before and after both compaction flavours.
#[test]
fn every_backend_conforms_through_a_mixed_journal_and_compaction() {
    let mut rng = StdRng::seed_from_u64(7);
    let base_pages: Vec<WebPage> = (0..8)
        .map(|i| synth_page(&mut rng, &format!("http://base/{i}")))
        .collect();
    let dir = temp_store("smoke");
    let store = CorpusStore::open(&dir).expect("open");
    store
        .save(&WebCorpus::from_pages(base_pages.clone()))
        .expect("save");

    let mut logical = base_pages;
    let segments: Vec<Vec<DeltaOp>> = vec![
        vec![DeltaOp::AddPages(
            (0..3)
                .map(|i| synth_page(&mut rng, &format!("http://delta/a/{i}")))
                .collect(),
        )],
        vec![DeltaOp::RemovePages(vec![
            logical[1].url.clone(),
            logical[5].url.clone(),
        ])],
        vec![DeltaOp::AddPages(
            (0..2)
                .map(|i| synth_page(&mut rng, &format!("http://delta/b/{i}")))
                .collect(),
        )],
    ];
    for ops in &segments {
        for op in ops {
            op.apply(&mut logical);
        }
        store.append_segment(ops).expect("append");
    }
    let oracle = WebCorpus::from_pages(logical);

    assert_all_backends_conform(&store, &oracle, "pre-compaction");

    store
        .maybe_compact(TierPolicy {
            max_segments: 2,
            fanout: 2,
            max_removed: 0,
        })
        .expect("tiered compaction");
    assert_all_backends_conform(&store, &oracle, "post-tier-compaction");

    store.compact_in_place().expect("full fold");
    assert!(store.delta_segments().expect("list").is_empty());
    assert_all_backends_conform(&store, &oracle, "post-full-compaction");
    // With the journal folded away, the raw mapped view *is* the whole
    // logical corpus.
    let snapshot = store.open_mapped().expect("open mapped");
    let view = ViewBackend::new(snapshot).expect("view");
    assert_conforms(&oracle, &view, "post-full-compaction: bare ViewBackend");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The scatter-gather router is a [`SearchBackend`] like any other —
/// so it faces the same oracle, probe for probe, depth for depth, at
/// several shard counts, over real TCP. This is the issue's headline
/// invariant: the cluster is bit-identical to the single node.
#[test]
fn the_cluster_router_conforms_like_any_single_node_backend() {
    use teda::cluster::{partition_corpus, ClusterRouter, RouterConfig, ShardServer};

    let mut rng = StdRng::seed_from_u64(13);
    let pages: Vec<WebPage> = (0..17)
        .map(|i| synth_page(&mut rng, &format!("http://cluster/{i}")))
        .collect();
    let oracle = WebCorpus::from_pages(pages);

    for n_shards in [1u32, 2, 3] {
        let root = temp_store(&format!("router_{n_shards}"));
        let dirs = partition_corpus(&oracle, n_shards, &root).expect("partition");
        let servers: Vec<ShardServer> = dirs
            .iter()
            .enumerate()
            .map(|(i, d)| ShardServer::start(d, i % 2 == 0, "127.0.0.1:0").expect("serve"))
            .collect();
        let topology: Vec<Vec<std::net::SocketAddr>> =
            servers.iter().map(|s| vec![s.local_addr()]).collect();
        let router =
            ClusterRouter::connect(&topology, RouterConfig::default()).expect("connect router");
        assert_conforms(
            &oracle,
            &router,
            &format!("ClusterRouter over {n_shards} shard(s)"),
        );
        for s in servers {
            s.shutdown();
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

proptest::proptest! {
    /// Random `(base, ops)` histories: every backend configuration the
    /// store serves conforms to the rebuild oracle at every probe and
    /// depth, before and after a random tight compaction.
    #[test]
    fn random_histories_conform_across_every_backend(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_base = rng.gen_range(3..=10usize);
        let base_pages: Vec<WebPage> = (0..n_base)
            .map(|i| synth_page(&mut rng, &format!("http://base/{i}")))
            .collect();
        let dir = temp_store(&format!("prop_{seed}"));
        let store = CorpusStore::open(&dir).expect("open");
        store
            .save(&WebCorpus::from_pages(base_pages.clone()))
            .expect("save");

        let mut logical = base_pages;
        for s in 0..rng.gen_range(1..=4usize) {
            let mut ops = Vec::new();
            for o in 0..rng.gen_range(1..=3usize) {
                if logical.is_empty() || rng.gen_bool(0.65) {
                    let pages: Vec<WebPage> = (0..rng.gen_range(1..=3usize))
                        .map(|i| synth_page(&mut rng, &format!("http://delta/{s}/{o}/{i}")))
                        .collect();
                    ops.push(DeltaOp::AddPages(pages));
                } else {
                    let mut urls: Vec<String> = (0..rng.gen_range(1..=2usize))
                        .filter_map(|_| logical.choose(&mut rng).map(|p| p.url.clone()))
                        .collect();
                    if rng.gen_bool(0.25) {
                        urls.push("http://nowhere/".into());
                    }
                    ops.push(DeltaOp::RemovePages(urls));
                }
            }
            for op in &ops {
                op.apply(&mut logical);
            }
            store.append_segment(&ops).expect("append");
        }
        let oracle = WebCorpus::from_pages(logical);

        assert_all_backends_conform(&store, &oracle, "pre-compaction");

        let policy = TierPolicy {
            max_segments: rng.gen_range(1..=3usize),
            fanout: rng.gen_range(2..=4usize),
            max_removed: if rng.gen_bool(0.5) { 0 } else { 1 << 20 },
        };
        store.maybe_compact(policy).expect("maybe_compact");
        assert_all_backends_conform(&store, &oracle, "post-compaction");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
