//! Streaming annotation properties: for **any** in-flight window in
//! `{1, 2, 7, num_cells}`, **any** source chunking, and **any**
//! mid-stream per-table errors, the streamed output is bit-identical to
//! the offline batch path, errors surface at exactly their stream
//! positions, and the driver never holds more than `max_in_flight`
//! tables live.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use teda::classifier::svm::pegasos::PegasosConfig;
use teda::core::config::AnnotatorConfig;
use teda::core::pipeline::{BatchAnnotator, TableAnnotations};
use teda::core::stream::{table_channel, SourceError, TableFeed};
use teda::core::trainer::{harvest, train_svm_linear, TrainerConfig};
use teda::corpus::gft::poi_table;
use teda::kb::{CategoryNetwork, EntityType, World, WorldSpec};
use teda::simkit::rng_from_seed;
use teda::tabular::Table;
use teda::websim::{BingSim, WebCorpus, WebCorpusSpec};

/// Everything the property cases share, built once: the corpus, the
/// offline reference, the (warm-cached) batch annotator, and the window
/// ladder `{1, 2, 7, num_cells}`.
struct Shared {
    tables: Vec<Table>,
    reference: Vec<TableAnnotations>,
    batch: BatchAnnotator,
    windows: [usize; 4],
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| {
        let world = World::generate(WorldSpec::tiny(), 42);
        let net = CategoryNetwork::build(&world, 42);
        let web = Arc::new(WebCorpus::build(&world, WebCorpusSpec::tiny(), 42));
        let engine = Arc::new(BingSim::instant(web));
        let corpus = harvest(
            &world,
            &net,
            engine.as_ref(),
            &EntityType::TARGETS,
            TrainerConfig {
                max_entities_per_type: Some(12),
                ..TrainerConfig::default()
            },
        );
        let classifier = train_svm_linear(&corpus, PegasosConfig::default());

        let mut rng = rng_from_seed(7);
        let types = [
            EntityType::Restaurant,
            EntityType::Museum,
            EntityType::Hotel,
        ];
        let tables: Vec<Table> = (0..7)
            .map(|i| {
                poi_table(
                    &world,
                    types[i % types.len()],
                    10,
                    (i % 3) as u8,
                    &format!("prop_{i}"),
                    &mut rng,
                )
                .table
            })
            .collect();
        let num_cells: usize = tables.iter().map(|t| t.n_rows() * t.n_cols()).sum();

        let batch = BatchAnnotator::new(engine, classifier, AnnotatorConfig::default());
        let reference = batch.annotate_corpus(&tables);
        Shared {
            tables,
            reference,
            batch,
            windows: [1, 2, 7, num_cells.max(8)],
        }
    })
}

/// Feeds `items` through a bounded channel in the given chunking
/// (chunk boundaries yield the producer thread, so the interleaving
/// against the pulling driver genuinely varies case to case).
fn feed_chunked(feed: TableFeed, items: Vec<Result<Table, SourceError>>, chunk_sizes: Vec<usize>) {
    let mut chunks = chunk_sizes.into_iter().cycle();
    let mut sent_in_chunk = 0usize;
    let mut chunk = chunks.next().unwrap_or(1).max(1);
    for item in items {
        let pushed = match item {
            Ok(table) => feed.push(table).is_ok(),
            Err(error) => feed.push_error(error).is_ok(),
        };
        assert!(pushed, "driver dropped the source mid-stream");
        sent_in_chunk += 1;
        if sent_in_chunk >= chunk {
            sent_in_chunk = 0;
            chunk = chunks.next().unwrap_or(1).max(1);
            std::thread::yield_now();
        }
    }
}

proptest! {
    /// The acceptance property: streaming == offline batch, for any
    /// window in the ladder, any chunking, any channel capacity, and
    /// any mid-stream error positions.
    #[test]
    fn streaming_is_bit_identical_to_batch(
        window_sel in 0usize..4,
        capacity in 1usize..6,
        chunk_sizes in proptest::collection::vec(1usize..5, 1..6),
        error_slots in proptest::collection::vec(0usize..8, 0..4),
    ) {
        let s = shared();
        let window = s.windows[window_sel];

        // Interleave per-table errors at the requested positions.
        let mut error_positions: Vec<usize> = error_slots
            .iter()
            .map(|&p| p % (s.tables.len() + 1))
            .collect();
        error_positions.sort_unstable();
        error_positions.dedup();
        let mut items: Vec<Result<Table, SourceError>> =
            s.tables.iter().cloned().map(Ok).collect();
        for (nth, &pos) in error_positions.iter().enumerate() {
            items.insert(pos + nth, Err(SourceError::msg(format!("bad #{nth}"))));
        }
        let total = items.len();
        let error_indices: Vec<usize> = items
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_err().then_some(i))
            .collect();

        let (feed, source) = table_channel(capacity);
        let (results, summary) = std::thread::scope(|scope| {
            scope.spawn(|| feed_chunked(feed, items, chunk_sizes));
            let mut sink = teda::core::stream::Collect::new();
            let summary = s.batch.annotate_stream(source, &mut sink, window);
            (sink.into_results(), summary)
        });

        prop_assert_eq!(results.len(), total);
        prop_assert_eq!(summary.errors, error_indices.len());
        prop_assert_eq!(summary.annotated, s.tables.len());
        prop_assert!(
            summary.peak_in_flight <= window,
            "window {} held {} tables",
            window,
            summary.peak_in_flight
        );

        // Errors at exactly their stream positions, annotations in
        // table order and bit-identical to the batch reference.
        let mut next_table = 0usize;
        for (i, slot) in results.iter().enumerate() {
            match slot {
                Err(e) => {
                    prop_assert!(
                        error_indices.contains(&i),
                        "unexpected error at {}: {}", i, e
                    );
                }
                Ok(annotations) => {
                    prop_assert_eq!(
                        annotations,
                        &s.reference[next_table],
                        "table {} diverged (window {})", next_table, window
                    );
                    next_table += 1;
                }
            }
        }
        prop_assert_eq!(next_table, s.tables.len());
    }
}

/// The deprecated-era shims and the streaming driver are one code path:
/// spot-check the shims against each other and the reference.
#[test]
fn corpus_shims_still_match_the_reference() {
    let s = shared();
    assert_eq!(s.batch.annotate_corpus(&s.tables), s.reference);
    assert_eq!(s.batch.annotate_corpus_par(&s.tables), s.reference);
}
