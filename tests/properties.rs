//! Cross-crate property tests (proptest): invariants of the text
//! pipeline, scoring equations and post-processing, over arbitrary
//! inputs.

use proptest::prelude::*;

use teda::core::annotate::CellAnnotation;
use teda::core::postprocess::{column_scores, eliminate_spurious};
use teda::kb::EntityType;
use teda::tabular::{CellId, Table};
use teda::text::{preprocess as text_preprocess, FeatureExtractor};

proptest! {
    /// Tokenize→stopword→stem never produces empty, uppercase or
    /// single-character tokens.
    #[test]
    fn preprocess_token_invariants(s in "\\PC{0,200}") {
        for tok in text_preprocess(&s) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().count() >= 1);
            prop_assert!(!tok.chars().any(|c| c.is_ascii_uppercase()), "{tok}");
        }
    }

    /// Feature vectors are normalized: weights sum to 1 when any content
    /// token survives, 0 otherwise; all weights positive.
    #[test]
    fn feature_weights_normalized(s in "[a-zA-Z ]{0,120}") {
        let mut fx = FeatureExtractor::new();
        let v = fx.fit_transform(&s);
        let sum = v.sum();
        prop_assert!(
            v.is_empty() && sum == 0.0 || (sum - 1.0).abs() < 1e-9,
            "sum = {sum}"
        );
        prop_assert!(v.entries().iter().all(|&(_, w)| w > 0.0));
    }

    /// `transform` never grows the vocabulary.
    #[test]
    fn transform_is_frozen(a in "[a-z ]{0,80}", b in "[a-z ]{0,80}") {
        let mut fx = FeatureExtractor::new();
        fx.fit_transform(&a);
        let dim = fx.dim();
        let _ = fx.transform(&b);
        prop_assert_eq!(fx.dim(), dim);
    }

    /// Post-processing only removes annotations (output ⊆ input) and
    /// leaves at most one column per type.
    #[test]
    fn postprocess_shrinks_and_unifies_columns(
        anns in proptest::collection::vec(
            (0usize..8, 0usize..3, 0usize..3, 1usize..=10),
            0..24
        )
    ) {
        // table of 8 rows × 3 columns with distinct-ish cell values
        let mut b = Table::builder(3);
        for i in 0..8 {
            b.push_row(vec![
                format!("a{i}"),
                format!("b{}", i % 2), // repeated values in column 1
                format!("c{i}"),
            ]).unwrap();
        }
        let table = b.build().unwrap();
        let types = [EntityType::Restaurant, EntityType::Museum, EntityType::Hotel];
        let input: Vec<CellAnnotation> = anns
            .iter()
            .map(|&(row, col, t, votes)| CellAnnotation {
                cell: CellId::new(row, col),
                etype: types[t],
                score: votes as f64 / 10.0,
                votes,
            })
            .collect();
        let output = eliminate_spurious(&table, input.clone());
        prop_assert!(output.len() <= input.len());
        for a in &output {
            prop_assert!(input.contains(a), "postprocess invented {a:?}");
        }
        for t in types {
            let cols: std::collections::HashSet<usize> = output
                .iter()
                .filter(|a| a.etype == t)
                .map(|a| a.cell.col)
                .collect();
            prop_assert!(cols.len() <= 1, "{t}: columns {cols:?}");
        }
    }

    /// Eq. 2 column scores are non-negative and grow monotonically with
    /// extra annotations.
    #[test]
    fn eq2_scores_monotone(votes in proptest::collection::vec(6usize..=10, 1..8)) {
        let mut b = Table::builder(1);
        for i in 0..8 {
            b.push_row(vec![format!("v{i}")]).unwrap();
        }
        let table = b.build().unwrap();
        let mut anns: Vec<CellAnnotation> = Vec::new();
        let mut last = 0.0;
        for (i, &v) in votes.iter().enumerate() {
            anns.push(CellAnnotation {
                cell: CellId::new(i, 0),
                etype: EntityType::Museum,
                score: v as f64 / 10.0,
                votes: v,
            });
            let s = column_scores(&table, &anns, EntityType::Museum)[&0];
            prop_assert!(s >= last, "score dropped: {last} -> {s}");
            prop_assert!(s >= 0.0);
            last = s;
        }
    }
}
