//! # `teda` — Table Entity Discovery and Annotation
//!
//! A from-scratch Rust reproduction of *Quercini & Reynaud-Delaître,
//! "Entity Discovery and Annotation in Tables", EDBT 2013*.
//!
//! This facade crate re-exports every workspace member so applications can
//! depend on a single crate:
//!
//! * [`tabular`] — GFT-like table model (typed columns, CSV, inference).
//! * [`text`] — tokenizer, stopwords, Porter stemmer, feature extraction.
//! * [`classifier`] — Naive Bayes and SVM (SMO / Pegasos) text classifiers.
//! * [`geo`] — gazetteer, geocoding simulation, toponym disambiguation.
//! * [`kb`] — synthetic knowledge world and DBpedia-like category network.
//! * [`websim`] — synthetic Web corpus and BM25 search engine (Bing stand-in).
//! * [`corpus`] — benchmark table generators and gold standards.
//! * [`core`] — the annotation pipeline itself (pre-processing, snippet
//!   classification, post-processing, baselines, evaluation).
//! * [`service`] — the long-running annotation service: request
//!   scheduler, per-client fair admission control, bounded caching over
//!   the batch engine.
//! * [`store`] — persistence: checksummed index/cache snapshots,
//!   incremental delta segments, deterministic compaction.
//! * [`wire`] — the line-protocol TCP front-end over the service
//!   (newline-framed requests, typed wire errors, reference client).
//! * [`cluster`] — the sharded scatter-gather serving tier:
//!   deterministic partitioner, shard servers, stateless router with
//!   bit-identical top-k merge and replica failover.
//! * [`obs`] — observability: lock-free log-bucketed histograms,
//!   per-request trace spans, Prometheus/JSON exposition — recording
//!   never perturbs a result bit.
//! * [`simkit`] — virtual clock, seeded RNG, reporting helpers.
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough, and
//! `DESIGN.md` / `EXPERIMENTS.md` for the reproduction methodology.

pub use teda_classifier as classifier;
pub use teda_cluster as cluster;
pub use teda_core as core;
pub use teda_corpus as corpus;
pub use teda_geo as geo;
pub use teda_kb as kb;
pub use teda_obs as obs;
pub use teda_service as service;
pub use teda_simkit as simkit;
pub use teda_store as store;
pub use teda_tabular as tabular;
pub use teda_text as text;
pub use teda_websim as websim;
pub use teda_wire as wire;
